//! Cross-checks the service layer against the observability subsystem:
//! the sink-derived job counters must agree *exactly* with the server's
//! own [`ServiceStats`], the latency histograms must match sample for
//! sample, and the exporters must handle service events.

use locusroute::engines::build_engine;
use locusroute::obs::metrics::hists;
use locusroute::obs::{export, names, SharedSink};
use locusroute::prelude::*;
use locusroute::service::{generate, Backpressure, JobServer, ServiceConfig};

/// A short rush-hour trace at heavy load so every policy exercises its
/// full-queue branch.
fn heavy_workload() -> Vec<locusroute::service::JobSpec> {
    let mut cfg = WorkloadConfig::rush_hour(0xC0FFEE, 6_000, 550.0);
    cfg.load = 6.0;
    generate(&cfg)
}

#[test]
fn obs_job_counters_match_service_stats() {
    for policy in [Backpressure::Block, Backpressure::ShedOldest, Backpressure::Reject] {
        let jobs = heavy_workload();
        let sink = SharedSink::new();
        let server = JobServer::new(ServiceConfig::new(2, 3, policy));
        let runner = EngineRunner::new(build_engine);
        let out = server.run(&jobs, &runner, &WorkerPool::auto(), Some(sink.clone()));

        let m = sink.metrics_snapshot();
        let s = out.stats;
        assert_eq!(m.counter(names::JOBS_ENQUEUED), s.enqueued, "{policy:?}");
        assert_eq!(m.counter(names::JOBS_DISPATCHED), s.dispatched, "{policy:?}");
        assert_eq!(m.counter(names::JOBS_COMPLETED), s.completed, "{policy:?}");
        assert_eq!(m.counter(names::JOBS_SHED), s.shed, "{policy:?}");
        assert_eq!(m.counter(names::JOBS_REJECTED), s.rejected, "{policy:?}");

        // The sink's histograms see exactly the samples the server's own
        // histograms recorded.
        let queue_wait = m.histograms.get(hists::QUEUE_WAIT_MS).expect("jobs were dispatched");
        assert_eq!(queue_wait, &out.queue_wait, "{policy:?}");
        let service = m.histograms.get(hists::SERVICE_MS).expect("jobs completed");
        assert_eq!(service, &out.service, "{policy:?}");

        // Heavy load must actually exercise the policy.
        match policy {
            Backpressure::Block => assert_eq!(s.shed + s.rejected, 0),
            Backpressure::ShedOldest => assert!(s.shed > 0, "{s:?}"),
            Backpressure::Reject => assert!(s.rejected > 0, "{s:?}"),
        }
    }
}

#[test]
fn service_events_export_as_valid_json_and_render() {
    let jobs = heavy_workload();
    let sink = SharedSink::new();
    let server = JobServer::new(ServiceConfig::new(2, 3, Backpressure::ShedOldest));
    let runner = EngineRunner::new(build_engine);
    server.run(&jobs, &runner, &WorkerPool::serial(), Some(sink.clone()));

    let events = sink.snapshot_events();
    assert!(!events.is_empty());
    let trace = export::chrome_trace(&events);
    export::validate_json(&trace).expect("chrome trace is valid JSON");
    assert!(trace.contains("JobEnqueued") && trace.contains("JobShed"));

    let metrics = export::metrics_json(&sink.metrics_snapshot());
    export::validate_json(&metrics).expect("metrics are valid JSON");
    assert!(metrics.contains("jobs_enqueued"));

    let timeline = export::ascii_timeline(&events, 60);
    assert!(timeline.contains("job-enq"), "legend covers job events:\n{timeline}");
}

#[test]
fn end_to_end_run_is_deterministic_and_reports_real_quality() {
    // The facade-level determinism claim: two full runs through real
    // engines, on pools of different sizes, produce identical outcomes.
    let jobs = heavy_workload();
    let runner = EngineRunner::new(build_engine);
    let server = JobServer::new(ServiceConfig::new(2, 3, Backpressure::Reject));
    let a = server.run(&jobs, &runner, &WorkerPool::serial(), None);
    let b = server.run(&jobs, &runner, &WorkerPool::with_threads(4), None);
    assert_eq!(a.records, b.records);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.makespan_ms, b.makespan_ms);
    assert!(a.stats.failed == 0, "registry engines must route the mix: {:?}", a.stats);
    assert!(a.stats.completed > 0);
}
