//! Cross-checks the observability subsystem against the engines' own
//! statistics: the sink-derived counters must agree *exactly* with
//! `NetStats`, and the exporters must emit valid JSON.

use locusroute::msgpass::{run_msgpass_observed, MsgPassConfig, UpdateSchedule};
use locusroute::obs::{export, names, SharedSink};

#[test]
fn obs_counters_match_netstats_on_16_proc_bnr_e() {
    let circuit = locusroute::circuit::presets::bnr_e();
    let cfg = MsgPassConfig::new(16, UpdateSchedule::sender_initiated(2, 10));
    let sink = SharedSink::new();
    let out = run_msgpass_observed(&circuit, cfg, sink.clone());
    assert!(!out.deadlocked);

    let m = sink.metrics_snapshot();
    // The exact identity the subsystem is built around: payload bytes
    // counted by PacketSent events equal the network layer's own total.
    assert_eq!(m.counter(names::BYTES_SENT), out.net.payload_bytes);
    assert_eq!(m.counter(names::PACKETS_SENT), out.net.packets);
    assert_eq!(m.counter(names::WIRE_BYTES_SENT), out.net.wire_bytes);
    assert_eq!(m.counter(names::CONTENTION_NS), out.net.contention_ns);
    // Every injected packet is eventually delivered (clean termination).
    assert_eq!(m.counter(names::PACKETS_DELIVERED), out.net.packets);
    assert_eq!(m.counter(names::BYTES_DELIVERED), out.net.payload_bytes);
    // Routing-layer events flow through the same sink.
    assert_eq!(m.counter(names::WIRES_ROUTED), out.work.wires_routed);
}

#[test]
fn fault_counters_match_netstats_and_reliability_stats() {
    use locusroute::mesh::FaultPlan;
    let circuit = locusroute::circuit::presets::small();
    let cfg = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10))
        .with_faults(FaultPlan::uniform_loss(42, 1000).with_duplicates(300, 40_000))
        .with_reliability();
    let sink = SharedSink::new();
    let out = run_msgpass_observed(&circuit, cfg, sink.clone());
    assert!(!out.deadlocked, "reliable run must terminate");
    assert!(out.net.faults_injected() > 0, "the plan must actually fire");

    let m = sink.metrics_snapshot();
    // Sink-derived fault counters agree exactly with the network layer.
    assert_eq!(m.counter(names::FAULTS_INJECTED), out.net.faults_injected());
    assert_eq!(m.counter(names::PACKETS_DROPPED), out.net.packets_dropped);
    assert_eq!(m.counter(names::PACKETS_DUPLICATED), out.net.packets_duplicated);
    assert_eq!(m.counter(names::PACKETS_SENT), out.net.packets);
    // Dropped sends consume bandwidth but never arrive.
    assert_eq!(m.counter(names::PACKETS_DELIVERED), out.net.packets - out.net.packets_dropped);
    // And with the reliability protocol's own bookkeeping.
    assert_eq!(m.counter(names::PACKETS_RETRANSMITTED), out.reliability.retransmits);
    assert_eq!(m.counter(names::ACKS_SENT), out.reliability.acks_sent);
    assert_eq!(m.counter(names::WATCHDOG_RECOVERIES), 0, "clean run needs no watchdog");
}

#[test]
fn watchdog_recoveries_flow_through_the_sink() {
    use locusroute::mesh::FaultPlan;
    let circuit = locusroute::circuit::presets::small();
    // Total loss with no reliability: blocking requesters strand their
    // wires and the watchdog repairs them at collection time.
    let cfg = MsgPassConfig::new(4, UpdateSchedule::receiver_initiated_blocking(1, 1))
        .with_faults(FaultPlan::uniform_loss(1, 10_000));
    let sink = SharedSink::new();
    let out = run_msgpass_observed(&circuit, cfg, sink.clone());
    assert!(out.deadlocked);
    assert!(out.watchdog_recoveries > 0);
    let m = sink.metrics_snapshot();
    assert_eq!(m.counter(names::WATCHDOG_RECOVERIES), out.watchdog_recoveries);
    assert_eq!(m.counter(names::PACKETS_DROPPED), out.net.packets_dropped);
}

#[test]
fn recovery_counters_match_recovery_stats() {
    use locusroute::mesh::{FaultPlan, NodeFault};
    use locusroute::msgpass::RecoveryConfig;
    let circuit = locusroute::circuit::presets::small();
    // Kill a worker mid-run with recovery armed: the sink-derived
    // counters must agree exactly with the run's own RecoveryStats.
    let cfg = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10))
        .with_reliability()
        .with_recovery_config(RecoveryConfig {
            checkpoint_every: 4,
            heartbeat_ns: 20_000_000,
            suspect_after: 3,
            checkpoint_per_byte_ns: 1,
        })
        .with_faults(FaultPlan::none().with_node_fault(2, NodeFault::Crash { at_ns: 60_000_000 }));
    let sink = SharedSink::new();
    let out = run_msgpass_observed(&circuit, cfg, sink.clone());
    assert!(!out.deadlocked);
    assert!(out.degraded.is_none(), "recovery must absorb a single crash: {:?}", out.degraded);
    assert_eq!(out.watchdog_recoveries, 0);
    assert!(out.recovery.nodes_declared_dead >= 1, "{:?}", out.recovery);
    assert!(out.recovery.wires_reassigned > 0, "{:?}", out.recovery);

    let m = sink.metrics_snapshot();
    assert_eq!(m.counter(names::NODE_CRASHES), 1);
    assert_eq!(m.counter(names::CHECKPOINTS_TAKEN), out.recovery.checkpoints_taken);
    assert_eq!(m.counter(names::CHECKPOINT_BYTES), out.recovery.checkpoint_bytes);
    assert_eq!(m.counter(names::WIRES_REASSIGNED), out.recovery.wires_reassigned);
    assert_eq!(m.counter(names::COORDINATOR_FAILOVERS), out.recovery.coordinator_failovers);
}

#[test]
fn service_health_counters_match_service_stats() {
    use locusroute::service::{
        Backpressure, CircuitFamily, HealthPolicy, JobClass, JobExecution, JobRunner, JobServer,
        JobSpec, ServiceConfig, WorkerPool,
    };

    /// Every run comes back degraded, so each job burns its retries and
    /// the class breaker eventually trips.
    struct AlwaysDegraded;
    impl JobRunner for AlwaysDegraded {
        fn run(&self, _job: &JobSpec) -> Result<JobExecution, String> {
            Ok(JobExecution { service_ms: 10, circuit_height: 1, wires_routed: 1, degraded: true })
        }
    }

    let jobs: Vec<JobSpec> = (0..12)
        .map(|i| JobSpec {
            id: i as u32,
            arrival_ms: i as u64 * 40,
            class: JobClass::new(CircuitFamily::Tiny, "sequential", 1),
            circuit_seed: 0,
        })
        .collect();
    let policy = HealthPolicy {
        deadline_ms: 1_000_000,
        max_retries: 1,
        backoff_base_ms: 20,
        quarantine_ms: 200,
        failure_quarantine: 1_000,
        breaker_window: 4,
        breaker_threshold_pct: 75,
    };
    let server = JobServer::new(ServiceConfig::new(2, 8, Backpressure::Block).with_health(policy));
    let sink = SharedSink::new();
    let out = server.run(&jobs, &AlwaysDegraded, &WorkerPool::serial(), Some(sink.clone()));
    assert!(out.stats.retried > 0, "{:?}", out.stats);
    assert!(out.stats.breaker_trips > 0, "{:?}", out.stats);

    let m = sink.metrics_snapshot();
    assert_eq!(m.counter(names::JOBS_RETRIED), out.stats.retried);
    assert_eq!(m.counter(names::BREAKER_TRIPS), out.stats.breaker_trips);
    assert_eq!(m.counter(names::JOBS_COMPLETED), out.stats.completed);
}

#[test]
fn observed_run_matches_unobserved_run() {
    // Instrumentation must never perturb the simulation.
    let circuit = locusroute::circuit::presets::small();
    let cfg = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 5));
    let plain = locusroute::msgpass::run_msgpass(&circuit, cfg);
    let observed = run_msgpass_observed(&circuit, cfg, SharedSink::new());
    assert_eq!(plain.quality, observed.quality);
    assert_eq!(plain.routes, observed.routes);
    assert_eq!(plain.net, observed.net);
}

#[test]
fn exporters_emit_valid_json() {
    let circuit = locusroute::circuit::presets::small();
    let cfg = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 5));
    let sink = SharedSink::new();
    let out = run_msgpass_observed(&circuit, cfg, sink.clone());
    assert!(!out.deadlocked);

    let events = sink.snapshot_events();
    assert!(!events.is_empty());
    let trace = export::chrome_trace(&events);
    export::validate_json(&trace).expect("chrome trace must be valid JSON");
    assert!(trace.starts_with('['), "trace-event format is a JSON array");

    let metrics = export::metrics_json(&sink.metrics_snapshot());
    export::validate_json(&metrics).expect("metrics must be valid JSON");

    // The ASCII timeline renders one row per active node.
    let timeline = export::ascii_timeline(&events, 72);
    assert!(timeline.contains("node"));
}
