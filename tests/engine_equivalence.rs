//! Cross-engine equivalence: with one processor there is no concurrency,
//! so every engine must reduce to the identical sequential algorithm —
//! same routes, same quality, bit for bit.

use locusroute::prelude::*;

#[test]
fn registry_engines_agree_at_one_processor_on_small_and_bnre() {
    use locusroute::router::engine::EngineCtx;
    for circuit in [locusroute::circuit::presets::small(), locusroute::circuit::presets::bnr_e()] {
        let params = RouterParams::default();
        let reference =
            build_engine("sequential").unwrap().route(&circuit, &params, &EngineCtx::new(1));
        for entry in registry() {
            let run = (entry.build)().route(&circuit, &params, &EngineCtx::new(1));
            assert_eq!(
                run.outcome.quality, reference.outcome.quality,
                "{} != sequential on {} at P=1",
                entry.name, circuit.name
            );
            assert_eq!(
                run.outcome.routes, reference.outcome.routes,
                "{} routes diverge on {} at P=1",
                entry.name, circuit.name
            );
        }
    }
}

#[test]
fn all_four_engines_agree_at_one_processor() {
    let circuit = locusroute::circuit::presets::small();
    let params = RouterParams::default();

    let seq = SequentialRouter::new(&circuit, params).run();
    let emul = ShmemEmulator::new(&circuit, ShmemConfig::new(1)).run();
    let threads = ThreadedRouter::new(&circuit, ShmemConfig::new(1)).run();
    let msg = run_msgpass(&circuit, MsgPassConfig::new(1, UpdateSchedule::never()));

    assert_eq!(seq.quality, emul.quality, "emulator != sequential");
    assert_eq!(seq.quality, threads.quality, "threads != sequential");
    assert_eq!(seq.quality, msg.quality, "message passing != sequential");
    assert_eq!(seq.routes, emul.routes);
    assert_eq!(seq.routes, threads.routes);
    assert_eq!(seq.routes, msg.routes);
}

#[test]
fn single_proc_equivalence_holds_across_iteration_counts() {
    let circuit = locusroute::circuit::presets::tiny();
    for iterations in [1usize, 2, 4] {
        let params = RouterParams::default().with_iterations(iterations);
        let seq = SequentialRouter::new(&circuit, params).run();
        let emul = ShmemEmulator::new(&circuit, ShmemConfig::new(1).with_params(params)).run();
        let msg = run_msgpass(
            &circuit,
            MsgPassConfig::new(1, UpdateSchedule::never()).with_params(params),
        );
        assert_eq!(seq.quality, emul.quality, "iterations={iterations}");
        assert_eq!(seq.quality, msg.quality, "iterations={iterations}");
    }
}

#[test]
fn deterministic_engines_are_bitwise_repeatable() {
    let circuit = locusroute::circuit::presets::small();

    let m1 = run_msgpass(&circuit, MsgPassConfig::new(4, UpdateSchedule::mixed_paper()));
    let m2 = run_msgpass(&circuit, MsgPassConfig::new(4, UpdateSchedule::mixed_paper()));
    assert_eq!(m1.quality, m2.quality);
    assert_eq!(m1.routes, m2.routes);
    assert_eq!(m1.net, m2.net);

    let e1 = ShmemEmulator::new(&circuit, ShmemConfig::new(4).with_trace()).run();
    let e2 = ShmemEmulator::new(&circuit, ShmemConfig::new(4).with_trace()).run();
    assert_eq!(e1.quality, e2.quality);
    assert_eq!(e1.trace, e2.trace);
}

#[test]
fn sharded_threads_match_sequential_at_one_proc_and_stay_banded_above() {
    // Shard ownership (the default untraced threads path) keeps every
    // worker's prefix caches private. At P=1 the replica sees every
    // write immediately, so the run is bit-identical to sequential; at
    // P>1 cross-worker routes land only at iteration barriers, so exact
    // equality is impossible by design — instead a static assignment
    // makes the run bitwise repeatable, and quality must stay in the
    // paper's degradation band.
    for circuit in [locusroute::circuit::presets::small(), locusroute::circuit::presets::bnr_e()] {
        let seq = SequentialRouter::new(&circuit, RouterParams::default()).run();
        for p in [1usize, 2, 4] {
            let cfg = ShmemConfig::new(p).with_static_assignment(AssignmentStrategy::RoundRobin);
            let a = ThreadedRouter::new(&circuit, cfg).run();
            if p == 1 {
                assert_eq!(a.quality, seq.quality, "sharded P=1 on {}", circuit.name);
                assert_eq!(a.routes, seq.routes, "sharded P=1 routes on {}", circuit.name);
            } else {
                let b = ThreadedRouter::new(&circuit, cfg).run();
                assert_eq!(a.quality, b.quality, "sharded P={p} repeat on {}", circuit.name);
                assert_eq!(a.routes, b.routes, "sharded P={p} routes repeat on {}", circuit.name);
                let h = a.quality.circuit_height as f64;
                let hs = seq.quality.circuit_height as f64;
                assert!(
                    h <= hs * 1.5 && h >= hs * 0.8,
                    "sharded P={p} height {h} outside band of sequential {hs} on {}",
                    circuit.name
                );
            }
        }
    }
}

#[test]
fn conservation_holds_in_every_engine() {
    use locusroute::router::CostArray;
    let circuit = locusroute::circuit::presets::small();

    let check = |routes: &[locusroute::router::Route], height: u64, label: &str| {
        let mut truth = CostArray::new(circuit.channels, circuit.grids);
        for r in routes {
            truth.add_route(r);
        }
        assert_eq!(truth.circuit_height(), height, "{label}: height mismatch");
        let coverage: u64 = routes.iter().map(|r| r.len() as u64).sum();
        assert_eq!(truth.total(), coverage, "{label}: coverage mismatch");
    };

    let seq = SequentialRouter::new(&circuit, RouterParams::default()).run();
    check(&seq.routes, seq.quality.circuit_height, "sequential");

    let emul = ShmemEmulator::new(&circuit, ShmemConfig::new(4)).run();
    check(&emul.routes, emul.quality.circuit_height, "emulator");

    let threads = ThreadedRouter::new(&circuit, ShmemConfig::new(4)).run();
    check(&threads.routes, threads.quality.circuit_height, "threads");

    let msg = run_msgpass(&circuit, MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 5)));
    check(&msg.routes, msg.quality.circuit_height, "message passing");
}

#[test]
fn sequential_trace_has_zero_race_pairs() {
    let circuit = locusroute::circuit::presets::small();
    let report = analyze_engine(&circuit, "sequential", 1, RouterParams::default())
        .expect("sequential engine is traceable");
    assert!(report.refs > 0, "sequential trace recorded no references");
    assert_eq!(report.races.len(), 0, "a single-threaded trace can never race");
    assert_eq!(report.synchronized_pairs, 0, "one processor has no cross-proc pairs");
}

#[test]
fn one_processor_emulator_trace_is_race_free() {
    let circuit = locusroute::circuit::presets::small();
    for engine in ["shmem-emul", "shmem-threads"] {
        let report = analyze_engine(&circuit, engine, 1, RouterParams::default())
            .expect("engine is traceable");
        assert_eq!(report.races.len(), 0, "{engine} at P=1 must be race-free");
    }
}

#[test]
fn parallel_emulator_races_match_detector_and_are_classified() {
    let circuit = locusroute::circuit::presets::small();
    let report = analyze_engine(&circuit, "shmem-emul", 4, RouterParams::default())
        .expect("emulator is traceable");
    assert!(!report.races.is_empty(), "4 unsynchronized procs on one cost array must race");
    let classified = report.benign_count() + report.quality_count();
    assert_eq!(classified, report.races.len(), "every race carries a classification");
}

#[test]
fn faulted_engine_at_one_processor_matches_sequential() {
    use locusroute::msgpass::MsgPassEngine;
    use locusroute::router::engine::EngineCtx;
    let circuit = locusroute::circuit::presets::small();
    let params = RouterParams::default();
    let reference =
        build_engine("sequential").unwrap().route(&circuit, &params, &EngineCtx::new(1));
    // 15% uniform loss with reliability on: one processor has no replica
    // staleness, so dropped-and-retransmitted packets cannot change the
    // routing result — only the simulated clock.
    let faulted = MsgPassEngine::sender().with_fault_plan(FaultPlan::uniform_loss(7, 1500)).route(
        &circuit,
        &params,
        &EngineCtx::new(1),
    );
    assert_eq!(faulted.outcome.quality, reference.outcome.quality);
    assert_eq!(faulted.outcome.routes, reference.outcome.routes);
}

#[test]
fn recovery_armed_crash_free_run_matches_sequential_at_one_processor() {
    // Recovery machinery armed but never fired: checkpoints and
    // heartbeats are charged to the simulated clock only, so the
    // routing result must stay bit-identical to sequential. Recovery
    // pins the run to one iteration, so the reference gets one too.
    let circuit = locusroute::circuit::presets::small();
    let params = RouterParams::default().with_iterations(1);
    let seq = SequentialRouter::new(&circuit, params).run();
    let cfg = MsgPassConfig::new(1, UpdateSchedule::never())
        .with_reliability()
        .with_recovery_config(RecoveryConfig {
            checkpoint_every: 4,
            heartbeat_ns: 20_000_000,
            suspect_after: 3,
            checkpoint_per_byte_ns: 1,
        });
    let out = run_msgpass(&circuit, cfg);
    assert!(!out.deadlocked);
    assert_eq!(out.quality, seq.quality, "recovery-armed P=1 != sequential");
    assert_eq!(out.routes, seq.routes);
    assert!(out.recovery.checkpoints_taken > 0, "checkpointing must actually run");
    assert_eq!(out.recovery.nodes_declared_dead, 0, "nobody dies in a crash-free run");
    assert_eq!(out.recovery.coordinator_failovers, 0);
    assert_eq!(out.watchdog_recoveries, 0);
}

#[test]
fn faulted_parallel_runs_are_bitwise_repeatable() {
    let circuit = locusroute::circuit::presets::small();
    let cfg = || {
        MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10))
            .with_faults(FaultPlan::uniform_loss(11, 1000).with_duplicates(300, 40_000))
            .with_reliability()
    };
    let m1 = run_msgpass(&circuit, cfg());
    let m2 = run_msgpass(&circuit, cfg());
    assert!(!m1.deadlocked, "reliable run must terminate");
    assert_eq!(m1.quality, m2.quality);
    assert_eq!(m1.routes, m2.routes);
    assert_eq!(m1.net, m2.net);
    assert_eq!(m1.reliability, m2.reliability);
    assert!(m1.net.faults_injected() > 0, "the plan must actually fire");
}

#[test]
fn every_route_covers_its_wire_pins() {
    let circuit = locusroute::circuit::presets::small();
    let msg =
        run_msgpass(&circuit, MsgPassConfig::new(4, UpdateSchedule::receiver_initiated(1, 5)));
    for (wire, route) in circuit.wires.iter().zip(&msg.routes) {
        for pin in &wire.pins {
            assert!(
                route.cells().binary_search(&pin.cell()).is_ok(),
                "wire {} pin {pin:?} not covered by its route",
                wire.id
            );
        }
    }
}
