//! End-to-end pipeline tests: generate → serialize → parse → route →
//! assign → simulate → analyze, crossing every crate boundary.

use locusroute::circuit::format;
use locusroute::circuit::stats::CircuitStats;
use locusroute::prelude::*;

#[test]
fn generated_circuit_survives_the_full_pipeline() {
    // Generate a fresh circuit (not a preset).
    let cfg = GeneratorConfig::for_surface("pipeline", 6, 96, 60, 0xDEAD_BEEF);
    let circuit = CircuitGenerator::new(cfg).generate();
    circuit.validate().unwrap();

    // Serialize and re-parse; the parsed circuit routes identically.
    let parsed = format::from_text(&format::to_text(&circuit)).unwrap();
    let a = SequentialRouter::new(&circuit, RouterParams::default()).run();
    let b = SequentialRouter::new(&parsed, RouterParams::default()).run();
    assert_eq!(a.quality, b.quality);
    assert_eq!(a.routes, b.routes);

    // Partition, assign, and run the message-passing simulation.
    let msg = run_msgpass(&parsed, MsgPassConfig::new(4, UpdateSchedule::mixed_paper()));
    assert!(!msg.deadlocked);
    assert_eq!(msg.routes.len(), parsed.wire_count());

    // Collect a trace and push it through the coherence model.
    let shm = ShmemEmulator::new(&parsed, ShmemConfig::new(4).with_trace()).run();
    let rows = traffic_by_line_size(shm.trace.as_ref().unwrap(), &[4, 8, 16, 32]);
    assert_eq!(rows.len(), 4);
    assert!(rows.iter().all(|(_, s)| s.total_bytes > 0));
}

#[test]
fn circuit_stats_describe_presets() {
    for circuit in [locusroute::circuit::presets::bnr_e(), locusroute::circuit::presets::mdc()] {
        let stats = CircuitStats::of(&circuit);
        assert_eq!(stats.wires, circuit.wire_count());
        assert!(stats.mean_pins >= 2.0);
        assert!(stats.mean_x_span > 1.0);
        assert!(stats.max_x_span as u64 <= circuit.grids as u64);
        assert!(!stats.report().is_empty());
    }
}

#[test]
fn region_map_and_assignment_compose_for_all_paper_sizes() {
    let circuit = locusroute::circuit::presets::bnr_e();
    for procs in [1usize, 2, 4, 9, 16] {
        let regions = RegionMap::new(circuit.channels, circuit.grids, procs);
        assert_eq!(regions.n_procs(), procs);
        for strategy in [
            AssignmentStrategy::RoundRobin,
            AssignmentStrategy::Locality { threshold_cost: Some(30) },
            AssignmentStrategy::Locality { threshold_cost: None },
        ] {
            let a = assign(&circuit, &regions, strategy);
            assert_eq!(a.wires_per_proc.iter().map(Vec::len).sum::<usize>(), circuit.wire_count());
        }
    }
}

#[test]
fn mdc_preset_runs_the_message_passing_pipeline() {
    // The second benchmark circuit exercises non-square-ish dimensions
    // (12 channels) end to end at the paper's processor count.
    let circuit = locusroute::circuit::presets::mdc();
    let out =
        run_msgpass(&circuit, MsgPassConfig::new(16, UpdateSchedule::sender_initiated(2, 10)));
    assert!(!out.deadlocked);
    assert_eq!(out.routes.len(), 573);
    assert!(out.quality.circuit_height > 0);
    assert!(out.mbytes > 0.0);
}

#[test]
fn emulated_trace_addresses_match_cost_array_layout() {
    let circuit = locusroute::circuit::presets::tiny();
    let shm = ShmemEmulator::new(&circuit, ShmemConfig::new(2).with_trace()).run();
    let trace = shm.trace.unwrap();
    let n_cells = circuit.channels as u32 * circuit.grids as u32;
    for r in trace.refs() {
        assert!(r.addr < n_cells * 2, "address {} beyond the shared region", r.addr);
        assert_eq!(r.addr % 2, 0, "cost array cells are u16-aligned");
        assert!((r.proc as usize) < 2);
    }
}
