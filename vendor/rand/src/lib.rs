//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships tiny API-compatible subsets of its external dependencies under
//! `vendor/`. This crate covers exactly the surface the workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! methods `random`, `random_range`, and `random_bool`.
//!
//! The generator is SplitMix64-seeded xoshiro256++ — deterministic, fast,
//! and statistically strong enough for synthetic-circuit generation and
//! randomized tests. It makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generator construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds produce equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core RNG interface: a stream of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the generator's raw stream.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types that can be drawn uniformly from a range. The single
/// generic [`SampleRange`] impl below is what lets the compiler infer
/// `T` from an untyped literal range like `2..=8` (mirroring rand).
pub trait SampleUniform: Copy + PartialOrd {
    fn from_i128(v: i128) -> Self;
    fn to_i128(self) -> i128;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_i128(v: i128) -> Self { v as $t }
            fn to_i128(self) -> i128 { self as i128 }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        T::from_i128(self.start.to_i128() + (rng.next_u64() as u128 % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi.to_i128() - lo.to_i128()) as u128 + 1;
        T::from_i128(lo.to_i128() + (rng.next_u64() as u128 % span) as i128)
    }
}

/// Convenience sampling methods, mirroring `rand`'s `Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range. Panics on empty ranges.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four nonzero words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u16..=9);
            assert!((3..=9).contains(&v));
            let w = rng.random_range(-5i16..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }
}
