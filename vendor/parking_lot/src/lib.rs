//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io (see
//! `vendor/`). This wraps `std::sync` primitives behind
//! `parking_lot`'s poison-free API: `lock()` returns the guard directly,
//! and a poisoned std mutex (a panicking thread) is recovered rather than
//! propagated, matching `parking_lot`'s semantics of never poisoning.

use std::sync;

/// Mutual exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
