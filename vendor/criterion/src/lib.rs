//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io (see
//! `vendor/`). This harness keeps the `criterion_group!` /
//! `criterion_main!` / `bench_function` surface the workspace's benches
//! use, but replaces the statistical machinery with a plain
//! median-of-samples wall-clock measurement. Good enough to spot
//! order-of-magnitude regressions; not a substitute for real criterion
//! when precision matters.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark timing loop handed to the closure in `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one timing sample per batch.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for batches of at least ~1ms so
        // Instant overhead stays negligible.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if t0.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }
}

/// Top-level harness: collects named benchmarks and prints a one-line
/// median/min/max summary for each.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return self;
        }
        b.samples.sort_unstable();
        let median = b.samples[b.samples.len() / 2];
        let min = b.samples[0];
        let max = b.samples[b.samples.len() - 1];
        println!(
            "{name:<44} median {} (min {}, max {}, n={})",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            b.samples.len()
        );
        self
    }

    /// Compatibility no-op: configuration hook used by some criterion
    /// setups.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
