//! Strategies: composable random value generators.
//!
//! Unlike real proptest there is no value tree and no shrinking — a
//! strategy is simply a deterministic function of the test RNG.

use crate::test_runner::TestRng;
use rand::{RngExt, SampleRange};
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete type, e.g. for `prop_oneof!`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies; the expansion of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::__new_rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = __new_rng(1);
        for _ in 0..200 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-3i16..=3).generate(&mut rng);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = __new_rng(2);
        let s = (1u32..5).prop_flat_map(|n| (0u32..n).prop_map(move |k| (n, k)));
        for _ in 0..200 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn union_picks_all_arms() {
        let mut rng = __new_rng(3);
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
