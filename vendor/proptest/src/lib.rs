//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships tiny API-compatible subsets of its external dependencies under
//! `vendor/`. This crate keeps the `proptest!` surface the
//! workspace's property tests use — `Strategy` with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `collection::vec`,
//! `any`, `prop_oneof!`, `ProptestConfig`, and the assert macros — but
//! deliberately omits shrinking: a failing case reports its case number
//! and the deterministic per-test seed instead of a minimized input.

pub mod strategy;

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps debug-mode
            // `cargo test` latency reasonable for simulator-heavy
            // properties while still exploring the space.
            Config { cases: 64 }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Sizes that `vec` accepts: exact, half-open, or inclusive.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{RngCore, RngExt};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random()
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(..)]` inner attribute, then `#[test]` functions
/// whose arguments are drawn from strategies with `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __seed = $crate::__seed_for(stringify!($name));
            let __strategies = ($($strat,)*);
            for __case in 0..__config.cases {
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        #[allow(unused_variables, unused_mut)]
                        let mut __rng =
                            $crate::__new_rng(__seed.wrapping_add(__case as u64));
                        let ($($arg,)*) = {
                            let ($(ref $arg,)*) = __strategies;
                            ($($crate::strategy::Strategy::generate(
                                $arg, &mut __rng,
                            ),)*)
                        };
                        $body
                    }),
                );
                if let Err(__panic) = __result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (seed {:#x})",
                        __case,
                        __config.cases,
                        stringify!($name),
                        __seed.wrapping_add(__case as u64),
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

/// Deterministic per-test seed: reproducible failures without a
/// persistence file (FNV-1a over the test name).
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    name.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3))
}

#[doc(hidden)]
pub fn __new_rng(seed: u64) -> test_runner::TestRng {
    <test_runner::TestRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Assert a boolean condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to `continue` on the per-case loop, so it is only valid at
/// the top level of a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
