//! # locusroute
//!
//! Facade crate for `locusroute-rs` — a reproduction of Martonosi & Gupta,
//! *"Tradeoffs in Message Passing and Shared Memory Implementations of a
//! Standard Cell Router"* (ICPP 1989).
//!
//! This crate re-exports the workspace members under stable module names
//! and provides a [`prelude`] for examples and downstream users.
//!
//! ## Crate map
//!
//! * [`circuit`] — standard-cell circuit model and synthetic benchmarks.
//! * [`router`] — the LocusRoute routing core (cost array, two-bend locus
//!   routing, rip-up & re-route, quality metrics, wire assignment).
//! * [`mesh`] — CBS-style discrete-event 2-D mesh architecture simulator.
//! * [`msgpass`] — the message-passing LocusRoute implementation.
//! * [`shmem`] — the shared-memory implementation (traced emulator and
//!   real threaded executor).
//! * [`coherence`] — memory-system models over shared-data reference
//!   traces: the Write-Back-with-Invalidate bus, a write-through
//!   ablation, directory-based MSI, and a directoryless shared LLC,
//!   behind one [`MemoryModel`](locus_coherence::MemoryModel) registry.
//! * [`obs`] — unified observability: typed events, metrics registry,
//!   Chrome-trace / metrics-JSON / ASCII-timeline exporters.
//! * [`analysis`] — vector-clock race detection over coherence traces,
//!   replica-staleness auditing, and the workspace concurrency lint.
//! * [`service`] — routing as a service: seeded workload generation,
//!   a bounded-queue job server with backpressure, and latency/SLO
//!   accounting over the engine registry.
//! * [`engines`] — name → constructor registry over every
//!   [`RoutingEngine`](locus_router::RoutingEngine) in the workspace.
//!
//! ## Quickstart
//!
//! ```
//! use locusroute::prelude::*;
//!
//! // Route the tiny demo circuit sequentially.
//! let circuit = locusroute::circuit::presets::tiny();
//! let outcome = SequentialRouter::new(&circuit, RouterParams::default()).run();
//! assert!(outcome.quality.circuit_height > 0);
//!
//! // Route it with the message-passing implementation on 4 simulated
//! // processors using sender-initiated updates every 2 wires.
//! let cfg = MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 5));
//! let parallel = run_msgpass(&circuit, cfg);
//! assert!(!parallel.deadlocked);
//! ```

pub mod engines;

pub use locus_analysis as analysis;
pub use locus_circuit as circuit;
pub use locus_coherence as coherence;
pub use locus_mesh as mesh;
pub use locus_msgpass as msgpass;
pub use locus_obs as obs;
pub use locus_router as router;
pub use locus_service as service;
pub use locus_shmem as shmem;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use locus_analysis::{
        analyze_engine, audit_staleness, detect, AnalysisReport, RaceClass, StalenessReport,
    };
    pub use locus_circuit::{
        Circuit, CircuitGenerator, GeneratorConfig, GridCell, Pin, Rect, Wire,
    };
    pub use locus_coherence::{
        build_memory_model, memory_registry, traffic_by_backend, traffic_by_line_size,
        CoherenceConfig, CoherenceSim, Criticality, MemRef, MemoryConfig, MemoryModel,
        MemoryOutcome, RefKind, Trace,
    };
    pub use locus_mesh::{
        Arbiter, FaultPlan, FaultScope, MeshConfig, NodeFault, ServicePolicy, ServiceRequest,
        SimTime,
    };
    pub use locus_msgpass::{
        run_msgpass, run_msgpass_observed, MsgPassConfig, MsgPassEngine, MsgPassOutcome,
        RecoveryConfig, ReliableConfig, UpdateSchedule,
    };
    pub use locus_obs::{Event, EventKind, Metrics, NullSink, RingBufferSink, SharedSink, Sink};
    pub use locus_router::{
        assign, AssignmentStrategy, QualityMetrics, RegionMap, RouterParams, SequentialRouter,
    };
    pub use locus_router::{EngineCtx, EngineRun, RoutingEngine};
    pub use locus_service::{
        Backpressure, EngineRunner, HealthPolicy, JobServer, ServiceConfig, WorkerPool,
        WorkerState, WorkloadConfig,
    };
    pub use locus_shmem::{Scheduling, ShmemConfig, ShmemEmulator, ThreadedRouter};

    pub use crate::engines::{build_engine, registry, EngineEntry};
}
