//! Registry of the four routing engines behind one name → constructor map.
//!
//! Every executor in the workspace — the sequential reference, the
//! deterministic shared-memory emulator, the real threaded router, and
//! the message-passing simulator (both headline update schedules) —
//! implements [`RoutingEngine`]. This module names them so harnesses
//! (`locus-experiments --engine <name>`, `compare_paradigms`) can select
//! one at runtime without linking against a specific crate.

use locus_msgpass::MsgPassEngine;
use locus_router::engine::RoutingEngine;
use locus_router::SequentialEngine;
use locus_shmem::{EmulEngine, ThreadsEngine};

/// One registry row: a stable engine name, a one-line summary, and a
/// constructor.
pub struct EngineEntry {
    /// Stable engine name accepted by `--engine` (matches
    /// [`RoutingEngine::id`]).
    pub name: &'static str,
    /// One-line human description for `locus-experiments list`.
    pub summary: &'static str,
    /// Builds a fresh engine instance.
    pub build: fn() -> Box<dyn RoutingEngine>,
}

/// Every registered engine, in presentation order.
pub fn registry() -> &'static [EngineEntry] {
    &[
        EngineEntry {
            name: "sequential",
            summary: "uniprocessor reference router (pseudo-time in cells examined)",
            build: || Box::new(SequentialEngine),
        },
        EngineEntry {
            name: "shmem-emul",
            summary: "deterministic Tango-style shared-memory emulator (all table values)",
            build: || Box::new(EmulEngine),
        },
        EngineEntry {
            name: "shmem-threads",
            summary: "real OS-thread shared-memory router (nondeterministic, wall clock)",
            build: || Box::new(ThreadsEngine),
        },
        EngineEntry {
            name: "msgpass-sender",
            summary: "message-passing mesh, sender-initiated updates (2,10)",
            build: || Box::new(MsgPassEngine::sender()),
        },
        EngineEntry {
            name: "msgpass-receiver",
            summary: "message-passing mesh, receiver-initiated updates (1,5)",
            build: || Box::new(MsgPassEngine::receiver()),
        },
    ]
}

/// Builds the engine registered under `name`, or returns the list of
/// valid names as the error.
pub fn build_engine(name: &str) -> Result<Box<dyn RoutingEngine>, String> {
    registry().iter().find(|e| e.name == name).map(|e| (e.build)()).ok_or_else(|| {
        let names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        format!("unknown engine '{name}' (expected one of: {})", names.join(", "))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_router::engine::EngineCtx;
    use locus_router::RouterParams;

    #[test]
    fn registry_names_match_engine_ids() {
        for entry in registry() {
            assert_eq!((entry.build)().id(), entry.name);
        }
    }

    #[test]
    fn build_engine_rejects_unknown_names() {
        let err = build_engine("nonesuch").err().expect("unknown name must fail");
        assert!(err.contains("nonesuch") && err.contains("sequential"), "{err}");
    }

    #[test]
    fn every_engine_routes_the_tiny_circuit() {
        let c = locus_circuit::presets::tiny();
        let params = RouterParams::default();
        for entry in registry() {
            let run = (entry.build)().route(&c, &params, &EngineCtx::new(2));
            assert_eq!(
                run.outcome.routes.len(),
                c.wire_count(),
                "engine {} left wires unrouted",
                entry.name
            );
        }
    }
}
