//! Network and timing statistics.

use crate::time::SimTime;

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Packets injected into the network.
    pub packets: u64,
    /// Total payload bytes sent (the "MBytes Xfrd." metric of the
    /// paper's tables counts application bytes moved between processors).
    pub payload_bytes: u64,
    /// Total wire bytes (payload + framing).
    pub wire_bytes: u64,
    /// Σ over packets of `wire_bytes × hops` — channel occupancy.
    pub byte_hops: u64,
    /// Total time packets spent blocked on busy channels (contention).
    pub contention_ns: u64,
    /// Per-node busy time (application work + send/receive overheads).
    pub busy_ns: Vec<u64>,
    /// Time each node finished (`Step::Done`).
    pub done_at: Vec<SimTime>,
    /// Completion time of the whole program: max over nodes of `done_at`.
    pub completion: SimTime,
    /// True if the run ended with nodes blocked forever (deadlock) or
    /// messages undeliverable.
    pub deadlocked: bool,
}

impl NetStats {
    /// Creates zeroed stats for `n` nodes.
    pub fn new(n: usize) -> Self {
        NetStats {
            busy_ns: vec![0; n],
            done_at: vec![SimTime::ZERO; n],
            ..Default::default()
        }
    }

    /// Payload traffic in megabytes (10^6 bytes, as the paper reports).
    pub fn mbytes_transferred(&self) -> f64 {
        self.payload_bytes as f64 / 1e6
    }

    /// Mean node utilization: busy time / completion time.
    pub fn mean_utilization(&self) -> f64 {
        if self.completion == SimTime::ZERO || self.busy_ns.is_empty() {
            return 0.0;
        }
        let mean_busy = self.busy_ns.iter().sum::<u64>() as f64 / self.busy_ns.len() as f64;
        mean_busy / self.completion.as_ns() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbytes_conversion() {
        let mut s = NetStats::new(2);
        s.payload_bytes = 1_400_000;
        assert!((s.mbytes_transferred() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn utilization() {
        let mut s = NetStats::new(2);
        s.completion = SimTime::from_ns(1000);
        s.busy_ns = vec![600, 200];
        assert!((s.mean_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_empty_run_is_zero() {
        let s = NetStats::new(0);
        assert_eq!(s.mean_utilization(), 0.0);
    }
}
