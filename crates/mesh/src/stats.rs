//! Network and timing statistics.

use crate::time::SimTime;

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Packets injected into the network.
    pub packets: u64,
    /// Total payload bytes sent (the "MBytes Xfrd." metric of the
    /// paper's tables counts application bytes moved between processors).
    pub payload_bytes: u64,
    /// Total wire bytes (payload + framing).
    pub wire_bytes: u64,
    /// Σ over packets of `wire_bytes × hops` — channel occupancy.
    pub byte_hops: u64,
    /// Total time packets spent blocked on busy channels (contention).
    pub contention_ns: u64,
    /// Packets injected by each node (sums to `packets`).
    pub packets_by_node: Vec<u64>,
    /// Payload bytes injected by each node (sums to `payload_bytes`).
    pub payload_bytes_by_node: Vec<u64>,
    /// Per-node busy time (application work + send/receive overheads).
    pub busy_ns: Vec<u64>,
    /// Time each node finished (`Step::Done`).
    pub done_at: Vec<SimTime>,
    /// Completion time of the whole program: max over nodes of `done_at`.
    pub completion: SimTime,
    /// True if the run ended with nodes blocked forever (deadlock) or
    /// messages undeliverable.
    pub deadlocked: bool,
    /// True if the run was cut off by the kernel's event limit rather
    /// than a genuine deadlock (`deadlocked` is also set in that case;
    /// this flag tells the two apart).
    pub event_limit_hit: bool,
    /// Deliveries discarded by the fault layer (the injection itself is
    /// still counted in `packets`).
    pub packets_dropped: u64,
    /// Extra envelope copies injected by the fault layer (each copy is
    /// also counted in `packets` — it consumed real bandwidth).
    pub packets_duplicated: u64,
    /// Deliveries given extra latency by the fault layer.
    pub packets_delayed: u64,
    /// Deliveries held for overtaking by the fault layer.
    pub packets_reordered: u64,
    /// Node crashes injected by the node-fault layer (fail-stop and the
    /// down phase of fail-recover).
    pub node_crashes: u64,
    /// Crashed nodes that came back up.
    pub node_restarts: u64,
    /// Deliveries lost because an endpoint was down: inbound packets to
    /// a crashed node plus outbound packets a node had in flight when it
    /// crashed.
    pub packets_lost_to_crash: u64,
    /// Which nodes ended the run crashed (down and never restarted).
    pub crashed: Vec<bool>,
}

impl NetStats {
    /// Creates zeroed stats for `n` nodes.
    pub fn new(n: usize) -> Self {
        NetStats {
            packets_by_node: vec![0; n],
            payload_bytes_by_node: vec![0; n],
            busy_ns: vec![0; n],
            done_at: vec![SimTime::ZERO; n],
            crashed: vec![false; n],
            ..Default::default()
        }
    }

    /// Accounts one packet injected by `src`. All counters saturate: a
    /// pathological run must degrade the statistics, never wrap them
    /// into nonsense the downstream cross-checks would trip over.
    pub fn record_packet(&mut self, src: usize, payload: u64, wire: u64, hops: u64) {
        self.packets = self.packets.saturating_add(1);
        self.payload_bytes = self.payload_bytes.saturating_add(payload);
        self.wire_bytes = self.wire_bytes.saturating_add(wire);
        self.byte_hops = self.byte_hops.saturating_add(wire.saturating_mul(hops));
        self.packets_by_node[src] = self.packets_by_node[src].saturating_add(1);
        self.payload_bytes_by_node[src] = self.payload_bytes_by_node[src].saturating_add(payload);
    }

    /// Accounts channel-contention stall time (saturating).
    pub fn add_contention(&mut self, stall_ns: u64) {
        self.contention_ns = self.contention_ns.saturating_add(stall_ns);
    }

    /// Debug-asserts that the per-node breakdowns sum to the global
    /// totals — the invariant the observability cross-checks rely on.
    pub fn debug_assert_consistent(&self) {
        debug_assert_eq!(
            self.packets_by_node.iter().fold(0u64, |a, &b| a.saturating_add(b)),
            self.packets,
            "per-node packet counts must sum to the global total"
        );
        debug_assert_eq!(
            self.payload_bytes_by_node.iter().fold(0u64, |a, &b| a.saturating_add(b)),
            self.payload_bytes,
            "per-node payload bytes must sum to the global total"
        );
    }

    /// Total faults of all kinds injected by the fault layer.
    pub fn faults_injected(&self) -> u64 {
        self.packets_dropped
            .saturating_add(self.packets_duplicated)
            .saturating_add(self.packets_delayed)
            .saturating_add(self.packets_reordered)
    }

    /// Payload traffic in megabytes (10^6 bytes, as the paper reports).
    pub fn mbytes_transferred(&self) -> f64 {
        self.payload_bytes as f64 / 1e6
    }

    /// Mean node utilization: busy time / completion time.
    pub fn mean_utilization(&self) -> f64 {
        if self.completion == SimTime::ZERO || self.busy_ns.is_empty() {
            return 0.0;
        }
        let mean_busy = self.busy_ns.iter().sum::<u64>() as f64 / self.busy_ns.len() as f64;
        mean_busy / self.completion.as_ns() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbytes_conversion() {
        let mut s = NetStats::new(2);
        s.payload_bytes = 1_400_000;
        assert!((s.mbytes_transferred() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn utilization() {
        let mut s = NetStats::new(2);
        s.completion = SimTime::from_ns(1000);
        s.busy_ns = vec![600, 200];
        assert!((s.mean_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_empty_run_is_zero() {
        let s = NetStats::new(0);
        assert_eq!(s.mean_utilization(), 0.0);
    }

    #[test]
    fn record_packet_keeps_per_node_and_global_in_sync() {
        let mut s = NetStats::new(3);
        s.record_packet(0, 40, 44, 2);
        s.record_packet(2, 10, 14, 1);
        s.record_packet(2, 6, 10, 3);
        assert_eq!(s.packets, 3);
        assert_eq!(s.payload_bytes, 56);
        assert_eq!(s.wire_bytes, 68);
        assert_eq!(s.byte_hops, 44 * 2 + 14 + 10 * 3);
        assert_eq!(s.packets_by_node, vec![1, 0, 2]);
        assert_eq!(s.payload_bytes_by_node, vec![40, 0, 16]);
        s.debug_assert_consistent();
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = NetStats::new(1);
        s.payload_bytes = u64::MAX - 1;
        s.payload_bytes_by_node[0] = u64::MAX - 1;
        s.record_packet(0, 100, 100, u64::MAX);
        assert_eq!(s.payload_bytes, u64::MAX);
        assert_eq!(s.payload_bytes_by_node[0], u64::MAX);
        assert_eq!(s.byte_hops, u64::MAX, "wire × hops must saturate");
        s.contention_ns = u64::MAX;
        s.add_contention(5);
        assert_eq!(s.contention_ns, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "per-node packet counts")]
    #[cfg(debug_assertions)]
    fn inconsistent_breakdown_is_caught() {
        let mut s = NetStats::new(2);
        s.record_packet(0, 1, 2, 1);
        s.packets_by_node[1] = 7;
        s.debug_assert_consistent();
    }
}
