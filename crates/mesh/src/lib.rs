//! # locus-mesh
//!
//! A discrete-event simulator for a 2-D mesh message-passing machine,
//! re-implementing the documented model of **CBS** (Nowatzyk's message
//! passing cube simulator) as used in Martonosi & Gupta (ICPP 1989) §2.1:
//!
//! * k-ary 2-dimensional mesh with unidirectional channels,
//! * deterministic (dimension-order) wormhole routing,
//! * network contention modelling,
//! * uncontended packet latency `2·ProcessTime + HopTime·(D + L)` for a
//!   packet of `L` bytes travelling `D` hops, with `HopTime = 100 ns` and
//!   `ProcessTime = 2000 ns` to model the Ametek Series 2010.
//!
//! Application code is expressed as [`Node`] actors scheduled by the
//! [`Kernel`]; the message-passing router of `locus-msgpass` is one such
//! actor program. The kernel reports network-traffic and timing
//! statistics ([`NetStats`]) corresponding to the "MBytes Xfrd." and
//! "Time (s)" columns of the paper's tables.

pub mod arbiter;
pub mod config;
pub mod fault;
pub mod kernel;
pub mod node;
pub mod stats;
pub mod time;
pub mod topology;

pub use arbiter::{Arbiter, ResolvedContention, ServicePolicy, ServiceRequest, WaitStats};
pub use config::MeshConfig;
pub use fault::{Fault, FaultInjector, FaultPlan, FaultScope, NodeFault};
pub use kernel::{Kernel, SimOutcome};
pub use node::{Envelope, Node, Outbox, Step};
pub use stats::NetStats;
pub use time::SimTime;
pub use topology::{NodeId, Topology};
