//! The node-actor programming interface.

use crate::time::SimTime;
use crate::topology::NodeId;

/// A message in flight or delivered, with transport metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Payload size in bytes (application accounting; framing is added by
    /// the kernel on the wire).
    pub bytes: u32,
    /// When the sender issued the message.
    pub sent_at: SimTime,
    /// The application message.
    pub msg: M,
}

/// What a node does after a scheduling step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The node performed `busy_ns` of local work (routing, scanning a
    /// delta array, …) and wants to be scheduled again when it is done.
    /// Send and receive overheads are charged by the kernel on top.
    Continue {
        /// Nanoseconds of application work done this step.
        busy_ns: u64,
    },
    /// The node is idle until the next message arrives (used by the
    /// *blocking* receiver-initiated update strategy, §4.3.3).
    Block,
    /// The node is idle until `until` — or until a message arrives,
    /// whichever is first (retransmission timers and linger periods of
    /// the reliability layer ride on this).
    Sleep {
        /// Wake deadline. A deadline in the past schedules an immediate
        /// wake.
        until: SimTime,
    },
    /// The node's program is complete.
    Done,
}

/// Messages queued for sending during one step.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) sends: Vec<(NodeId, u32, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Outbox<M> {
    /// Creates an empty outbox (public so application crates can unit-test
    /// their nodes outside the kernel).
    pub fn new() -> Self {
        Outbox { sends: Vec::new() }
    }

    /// The `(to, bytes, msg)` sends queued so far (for tests/inspection).
    pub fn sends(&self) -> &[(NodeId, u32, M)] {
        &self.sends
    }

    /// Queues `msg` of `bytes` payload bytes to node `to`.
    ///
    /// # Panics
    /// Panics on self-sends: the application should short-circuit local
    /// work instead of paying network cost to itself.
    pub fn send(&mut self, to: NodeId, bytes: u32, msg: M) {
        self.sends.push((to, bytes, msg));
    }

    /// Number of messages queued so far this step.
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }
}

/// An application actor running on one mesh node.
///
/// The kernel calls [`Node::step`] whenever the node is scheduled,
/// handing it every message that arrived since the previous step. The
/// node performs a bounded chunk of work (typically: install updates,
/// route one wire, emit due update packets) and reports how long that
/// work took via [`Step`].
pub trait Node {
    /// Application message type (`Clone` so the fault layer can inject
    /// duplicate deliveries).
    type Msg: Clone;

    /// Executes one scheduling step at simulated time `now`.
    fn step(
        &mut self,
        now: SimTime,
        inbox: Vec<Envelope<Self::Msg>>,
        outbox: &mut Outbox<Self::Msg>,
    ) -> Step;

    /// Called once when the node comes back up after a
    /// [`crate::fault::NodeFault::CrashRestart`] downtime, before its
    /// first post-restart [`Node::step`]. The actor keeps its local
    /// state (volatile memory is modelled as surviving in checkpointed
    /// form); implementations roll back to their last checkpoint here.
    /// The default is a no-op.
    fn on_restart(&mut self, _now: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_accumulates_sends() {
        let mut o: Outbox<u32> = Outbox::new();
        assert!(o.is_empty());
        o.send(1, 16, 99);
        o.send(2, 8, 7);
        assert_eq!(o.len(), 2);
        assert_eq!(o.sends[0], (1, 16, 99));
    }
}
