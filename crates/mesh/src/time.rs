//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time in nanoseconds.
///
/// `u64` nanoseconds covers ~584 simulated years — far beyond any run —
/// while keeping arithmetic exact. Additions are `checked` in debug
/// builds via the standard integer overflow checks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Conversion to floating-point seconds (for table output).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elementwise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert!((SimTime::from_ms(1500).as_secs_f64() - 1.5e-3 * 1000.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime(100);
        let b = SimTime(250);
        assert_eq!(a + b, SimTime(350));
        assert_eq!(b - a, SimTime(150));
        assert_eq!(a + 50u64, SimTime(150));
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_in_seconds() {
        assert_eq!(SimTime::from_ms(1219).to_string(), "1.219000s");
    }
}
