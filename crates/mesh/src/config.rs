//! Mesh machine configuration.

use crate::fault::FaultPlan;

/// Parameters of the simulated machine.
///
/// Defaults follow the paper's CBS setup (§2.1): one-byte-wide channels,
/// `HopTime = 100 ns`, `ProcessTime = 2000 ns` (Ametek Series 2010), a
/// two-dimensional mesh, and contention modelling enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshConfig {
    /// Processor-mesh rows.
    pub rows: usize,
    /// Processor-mesh columns.
    pub cols: usize,
    /// Time for one byte to travel one hop (ns).
    pub hop_time_ns: u64,
    /// Time for an entire message to be copied between a processor node
    /// and the network (ns); paid once at each end.
    pub process_time_ns: u64,
    /// Extra bytes added to every packet for header/envelope (route,
    /// type, bounding-box coordinates are accounted by the application;
    /// this is the transport-level framing).
    pub header_bytes: u32,
    /// Per-byte cost of disassembling a received packet into application
    /// state (ns/byte), charged to the receiving node's busy time. The
    /// paper notes packet assembly/disassembly reaches a quarter of
    /// processing time at high update rates.
    pub recv_per_byte_ns: u64,
    /// Whether channel contention is modelled (CBS models it; turning it
    /// off recovers the pure latency law and is used in tests/ablations).
    pub contention: bool,
    /// Deterministic fault schedule ([`FaultPlan::none`] by default; an
    /// idle plan costs nothing — the kernel builds no injector for it).
    pub faults: FaultPlan,
}

impl MeshConfig {
    /// The paper's machine for `rows × cols` processors.
    pub fn ametek(rows: usize, cols: usize) -> Self {
        MeshConfig {
            rows,
            cols,
            hop_time_ns: 100,
            process_time_ns: 2000,
            header_bytes: 8,
            recv_per_byte_ns: 20,
            contention: true,
            faults: FaultPlan::none(),
        }
    }

    /// Number of processors.
    pub fn n_nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// Uncontended end-to-end latency of an `l`-byte payload over `d`
    /// hops: `2·ProcessTime + HopTime·(D + L)` with framing included.
    pub fn uncontended_latency_ns(&self, d: u32, payload_bytes: u32) -> u64 {
        let l = (payload_bytes + self.header_bytes) as u64;
        2 * self.process_time_ns + self.hop_time_ns * (d as u64 + l)
    }

    /// Returns `self` with contention disabled.
    pub fn without_contention(mut self) -> Self {
        self.contention = false;
        self
    }

    /// Returns `self` with the given fault schedule attached.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

impl Default for MeshConfig {
    /// The paper's default evaluation machine: 16 processors, 4×4.
    fn default() -> Self {
        MeshConfig::ametek(4, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MeshConfig::default();
        assert_eq!(c.n_nodes(), 16);
        assert_eq!(c.hop_time_ns, 100);
        assert_eq!(c.process_time_ns, 2000);
        assert!(c.contention);
    }

    #[test]
    fn latency_law() {
        let c = MeshConfig::ametek(4, 4);
        // 2*2000 + 100*(D + L), L includes 8 framing bytes.
        assert_eq!(c.uncontended_latency_ns(3, 12), 4000 + 100 * (3 + 20));
        assert_eq!(c.uncontended_latency_ns(0, 0), 4000 + 100 * 8);
    }
}
