//! 2-D mesh topology and deterministic dimension-order routing.
//!
//! Processors are numbered row-major. Each node has up to four outgoing
//! unidirectional channels (East, West, South, North). A packet routes
//! X-first (along its row) then Y — the deterministic wormhole routing
//! CBS simulates; dimension-order routing is deadlock-free on a mesh.

/// Node identifier, `0..rows*cols`, row-major.
pub type NodeId = usize;

/// Directions of the four outgoing channels of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// +x (toward higher column).
    East = 0,
    /// −x.
    West = 1,
    /// +row (toward higher row index).
    South = 2,
    /// −row.
    North = 3,
}

/// Mesh shape plus routing helpers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Mesh rows.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
}

impl Topology {
    /// Creates a `rows × cols` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be nonzero");
        Topology { rows, cols }
    }

    /// The near-square mesh that holds `n` processors: rows is the
    /// largest divisor of `n` that is ≤ √n (so 16 → 4×4, 12 → 3×4,
    /// primes degrade to 1×n). Matches the region-tiling factorization
    /// the shared-memory router uses, so memory backends price hops over
    /// the same machine shape.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn for_procs(n: usize) -> Self {
        assert!(n > 0, "mesh must hold at least one processor");
        let mut rows = (n as f64).sqrt() as usize;
        while rows > 1 && !n.is_multiple_of(rows) {
            rows -= 1;
        }
        let rows = rows.max(1);
        Topology::new(rows, n / rows)
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of directed channel slots (4 per node; edge channels exist
    /// as slots but are never used by in-bounds routes).
    #[inline]
    pub fn n_channels(&self) -> usize {
        self.n_nodes() * 4
    }

    /// Mesh coordinates of `n`.
    #[inline]
    pub fn coords(&self, n: NodeId) -> (usize, usize) {
        debug_assert!(n < self.n_nodes());
        (n / self.cols, n % self.cols)
    }

    /// Node at `(row, col)`.
    #[inline]
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Directed channel id leaving `n` in direction `dir`.
    #[inline]
    pub fn channel(&self, n: NodeId, dir: Dir) -> usize {
        n * 4 + dir as usize
    }

    /// Hop count of the dimension-order route from `src` to `dst`.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let (sr, sc) = self.coords(src);
        let (dr, dc) = self.coords(dst);
        (sr.abs_diff(dr) + sc.abs_diff(dc)) as u32
    }

    /// The directed channels traversed by the dimension-order (X then Y)
    /// route from `src` to `dst`, in order. Empty for `src == dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<usize> {
        let (sr, sc) = self.coords(src);
        let (dr, dc) = self.coords(dst);
        let mut channels = Vec::with_capacity(self.hops(src, dst) as usize);
        let (mut r, mut c) = (sr, sc);
        // X dimension first.
        while c != dc {
            let dir = if dc > c { Dir::East } else { Dir::West };
            channels.push(self.channel(self.node_at(r, c), dir));
            c = if dc > c { c + 1 } else { c - 1 };
        }
        // Then Y.
        while r != dr {
            let dir = if dr > r { Dir::South } else { Dir::North };
            channels.push(self.channel(self.node_at(r, c), dir));
            r = if dr > r { r + 1 } else { r - 1 };
        }
        channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_procs_matches_region_tiling() {
        assert_eq!(Topology::for_procs(1), Topology::new(1, 1));
        assert_eq!(Topology::for_procs(4), Topology::new(2, 2));
        assert_eq!(Topology::for_procs(6), Topology::new(2, 3));
        assert_eq!(Topology::for_procs(12), Topology::new(3, 4));
        assert_eq!(Topology::for_procs(16), Topology::new(4, 4));
        assert_eq!(Topology::for_procs(7), Topology::new(1, 7));
        for n in 1..=64 {
            assert_eq!(Topology::for_procs(n).n_nodes(), n);
        }
    }

    #[test]
    fn coords_roundtrip() {
        let t = Topology::new(4, 4);
        for n in 0..16 {
            let (r, c) = t.coords(n);
            assert_eq!(t.node_at(r, c), n);
        }
    }

    #[test]
    fn hops_are_manhattan() {
        let t = Topology::new(4, 4);
        assert_eq!(t.hops(0, 15), 6);
        assert_eq!(t.hops(5, 5), 0);
        assert_eq!(t.hops(0, 3), 3);
        assert_eq!(t.hops(0, 12), 3);
    }

    #[test]
    fn route_length_equals_hops() {
        let t = Topology::new(4, 4);
        for src in 0..16 {
            for dst in 0..16 {
                assert_eq!(t.route(src, dst).len() as u32, t.hops(src, dst));
            }
        }
    }

    #[test]
    fn route_is_x_first() {
        let t = Topology::new(4, 4);
        // 0 (0,0) -> 15 (3,3): 3 east channels then 3 south channels.
        let r = t.route(0, 15);
        assert_eq!(r.len(), 6);
        // First three leave nodes 0,1,2 eastward.
        assert_eq!(r[0], t.channel(0, Dir::East));
        assert_eq!(r[1], t.channel(1, Dir::East));
        assert_eq!(r[2], t.channel(2, Dir::East));
        // Remaining three go south from column 3.
        assert_eq!(r[3], t.channel(3, Dir::South));
        assert_eq!(r[4], t.channel(7, Dir::South));
        assert_eq!(r[5], t.channel(11, Dir::South));
    }

    #[test]
    fn route_westward_and_northward() {
        let t = Topology::new(3, 3);
        // 8 (2,2) -> 0 (0,0): west, west, north, north.
        let r = t.route(8, 0);
        assert_eq!(r[0], t.channel(8, Dir::West));
        assert_eq!(r[1], t.channel(7, Dir::West));
        assert_eq!(r[2], t.channel(6, Dir::North));
        assert_eq!(r[3], t.channel(3, Dir::North));
    }

    #[test]
    fn self_route_is_empty() {
        let t = Topology::new(2, 2);
        assert!(t.route(3, 3).is_empty());
    }

    #[test]
    fn channel_ids_unique() {
        let t = Topology::new(3, 3);
        let mut seen = std::collections::HashSet::new();
        for n in 0..t.n_nodes() {
            for dir in [Dir::East, Dir::West, Dir::South, Dir::North] {
                assert!(seen.insert(t.channel(n, dir)));
            }
        }
        assert_eq!(seen.len(), t.n_channels());
    }

    #[test]
    fn deterministic_routes_share_channels() {
        // Dimension-order routing: 0->5 and 0->6 share the first east hop.
        let t = Topology::new(4, 4);
        let a = t.route(0, 5);
        let b = t.route(0, 6);
        assert_eq!(a[0], b[0]);
    }
}
