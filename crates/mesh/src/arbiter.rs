//! Deterministic service-queue arbitration with optional criticality-aware
//! priority — the latency/contention pricing layer the pluggable memory
//! backends (`locus-coherence`) charge their messages through.
//!
//! The mesh [`Kernel`](crate::kernel::Kernel) models wormhole channel
//! blocking for the message-passing router; the memory-system backends
//! need a different, simpler resource model: a shared *service point* (the
//! snooping bus, a directory home node, an LLC home tile) that serves one
//! request at a time. Backends log every request they price —
//! `(resource, proc, arrival, service time, criticality)` — into an
//! [`Arbiter`] while replaying a trace, then [`Arbiter::resolve`] replays
//! the request log under a [`ServicePolicy`]:
//!
//! * [`ServicePolicy::Fifo`] — requests are granted in arrival order (the
//!   classic bus arbiter);
//! * [`ServicePolicy::CriticalFirst`] — at every grant instant, queued
//!   **critical** requests (rip-up/commit stores that gate a route
//!   decision) are serviced before queued background requests
//!   (speculative candidate-sweep loads), in the spirit of
//!   criticality-aware memory scheduling (arXiv:1606.05933).
//!
//! Resolving is deterministic: the same log and policy always produce the
//! same grant schedule, and both policies can be resolved from one log so
//! a study can report the FIFO-vs-priority delta on identical traffic.

/// How queued requests are granted the service point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServicePolicy {
    /// Grant strictly in arrival order.
    Fifo,
    /// Grant queued critical requests first (FIFO within each class).
    CriticalFirst,
}

impl ServicePolicy {
    /// Short stable name (used by reports).
    pub fn name(&self) -> &'static str {
        match self {
            ServicePolicy::Fifo => "fifo",
            ServicePolicy::CriticalFirst => "critical-first",
        }
    }
}

/// One priced request for a service point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceRequest {
    /// The contended resource (bus = 0, or a home node/tile id).
    pub resource: u32,
    /// Requesting processor (indexes per-proc wait accounting).
    pub proc: u32,
    /// When the request reaches the service point (ns).
    pub arrive_ns: u64,
    /// How long the service point is busy with it (ns).
    pub service_ns: u64,
    /// Whether the requester is blocked on the result (rip-up/commit
    /// stores) rather than streaming speculative reads.
    pub critical: bool,
}

/// Wait accounting for one request class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Requests granted.
    pub requests: u64,
    /// Total queueing delay (grant − arrival) across them (ns).
    pub total_wait_ns: u64,
    /// Largest single queueing delay (ns).
    pub max_wait_ns: u64,
}

impl WaitStats {
    fn record(&mut self, wait_ns: u64) {
        self.requests += 1;
        self.total_wait_ns = self.total_wait_ns.saturating_add(wait_ns);
        self.max_wait_ns = self.max_wait_ns.max(wait_ns);
    }

    /// Mean queueing delay in ns (0 when no requests).
    pub fn mean_wait_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_wait_ns as f64 / self.requests as f64
        }
    }
}

/// The grant schedule statistics of one [`Arbiter::resolve`] run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResolvedContention {
    /// Waits of requests flagged critical.
    pub critical: WaitStats,
    /// Waits of background requests.
    pub background: WaitStats,
    /// Total queueing delay charged to each processor (ns).
    pub per_proc_wait_ns: Vec<u64>,
    /// Total busy time across all service points (ns).
    pub busy_ns: u64,
    /// Completion time of the last grant (ns).
    pub makespan_ns: u64,
}

impl ResolvedContention {
    /// Waits over both classes combined.
    pub fn all(&self) -> WaitStats {
        WaitStats {
            requests: self.critical.requests + self.background.requests,
            total_wait_ns: self
                .critical
                .total_wait_ns
                .saturating_add(self.background.total_wait_ns),
            max_wait_ns: self.critical.max_wait_ns.max(self.background.max_wait_ns),
        }
    }
}

/// A request log plus the machinery to replay it under a policy; see
/// [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct Arbiter {
    requests: Vec<ServiceRequest>,
}

impl Arbiter {
    /// Creates an empty request log.
    pub fn new() -> Self {
        Arbiter::default()
    }

    /// Logs one request.
    #[inline]
    pub fn push(&mut self, req: ServiceRequest) {
        self.requests.push(req);
    }

    /// Requests logged so far.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Replays the log under `policy` and returns the wait accounting.
    ///
    /// Each resource serves one request at a time. Whenever the resource
    /// frees up (or sits idle until the next arrival), the policy picks
    /// the next queued request; ties keep log order, so resolution is
    /// deterministic regardless of equal timestamps.
    pub fn resolve(&self, policy: ServicePolicy) -> ResolvedContention {
        let n_procs = self.requests.iter().map(|r| r.proc as usize + 1).max().unwrap_or(0);
        let mut out = ResolvedContention {
            per_proc_wait_ns: vec![0; n_procs],
            ..ResolvedContention::default()
        };

        // Group request indices by resource, preserving log order (the
        // backends replay time-ordered traces, so log order is arrival
        // order; a stable sort keeps that true even with equal stamps).
        let mut by_resource: Vec<(u32, Vec<usize>)> = Vec::new();
        for (i, r) in self.requests.iter().enumerate() {
            match by_resource.iter_mut().find(|(res, _)| *res == r.resource) {
                Some((_, v)) => v.push(i),
                None => by_resource.push((r.resource, vec![i])),
            }
        }

        for (_, idxs) in &mut by_resource {
            idxs.sort_by_key(|&i| self.requests[i].arrive_ns);
            let mut queue: Vec<usize> = Vec::new();
            let mut next = 0usize; // next un-admitted arrival
            let mut now = 0u64; // resource free at `now`
            while next < idxs.len() || !queue.is_empty() {
                if queue.is_empty() {
                    now = now.max(self.requests[idxs[next]].arrive_ns);
                }
                while next < idxs.len() && self.requests[idxs[next]].arrive_ns <= now {
                    queue.push(idxs[next]);
                    next += 1;
                }
                let pick_pos = match policy {
                    ServicePolicy::Fifo => 0,
                    ServicePolicy::CriticalFirst => {
                        queue.iter().position(|&i| self.requests[i].critical).unwrap_or(0)
                    }
                };
                let i = queue.remove(pick_pos);
                let r = &self.requests[i];
                let wait = now - r.arrive_ns;
                if r.critical {
                    out.critical.record(wait);
                } else {
                    out.background.record(wait);
                }
                out.per_proc_wait_ns[r.proc as usize] =
                    out.per_proc_wait_ns[r.proc as usize].saturating_add(wait);
                out.busy_ns = out.busy_ns.saturating_add(r.service_ns);
                now += r.service_ns;
                out.makespan_ns = out.makespan_ns.max(now);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(resource: u32, proc: u32, arrive: u64, service: u64, critical: bool) -> ServiceRequest {
        ServiceRequest { resource, proc, arrive_ns: arrive, service_ns: service, critical }
    }

    #[test]
    fn uncontended_requests_never_wait() {
        let mut a = Arbiter::new();
        a.push(req(0, 0, 0, 100, false));
        a.push(req(0, 1, 1_000, 100, true));
        for policy in [ServicePolicy::Fifo, ServicePolicy::CriticalFirst] {
            let r = a.resolve(policy);
            assert_eq!(r.all().total_wait_ns, 0, "{policy:?}");
            assert_eq!(r.busy_ns, 200);
            assert_eq!(r.makespan_ns, 1_100);
        }
    }

    #[test]
    fn fifo_waits_accumulate_in_arrival_order() {
        let mut a = Arbiter::new();
        a.push(req(0, 0, 0, 100, false));
        a.push(req(0, 1, 10, 100, false));
        a.push(req(0, 2, 20, 100, false));
        let r = a.resolve(ServicePolicy::Fifo);
        // Grants at 0, 100, 200 → waits 0, 90, 180.
        assert_eq!(r.background.total_wait_ns, 270);
        assert_eq!(r.background.max_wait_ns, 180);
        assert_eq!(r.per_proc_wait_ns, vec![0, 90, 180]);
    }

    #[test]
    fn critical_first_overtakes_queued_background() {
        let mut a = Arbiter::new();
        a.push(req(0, 0, 0, 100, false)); // in service at t=0
        a.push(req(0, 1, 10, 100, false)); // queued
        a.push(req(0, 2, 20, 100, true)); // critical, queued behind it
        let fifo = a.resolve(ServicePolicy::Fifo);
        let prio = a.resolve(ServicePolicy::CriticalFirst);
        // FIFO: critical granted at 200 (wait 180). Priority: at 100 (wait 80).
        assert_eq!(fifo.critical.total_wait_ns, 180);
        assert_eq!(prio.critical.total_wait_ns, 80);
        assert!(prio.critical.total_wait_ns < fifo.critical.total_wait_ns);
        // Conservation: total wait only shifts between classes.
        assert_eq!(
            fifo.all().total_wait_ns,
            prio.all().total_wait_ns,
            "equal service times make total wait policy-invariant"
        );
        assert_eq!(fifo.busy_ns, prio.busy_ns);
        assert_eq!(fifo.makespan_ns, prio.makespan_ns);
    }

    #[test]
    fn in_service_requests_are_not_preempted() {
        let mut a = Arbiter::new();
        a.push(req(0, 0, 0, 1_000, false)); // long background in service
        a.push(req(0, 1, 1, 10, true)); // critical arrives just after
        let prio = a.resolve(ServicePolicy::CriticalFirst);
        // Non-preemptive: the critical request still waits out the grant.
        assert_eq!(prio.critical.total_wait_ns, 999);
    }

    #[test]
    fn resources_are_independent() {
        let mut a = Arbiter::new();
        a.push(req(0, 0, 0, 100, false));
        a.push(req(1, 1, 0, 100, false));
        let r = a.resolve(ServicePolicy::Fifo);
        assert_eq!(r.all().total_wait_ns, 0, "different resources never queue on each other");
        assert_eq!(r.busy_ns, 200);
        assert_eq!(r.makespan_ns, 100);
    }

    #[test]
    fn resolve_is_deterministic_and_reusable() {
        let mut a = Arbiter::new();
        for i in 0..50u64 {
            a.push(req((i % 3) as u32, (i % 4) as u32, i * 7 % 40, 25, i % 5 == 0));
        }
        let x = a.resolve(ServicePolicy::CriticalFirst);
        let y = a.resolve(ServicePolicy::CriticalFirst);
        assert_eq!(x, y);
        // The log is still intact for the other policy.
        let f = a.resolve(ServicePolicy::Fifo);
        assert_eq!(f.all().requests, 50);
    }

    #[test]
    fn mean_wait_handles_empty_class() {
        let stats = WaitStats::default();
        assert_eq!(stats.mean_wait_ns(), 0.0);
    }
}
