//! The discrete-event simulation kernel.
//!
//! Executes a set of [`Node`] actors on the mesh, modelling:
//!
//! * **message latency** — `2·ProcessTime + HopTime·(D + L)` uncontended;
//! * **contention** — each unidirectional channel is reserved while a
//!   packet's flit stream passes; a later packet's header stalls on a busy
//!   channel (wormhole blocking approximated at packet granularity);
//! * **processor occupancy** — a node is busy for its reported work time,
//!   plus `ProcessTime` per packet sent, plus `ProcessTime` and a
//!   per-byte disassembly cost per packet received.
//!
//! Event ordering is `(time, sequence-number)`, so runs are fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use locus_obs::{Event as ObsEvent, EventKind as ObsKind, FaultKind, NullSink, Sink};

use crate::config::MeshConfig;
use crate::fault::{Fault, FaultInjector};
use crate::node::{Envelope, Node, Outbox, Step};
use crate::stats::NetStats;
use crate::time::SimTime;
use crate::topology::{NodeId, Topology};

enum EventKind<M> {
    /// Scheduled node step. Wakes carry the epoch they were pushed
    /// under; a node can have a timer wake and a delivery wake in the
    /// heap at once, and the epoch marks all but the newest as stale.
    Wake {
        epoch: u64,
    },
    Deliver(Envelope<M>),
    /// The node-fault plan takes the node down (fail-stop, or the down
    /// phase of fail-recover).
    NodeDown {
        will_restart: bool,
    },
    /// The node-fault plan brings the node back up after a
    /// `CrashRestart` downtime.
    NodeUp {
        downtime_ns: u64,
    },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

// Order by (time, seq); BinaryHeap is a max-heap so invert.
impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// A wake event for the node is in the queue.
    Scheduled,
    /// Waiting for a message.
    Blocked,
    /// Waiting for a message or a timer deadline, whichever is first.
    Sleeping,
    /// Program complete.
    Done,
    /// Down under a node fault. Terminal unless a restart is scheduled;
    /// a permanently crashed node does not count as a deadlock by itself
    /// (the application layer decides whether its work was recovered).
    Crashed,
}

/// Result of running a simulation to completion.
#[derive(Debug)]
pub struct SimOutcome<N> {
    /// The node actors in their final state (carrying application
    /// results: routed wires, per-node counters, …).
    pub nodes: Vec<N>,
    /// Network and timing statistics.
    pub stats: NetStats,
    /// Total events processed.
    pub events_processed: u64,
    /// True if the run stopped at the event limit rather than finishing.
    pub event_limit_hit: bool,
}

/// The discrete-event simulator.
pub struct Kernel<N: Node> {
    config: MeshConfig,
    topo: Topology,
    nodes: Vec<N>,
    status: Vec<Status>,
    /// Earliest time each node may next be scheduled (it is busy before).
    free_at: Vec<SimTime>,
    inbox: Vec<Vec<Envelope<N::Msg>>>,
    channel_free: Vec<SimTime>,
    heap: BinaryHeap<Event<N::Msg>>,
    seq: u64,
    /// Current wake epoch per node; wakes pushed under older epochs are
    /// stale and ignored when popped.
    wake_epoch: Vec<u64>,
    /// Fault decision engine; `None` when the plan is idle, so
    /// fault-free runs take exactly the pre-fault-layer code path.
    injector: Option<FaultInjector>,
    /// Cached `config.faults.has_node_faults()`: the per-delivery down
    /// checks are skipped entirely when no node fault is scheduled.
    node_faults_on: bool,
    stats: NetStats,
    event_limit: u64,
    sink: Box<dyn Sink>,
    /// Cached `sink.enabled()`: instrumentation sites check this one
    /// branch and skip event construction entirely when recording is off.
    obs_on: bool,
}

impl<N: Node> Kernel<N> {
    /// Creates a kernel for `nodes` on the machine described by `config`.
    ///
    /// # Panics
    /// Panics unless `nodes.len() == config.n_nodes()`.
    pub fn new(config: MeshConfig, nodes: Vec<N>) -> Self {
        assert_eq!(nodes.len(), config.n_nodes(), "one actor per mesh node");
        if let Err(msg) = config.faults.validate() {
            panic!("invalid fault plan: {msg}");
        }
        let topo = Topology::new(config.rows, config.cols);
        let n = nodes.len();
        let injector = (!config.faults.is_idle()).then(|| FaultInjector::new(config.faults));
        let mut kernel = Kernel {
            config,
            topo,
            nodes,
            status: vec![Status::Scheduled; n],
            free_at: vec![SimTime::ZERO; n],
            inbox: (0..n).map(|_| Vec::new()).collect(),
            channel_free: vec![SimTime::ZERO; topo.n_channels()],
            heap: BinaryHeap::new(),
            seq: 0,
            wake_epoch: vec![0; n],
            injector,
            node_faults_on: config.faults.has_node_faults(),
            stats: NetStats::new(n),
            event_limit: 200_000_000,
            sink: Box::new(NullSink),
            obs_on: false,
        };
        // Node-fault events go in before the initial wakes so a crash
        // scheduled at a node's wake time wins the (time, seq) tie and
        // the node never steps while down.
        for (node, fault) in config.faults.node_faults() {
            let node = node as usize;
            assert!(node < n, "node fault targets nonexistent node {node}");
            match fault {
                crate::fault::NodeFault::Crash { at_ns } => {
                    kernel.push(
                        SimTime::from_ns(at_ns),
                        node,
                        EventKind::NodeDown { will_restart: false },
                    );
                }
                crate::fault::NodeFault::CrashRestart { at_ns, downtime_ns } => {
                    kernel.push(
                        SimTime::from_ns(at_ns),
                        node,
                        EventKind::NodeDown { will_restart: true },
                    );
                    kernel.push(
                        SimTime::from_ns(at_ns.saturating_add(downtime_ns)),
                        node,
                        EventKind::NodeUp { downtime_ns },
                    );
                }
                // Stalls are a pure time-window query in `on_wake`.
                crate::fault::NodeFault::Stall { .. } => {}
            }
        }
        for node in 0..n {
            kernel.push_wake(SimTime::ZERO, node);
        }
        kernel
    }

    /// Overrides the runaway-protection event limit.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Routes observability events (packet injections, deliveries,
    /// channel stalls) into `sink`. Pass a `SharedSink` clone to read
    /// the data back after the run.
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.obs_on = sink.enabled();
        self.sink = sink;
        self
    }

    #[inline]
    fn emit(&mut self, at: SimTime, node: NodeId, kind: ObsKind) {
        self.sink.record(ObsEvent { at_ns: at.as_ns(), node: node as u32, kind });
    }

    fn push(&mut self, at: SimTime, node: NodeId, kind: EventKind<N::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { at, seq, node, kind });
    }

    /// Pushes a wake for `node` under a fresh epoch, invalidating any
    /// wake already in the heap for it.
    fn push_wake(&mut self, at: SimTime, node: NodeId) {
        self.wake_epoch[node] += 1;
        let epoch = self.wake_epoch[node];
        self.push(at, node, EventKind::Wake { epoch });
    }

    /// Runs until every node is done, the event queue drains (deadlock),
    /// or the event limit is hit.
    pub fn run(mut self) -> SimOutcome<N> {
        let mut events_processed = 0u64;
        let mut event_limit_hit = false;

        while let Some(ev) = self.heap.pop() {
            events_processed += 1;
            if events_processed > self.event_limit {
                event_limit_hit = true;
                break;
            }
            match ev.kind {
                EventKind::Deliver(env) => self.on_deliver(ev.at, ev.node, env),
                EventKind::Wake { epoch } => {
                    if epoch == self.wake_epoch[ev.node] {
                        self.on_wake(ev.at, ev.node);
                    }
                    // Stale wakes (superseded by a delivery or a newer
                    // timer) are dropped.
                }
                EventKind::NodeDown { will_restart } => {
                    self.on_node_down(ev.at, ev.node, will_restart)
                }
                EventKind::NodeUp { downtime_ns } => self.on_node_up(ev.at, ev.node, downtime_ns),
            }
        }

        // A permanently crashed node is terminal, not deadlocked: the
        // application layer decides (via `crashed` and its own routed-wire
        // accounting) whether the run degraded.
        let deadlocked = event_limit_hit
            || self.status.iter().any(|&s| !matches!(s, Status::Done | Status::Crashed));
        self.stats.deadlocked = deadlocked;
        self.stats.event_limit_hit = event_limit_hit;
        self.stats.completion =
            self.stats.done_at.iter().copied().fold(SimTime::ZERO, SimTime::max);
        self.stats.debug_assert_consistent();
        SimOutcome { nodes: self.nodes, stats: self.stats, events_processed, event_limit_hit }
    }

    fn on_deliver(&mut self, at: SimTime, node: NodeId, env: Envelope<N::Msg>) {
        if self.node_faults_on {
            // Outbound suppression: the packet left a node that was
            // already down when the send was issued (a crash interrupts
            // a send burst mid-flight, and a down node emits nothing —
            // not even acks). Inbound: a down endpoint loses all
            // in-flight and arriving traffic.
            let out_suppressed =
                self.config.faults.node_down_at(env.from as u32, env.sent_at.as_ns());
            let in_down = self.config.faults.node_down_at(node as u32, at.as_ns());
            if out_suppressed || in_down {
                self.stats.packets_lost_to_crash =
                    self.stats.packets_lost_to_crash.saturating_add(1);
                return;
            }
        }
        if self.obs_on {
            let kind = ObsKind::PacketDelivered {
                src: env.from as u32,
                payload_bytes: env.bytes,
                latency_ns: (at - env.sent_at).as_ns(),
                queue_depth: self.inbox[node].len() as u32 + 1,
            };
            self.emit(at, node, kind);
        }
        self.inbox[node].push(env);
        if matches!(self.status[node], Status::Blocked | Status::Sleeping) {
            // The node may still be draining its last busy period.
            let wake_at = at.max(self.free_at[node]);
            self.status[node] = Status::Scheduled;
            self.push_wake(wake_at, node);
        }
    }

    fn on_wake(&mut self, now: SimTime, node: NodeId) {
        debug_assert!(
            matches!(self.status[node], Status::Scheduled | Status::Sleeping),
            "woke node {node} in state {:?}",
            self.status[node]
        );

        // Fail-slow: an active stall window multiplies every service
        // cost of the step (receive overhead, application work, and the
        // per-send processing below).
        let stall = if self.node_faults_on {
            self.config.faults.stall_factor_at(node as u32, now.as_ns())
        } else {
            1
        };
        let send_pt = self.config.process_time_ns.saturating_mul(stall);

        // Receive overhead: ProcessTime to copy each packet off the
        // network plus per-byte disassembly.
        let msgs = std::mem::take(&mut self.inbox[node]);
        let mut recv_ns = 0u64;
        for env in &msgs {
            let wire = env.bytes as u64 + self.config.header_bytes as u64;
            recv_ns += self.config.process_time_ns + self.config.recv_per_byte_ns * wire;
        }
        recv_ns = recv_ns.saturating_mul(stall);

        let mut outbox = Outbox::new();
        let step = self.nodes[node].step(now, msgs, &mut outbox);

        let busy_ns = match step {
            Step::Continue { busy_ns } => busy_ns.saturating_mul(stall),
            _ => 0,
        };

        // Application work happens after message processing; sends are
        // issued serially after the work, each costing ProcessTime at the
        // sender.
        let send_base = now + recv_ns + busy_ns;
        let n_sends = outbox.sends.len() as u64;
        for (i, (to, bytes, msg)) in outbox.sends.into_iter().enumerate() {
            assert_ne!(to, node, "node {node} attempted a self-send");
            assert!(to < self.topo.n_nodes(), "send to nonexistent node {to}");
            let start = send_base + (i as u64 + 1) * send_pt;
            let arrival = self.inject(node, to, bytes, start);
            let fault = match &mut self.injector {
                Some(inj) => inj.decide(node, to, bytes),
                None => None,
            };
            match fault {
                None => self.push(
                    arrival,
                    to,
                    EventKind::Deliver(Envelope { from: node, bytes, sent_at: start, msg }),
                ),
                Some(decided) => self.apply_fault(decided, node, to, bytes, start, arrival, msg),
            }
        }

        let total_busy = recv_ns + busy_ns + n_sends * send_pt;
        self.stats.busy_ns[node] += total_busy;
        let free = now + total_busy;
        self.free_at[node] = free;

        match step {
            Step::Continue { .. } => {
                self.status[node] = Status::Scheduled;
                self.push_wake(free, node);
            }
            Step::Block => {
                if self.inbox[node].is_empty() {
                    self.status[node] = Status::Blocked;
                } else {
                    // A message raced in while this step executed.
                    self.status[node] = Status::Scheduled;
                    self.push_wake(free, node);
                }
            }
            Step::Sleep { until } => {
                if self.inbox[node].is_empty() {
                    self.status[node] = Status::Sleeping;
                    self.push_wake(until.max(free), node);
                } else {
                    // A message raced in while this step executed.
                    self.status[node] = Status::Scheduled;
                    self.push_wake(free, node);
                }
            }
            Step::Done => {
                self.status[node] = Status::Done;
                self.stats.done_at[node] = free;
            }
        }
    }

    /// Takes `node` down under a node fault: its queued inbox is lost,
    /// pending wakes are invalidated, and (via the plan-based down check
    /// in [`Kernel::on_deliver`]) all in-flight and future traffic to or
    /// from it is discarded until a restart.
    fn on_node_down(&mut self, at: SimTime, node: NodeId, will_restart: bool) {
        if self.status[node] == Status::Done {
            // The program already finished; crashing a ghost is a no-op.
            return;
        }
        let lost = self.inbox[node].len() as u64;
        self.inbox[node].clear();
        self.stats.packets_lost_to_crash = self.stats.packets_lost_to_crash.saturating_add(lost);
        // Invalidate any queued wake so the node cannot step while down.
        self.wake_epoch[node] += 1;
        self.status[node] = Status::Crashed;
        self.stats.node_crashes += 1;
        self.stats.crashed[node] = true;
        if self.obs_on {
            self.emit(at, node, ObsKind::NodeCrashed { will_restart });
        }
    }

    /// Brings a crashed node back up: the actor's `on_restart` hook runs
    /// (rolling back to its checkpoint), then the node is rescheduled.
    fn on_node_up(&mut self, at: SimTime, node: NodeId, downtime_ns: u64) {
        if self.status[node] != Status::Crashed {
            // The crash was a no-op (the node had already finished).
            return;
        }
        self.nodes[node].on_restart(at);
        self.status[node] = Status::Scheduled;
        self.free_at[node] = at;
        self.stats.node_restarts += 1;
        self.stats.crashed[node] = false;
        if self.obs_on {
            self.emit(at, node, ObsKind::NodeRestarted { downtime_ns });
        }
        self.push_wake(at, node);
    }

    /// Applies one fault decision to an envelope whose injection (at
    /// `start`, arriving at `arrival`) has already been accounted.
    #[allow(clippy::too_many_arguments)]
    fn apply_fault(
        &mut self,
        fault: Fault,
        node: NodeId,
        to: NodeId,
        bytes: u32,
        start: SimTime,
        arrival: SimTime,
        msg: N::Msg,
    ) {
        let emit_fault = |k: &mut Self, kind: FaultKind, extra_ns: u64| {
            if k.obs_on {
                k.emit(
                    start,
                    node,
                    ObsKind::FaultInjected {
                        dst: to as u32,
                        payload_bytes: bytes,
                        fault: kind,
                        extra_ns,
                    },
                );
            }
        };
        match fault {
            Fault::Drop => {
                // The send consumed bandwidth; the delivery never happens.
                self.stats.packets_dropped = self.stats.packets_dropped.saturating_add(1);
                emit_fault(self, FaultKind::Drop, 0);
            }
            Fault::Duplicate { gap_ns } => {
                self.stats.packets_duplicated = self.stats.packets_duplicated.saturating_add(1);
                emit_fault(self, FaultKind::Duplicate, 0);
                self.push(
                    arrival,
                    to,
                    EventKind::Deliver(Envelope {
                        from: node,
                        bytes,
                        sent_at: start,
                        msg: msg.clone(),
                    }),
                );
                // The copy is real traffic: it re-enters the network
                // behind the original and is accounted like any send.
                let start2 = start + gap_ns;
                let arrival2 = self.inject(node, to, bytes, start2);
                self.push(
                    arrival2,
                    to,
                    EventKind::Deliver(Envelope { from: node, bytes, sent_at: start2, msg }),
                );
            }
            Fault::Delay { extra_ns } => {
                self.stats.packets_delayed = self.stats.packets_delayed.saturating_add(1);
                emit_fault(self, FaultKind::Delay, extra_ns);
                self.push(
                    arrival + extra_ns,
                    to,
                    EventKind::Deliver(Envelope { from: node, bytes, sent_at: start, msg }),
                );
            }
            Fault::Reorder { hold_ns } => {
                self.stats.packets_reordered = self.stats.packets_reordered.saturating_add(1);
                emit_fault(self, FaultKind::Reorder, hold_ns);
                self.push(
                    arrival + hold_ns,
                    to,
                    EventKind::Deliver(Envelope { from: node, bytes, sent_at: start, msg }),
                );
            }
        }
    }

    /// Injects a packet into the network at `start` (the moment the
    /// sender's `ProcessTime` copy completes begins; the copy itself is
    /// part of the latency law's first `ProcessTime`). Returns arrival
    /// time at the destination node and updates channel reservations and
    /// traffic statistics.
    fn inject(&mut self, src: NodeId, dst: NodeId, payload: u32, start: SimTime) -> SimTime {
        let wire = payload as u64 + self.config.header_bytes as u64;
        let hops = self.topo.hops(src, dst) as u64;
        self.stats.record_packet(src, payload as u64, wire, hops);
        if self.obs_on {
            let kind = ObsKind::PacketSent {
                dst: dst as u32,
                payload_bytes: payload,
                wire_bytes: wire as u32,
                hops: hops as u16,
            };
            self.emit(start, src, kind);
        }

        if !self.config.contention {
            return start
                + 2 * self.config.process_time_ns
                + self.config.hop_time_ns * (hops + wire);
        }

        let h = self.config.hop_time_ns;
        // Head leaves the source after the sender-side ProcessTime copy.
        let mut t = start + self.config.process_time_ns;
        let path = self.topo.route(src, dst);
        for ch in path {
            let free = self.channel_free[ch];
            if free > t {
                let stall_ns = (free - t).as_ns();
                self.stats.add_contention(stall_ns);
                if self.obs_on {
                    let kind = ObsKind::ChannelContended { channel: ch as u32, stall_ns };
                    self.emit(t, src, kind);
                }
                t = free;
            }
            t += h; // head advances one hop
                    // The channel stays busy until the tail flit passes.
            self.channel_free[ch] = t + h * wire;
        }
        // Tail drains into the destination, then the receiver-side copy.
        t + h * wire + self.config.process_time_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends one `bytes`-sized packet to `to` at its first step, then
    /// completes; the receiver completes after receiving `expect` packets.
    struct OneShot {
        to: Option<(NodeId, u32)>,
        expect: usize,
        received_at: Vec<SimTime>,
        sent: bool,
    }

    impl OneShot {
        fn sender(to: NodeId, bytes: u32) -> Self {
            OneShot { to: Some((to, bytes)), expect: 0, received_at: Vec::new(), sent: false }
        }
        fn receiver(expect: usize) -> Self {
            OneShot { to: None, expect, received_at: Vec::new(), sent: false }
        }
    }

    impl Node for OneShot {
        type Msg = ();

        fn step(
            &mut self,
            now: SimTime,
            inbox: Vec<Envelope<()>>,
            outbox: &mut Outbox<()>,
        ) -> Step {
            for env in inbox {
                let _ = env;
                self.received_at.push(now);
            }
            if let Some((to, bytes)) = self.to.take() {
                outbox.send(to, bytes, ());
                self.sent = true;
                return Step::Continue { busy_ns: 0 };
            }
            if self.received_at.len() >= self.expect {
                Step::Done
            } else {
                Step::Block
            }
        }
    }

    fn two_node_config() -> MeshConfig {
        MeshConfig { rows: 1, cols: 2, ..MeshConfig::ametek(1, 2) }
    }

    #[test]
    fn latency_law_without_contention() {
        let cfg = two_node_config().without_contention();
        let nodes = vec![OneShot::sender(1, 12), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).run();
        assert!(!out.stats.deadlocked);
        // Send starts after one ProcessTime of sender occupancy.
        let start = cfg.process_time_ns;
        let expected = start + cfg.uncontended_latency_ns(1, 12);
        // The receiver's wake happens exactly at arrival.
        assert_eq!(out.nodes[1].received_at, vec![SimTime::from_ns(expected)]);
    }

    #[test]
    fn contended_latency_matches_law_when_alone() {
        // With contention on but only one packet, the wormhole model must
        // reduce to the same law.
        let cfg = two_node_config();
        let nodes = vec![OneShot::sender(1, 12), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).run();
        let start = cfg.process_time_ns;
        let expected = start + cfg.uncontended_latency_ns(1, 12);
        assert_eq!(out.nodes[1].received_at, vec![SimTime::from_ns(expected)]);
        assert_eq!(out.stats.contention_ns, 0);
    }

    /// Two senders, one destination, shared final channel: the second
    /// packet must stall.
    #[test]
    fn contention_serializes_shared_channel() {
        // 1x3 mesh: nodes 0,1,2. Node 0 and node 1 both send to node 2;
        // both packets use channel 1->2.
        let cfg = MeshConfig { rows: 1, cols: 3, ..MeshConfig::ametek(1, 3) };
        let nodes = vec![OneShot::sender(2, 100), OneShot::sender(2, 100), OneShot::receiver(2)];
        let out = Kernel::new(cfg, nodes).run();
        assert!(!out.stats.deadlocked);
        assert!(
            out.stats.contention_ns > 0,
            "expected contention on the shared channel into node 2"
        );
        assert_eq!(out.nodes[2].received_at.len(), 2);
    }

    #[test]
    fn traffic_statistics_accumulate() {
        let cfg = two_node_config();
        let nodes = vec![OneShot::sender(1, 42), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).run();
        assert_eq!(out.stats.packets, 1);
        assert_eq!(out.stats.payload_bytes, 42);
        assert_eq!(out.stats.wire_bytes, 42 + cfg.header_bytes as u64);
        assert_eq!(out.stats.byte_hops, (42 + cfg.header_bytes as u64) * 1);
    }

    #[test]
    fn deadlock_detected_when_blocked_forever() {
        let cfg = two_node_config();
        // Both nodes wait for a message that never comes.
        let nodes = vec![OneShot::receiver(1), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).run();
        assert!(out.stats.deadlocked);
    }

    #[test]
    fn receiver_busy_time_includes_disassembly() {
        let cfg = two_node_config().without_contention();
        let nodes = vec![OneShot::sender(1, 50), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).run();
        let wire = 50 + cfg.header_bytes as u64;
        let expected_recv = cfg.process_time_ns + cfg.recv_per_byte_ns * wire;
        // Receiver busy = reception overhead only (no app work, no sends).
        assert_eq!(out.stats.busy_ns[1], expected_recv);
        // Sender busy = one ProcessTime for its single send.
        assert_eq!(out.stats.busy_ns[0], cfg.process_time_ns);
    }

    #[test]
    fn completion_is_latest_done() {
        let cfg = two_node_config().without_contention();
        let nodes = vec![OneShot::sender(1, 12), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).run();
        assert_eq!(out.stats.completion, *out.stats.done_at.iter().max().unwrap());
        assert!(out.stats.completion > SimTime::ZERO);
    }

    #[test]
    fn event_limit_stops_runaway() {
        /// A node that spins forever.
        struct Spinner;
        impl Node for Spinner {
            type Msg = ();
            fn step(&mut self, _: SimTime, _: Vec<Envelope<()>>, _: &mut Outbox<()>) -> Step {
                Step::Continue { busy_ns: 1 }
            }
        }
        let cfg = two_node_config();
        let out = Kernel::new(cfg, vec![Spinner, Spinner]).with_event_limit(1000).run();
        assert!(out.event_limit_hit);
        assert!(out.stats.deadlocked);
    }

    #[test]
    fn determinism_across_runs() {
        let cfg = MeshConfig { rows: 1, cols: 3, ..MeshConfig::ametek(1, 3) };
        let mk = || vec![OneShot::sender(2, 100), OneShot::sender(2, 64), OneShot::receiver(2)];
        let a = Kernel::new(cfg, mk()).run();
        let b = Kernel::new(cfg, mk()).run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.nodes[2].received_at, b.nodes[2].received_at);
    }

    #[test]
    fn sink_observes_sends_deliveries_and_contention() {
        use locus_obs::{names, SharedSink};
        let cfg = MeshConfig { rows: 1, cols: 3, ..MeshConfig::ametek(1, 3) };
        let sink = SharedSink::new();
        let nodes = vec![OneShot::sender(2, 100), OneShot::sender(2, 64), OneShot::receiver(2)];
        let out = Kernel::new(cfg, nodes).with_sink(Box::new(sink.clone())).run();
        let m = sink.metrics_snapshot();
        assert_eq!(m.counter(names::PACKETS_SENT), out.stats.packets);
        assert_eq!(m.counter(names::BYTES_SENT), out.stats.payload_bytes);
        assert_eq!(m.counter(names::WIRE_BYTES_SENT), out.stats.wire_bytes);
        assert_eq!(m.counter(names::PACKETS_DELIVERED), out.stats.packets);
        assert_eq!(m.counter(names::CONTENTION_NS), out.stats.contention_ns);
        assert!(m.counter(names::CONTENTION_NS) > 0, "shared channel must stall");
    }

    #[test]
    fn dropped_packet_never_arrives_but_is_counted() {
        use crate::fault::FaultPlan;
        // 100% drop: the receiver never hears anything and deadlocks.
        let cfg = two_node_config().with_faults(FaultPlan::uniform_loss(1, 10_000));
        let nodes = vec![OneShot::sender(1, 42), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).run();
        assert!(out.stats.deadlocked);
        assert!(!out.stats.event_limit_hit, "a drained queue is not an event-limit stop");
        assert_eq!(out.stats.packets, 1, "the injection itself still happened");
        assert_eq!(out.stats.packets_dropped, 1);
        assert!(out.nodes[1].received_at.is_empty());
    }

    #[test]
    fn duplicated_packet_arrives_twice_and_counts_twice() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::none().with_duplicates(10_000, 5_000).with_seed(3);
        let cfg = two_node_config().with_faults(plan);
        let nodes = vec![OneShot::sender(1, 42), OneShot::receiver(2)];
        let out = Kernel::new(cfg, nodes).run();
        assert!(!out.stats.deadlocked);
        assert_eq!(out.stats.packets_duplicated, 1);
        assert_eq!(out.stats.packets, 2, "the copy consumed real bandwidth");
        assert_eq!(out.nodes[1].received_at.len(), 2);
    }

    #[test]
    fn delayed_packet_arrives_late() {
        use crate::fault::FaultPlan;
        let delayed_plan = FaultPlan::none().with_delays(10_000, 40_000).with_seed(9);
        let mk = || vec![OneShot::sender(1, 12), OneShot::receiver(1)];
        let base = Kernel::new(two_node_config().without_contention(), mk()).run();
        let cfg = two_node_config().without_contention().with_faults(delayed_plan);
        let out = Kernel::new(cfg, mk()).run();
        assert_eq!(out.stats.packets_delayed, 1);
        assert!(
            out.nodes[1].received_at[0] > base.nodes[1].received_at[0],
            "delay fault must push the arrival back"
        );
    }

    #[test]
    fn idle_plan_is_byte_identical_to_no_plan() {
        use crate::fault::FaultPlan;
        let cfg = MeshConfig { rows: 1, cols: 3, ..MeshConfig::ametek(1, 3) };
        let mk = || vec![OneShot::sender(2, 100), OneShot::sender(2, 64), OneShot::receiver(2)];
        let plain = Kernel::new(cfg, mk()).run();
        // Zero rates AND an empty node-fault list: inert by construction.
        let plan = FaultPlan::uniform_loss(99, 0);
        assert!(plan.node_faults.iter().all(Option::is_none));
        assert!(plan.is_idle());
        let planned = Kernel::new(cfg.with_faults(plan), mk()).run();
        assert_eq!(plain.stats, planned.stats);
        assert_eq!(plain.events_processed, planned.events_processed);
        assert_eq!(plain.nodes[2].received_at, planned.nodes[2].received_at);
    }

    #[test]
    fn crashed_receiver_loses_inbound_and_is_terminal_not_deadlocked() {
        use crate::fault::{FaultPlan, NodeFault};
        let plan = FaultPlan::none().with_node_fault(1, NodeFault::Crash { at_ns: 1 });
        let cfg = two_node_config().with_faults(plan);
        let nodes = vec![OneShot::sender(1, 42), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).run();
        assert_eq!(out.stats.node_crashes, 1);
        assert_eq!(out.stats.node_restarts, 0);
        assert_eq!(out.stats.crashed, vec![false, true]);
        assert_eq!(out.stats.packets_lost_to_crash, 1, "the delivery hit a down endpoint");
        assert!(out.nodes[1].received_at.is_empty());
        assert!(
            !out.stats.deadlocked,
            "sender finished and the crash is terminal — not a deadlock"
        );
    }

    #[test]
    fn crash_restart_invokes_the_restart_hook_at_the_deadline() {
        use crate::fault::{FaultPlan, NodeFault};
        /// Sleeps until restarted, then completes (`wait: false`
        /// completes on its first step).
        struct RestartProbe {
            wait: bool,
            restarted_at: Option<SimTime>,
            done_at: Option<SimTime>,
        }
        impl Node for RestartProbe {
            type Msg = ();
            fn step(&mut self, now: SimTime, _: Vec<Envelope<()>>, _: &mut Outbox<()>) -> Step {
                if !self.wait || self.restarted_at.is_some() {
                    self.done_at = Some(now);
                    return Step::Done;
                }
                Step::Sleep { until: now + 1_000_000_000 }
            }
            fn on_restart(&mut self, now: SimTime) {
                self.restarted_at = Some(now);
            }
        }
        let plan = FaultPlan::none()
            .with_node_fault(0, NodeFault::CrashRestart { at_ns: 10_000, downtime_ns: 5_000 });
        let cfg = two_node_config().with_faults(plan);
        let probe = |wait| RestartProbe { wait, restarted_at: None, done_at: None };
        let out = Kernel::new(cfg, vec![probe(true), probe(false)]).run();
        assert_eq!(out.stats.node_crashes, 1);
        assert_eq!(out.stats.node_restarts, 1);
        assert_eq!(out.stats.crashed, vec![false, false]);
        assert_eq!(out.nodes[0].restarted_at, Some(SimTime::from_ns(15_000)));
        assert_eq!(out.nodes[0].done_at, Some(SimTime::from_ns(15_000)));
        assert!(out.nodes[1].restarted_at.is_none(), "only the faulted node restarts");
    }

    #[test]
    fn stall_multiplies_service_costs() {
        use crate::fault::{FaultPlan, NodeFault};
        let mk = || vec![OneShot::sender(1, 12), OneShot::receiver(1)];
        let clean = Kernel::new(two_node_config().without_contention(), mk()).run();
        let plan = FaultPlan::none().with_node_fault(
            0,
            NodeFault::Stall { at_ns: 0, factor: 10, duration_ns: 1_000_000_000 },
        );
        let cfg = two_node_config().without_contention().with_faults(plan);
        let stalled = Kernel::new(cfg, mk()).run();
        // The sender's single send costs 10x ProcessTime, pushing the
        // arrival back by 9x ProcessTime.
        assert_eq!(stalled.stats.busy_ns[0], 10 * cfg.process_time_ns);
        assert_eq!(
            stalled.nodes[1].received_at[0] - clean.nodes[1].received_at[0],
            SimTime::from_ns(9 * cfg.process_time_ns)
        );
        assert!(!stalled.stats.deadlocked);
    }

    /// Regression test for outbound suppression (`FaultScope` satellite):
    /// a node that crashes mid-burst must not get its still-unsent
    /// packets onto the wire — a down node emits nothing, not even acks.
    #[test]
    fn crash_suppresses_outbound_packets_issued_while_down() {
        use crate::fault::{FaultPlan, NodeFault};
        /// Sends 5 packets in one step (when active), then completes.
        struct Burst {
            active: bool,
        }
        impl Node for Burst {
            type Msg = ();
            fn step(&mut self, _: SimTime, _: Vec<Envelope<()>>, o: &mut Outbox<()>) -> Step {
                if self.active {
                    for _ in 0..5 {
                        o.send(1, 8, ());
                    }
                }
                Step::Done
            }
        }
        let cfg_plain = two_node_config().without_contention();
        // Sends are issued at (i+1) * ProcessTime; crash between the 2nd
        // and 3rd so exactly 3 are suppressed.
        let crash_at = 2 * cfg_plain.process_time_ns + cfg_plain.process_time_ns / 2;
        let plan = FaultPlan::none().with_node_fault(0, NodeFault::Crash { at_ns: crash_at });
        let cfg = cfg_plain.with_faults(plan);
        let out = Kernel::new(cfg, vec![Burst { active: true }, Burst { active: false }]).run();
        assert_eq!(out.stats.packets, 5, "all five injections consumed bandwidth");
        assert_eq!(out.stats.packets_lost_to_crash, 3, "sends issued while down are suppressed");
        assert_eq!(
            out.stats.packets - out.stats.packets_lost_to_crash,
            2,
            "only pre-crash sends arrive"
        );
    }

    #[test]
    fn node_faulted_runs_are_deterministic_and_observable() {
        use crate::fault::{FaultPlan, NodeFault};
        use locus_obs::{names, SharedSink};
        // Crash the receiver while it is still waiting (the senders
        // finish within ~2 µs; crashing a finished node is a no-op).
        let plan = FaultPlan::uniform_loss(11, 1_000)
            .with_node_fault(2, NodeFault::CrashRestart { at_ns: 4_000, downtime_ns: 2_000 })
            .with_node_fault(0, NodeFault::Stall { at_ns: 0, factor: 2, duration_ns: 8_000 });
        let cfg = MeshConfig { rows: 1, cols: 3, ..MeshConfig::ametek(1, 3) }.with_faults(plan);
        let mk = || vec![OneShot::sender(2, 100), OneShot::sender(2, 64), OneShot::receiver(1)];
        let sink = SharedSink::new();
        let a = Kernel::new(cfg, mk()).with_sink(Box::new(sink.clone())).run();
        let b = Kernel::new(cfg, mk()).run();
        assert_eq!(a.stats, b.stats);
        let m = sink.metrics_snapshot();
        assert_eq!(m.counter(names::NODE_CRASHES), a.stats.node_crashes);
        assert_eq!(m.counter(names::NODE_RESTARTS), a.stats.node_restarts);
        assert_eq!(a.stats.node_crashes, 1);
        assert_eq!(a.stats.node_restarts, 1);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::uniform_loss(11, 3_000).with_duplicates(3_000, 8_000);
        let cfg = MeshConfig { rows: 1, cols: 3, ..MeshConfig::ametek(1, 3) }.with_faults(plan);
        let mk = || vec![OneShot::sender(2, 100), OneShot::sender(2, 64), OneShot::receiver(1)];
        let a = Kernel::new(cfg, mk()).run();
        let b = Kernel::new(cfg, mk()).run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.nodes[2].received_at, b.nodes[2].received_at);
    }

    #[test]
    fn fault_events_reach_the_sink() {
        use crate::fault::FaultPlan;
        use locus_obs::{names, SharedSink};
        let cfg = two_node_config().with_faults(FaultPlan::uniform_loss(1, 10_000));
        let sink = SharedSink::new();
        let nodes = vec![OneShot::sender(1, 42), OneShot::receiver(1)];
        let out = Kernel::new(cfg, nodes).with_sink(Box::new(sink.clone())).run();
        let m = sink.metrics_snapshot();
        assert_eq!(m.counter(names::PACKETS_DROPPED), out.stats.packets_dropped);
        assert_eq!(m.counter(names::FAULTS_INJECTED), out.stats.faults_injected());
        assert_eq!(
            m.counter(names::PACKETS_DELIVERED),
            out.stats.packets - out.stats.packets_dropped
        );
    }

    #[test]
    fn sleep_wakes_at_deadline() {
        /// Sleeps 10 µs on its first step, then completes.
        struct Napper {
            woke_at: Option<SimTime>,
            slept: bool,
        }
        impl Node for Napper {
            type Msg = ();
            fn step(&mut self, now: SimTime, _: Vec<Envelope<()>>, _: &mut Outbox<()>) -> Step {
                if !self.slept {
                    self.slept = true;
                    return Step::Sleep { until: now + 10_000 };
                }
                self.woke_at = Some(now);
                Step::Done
            }
        }
        let cfg = two_node_config();
        let nodes =
            vec![Napper { woke_at: None, slept: false }, Napper { woke_at: None, slept: false }];
        let out = Kernel::new(cfg, nodes).run();
        assert!(!out.stats.deadlocked);
        assert_eq!(out.nodes[0].woke_at, Some(SimTime::from_ns(10_000)));
    }

    /// Sends once if configured, otherwise sleeps ~forever until a
    /// message arrives, then completes.
    struct SleepOrSend {
        send: Option<(NodeId, u32)>,
        woke_at: Option<SimTime>,
    }
    impl Node for SleepOrSend {
        type Msg = ();
        fn step(&mut self, now: SimTime, inbox: Vec<Envelope<()>>, o: &mut Outbox<()>) -> Step {
            if let Some((to, bytes)) = self.send.take() {
                o.send(to, bytes, ());
                return Step::Done;
            }
            if !inbox.is_empty() {
                self.woke_at = Some(now);
            }
            match self.woke_at {
                Some(_) => Step::Done,
                None => Step::Sleep { until: now + 1_000_000_000 },
            }
        }
    }

    #[test]
    fn delivery_wakes_a_sleeping_node_early() {
        let cfg = two_node_config().without_contention();
        let out = Kernel::new(
            cfg,
            vec![
                SleepOrSend { send: Some((1, 12)), woke_at: None },
                SleepOrSend { send: None, woke_at: None },
            ],
        )
        .run();
        assert!(!out.stats.deadlocked);
        let woke = out.nodes[1].woke_at.expect("sleeper must be woken by the delivery");
        assert!(
            woke < SimTime::from_ns(1_000_000_000),
            "delivery must cut the sleep short, woke at {woke:?}"
        );
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_panics() {
        let cfg = two_node_config();
        let nodes = vec![OneShot::sender(0, 1), OneShot::receiver(0)];
        let _ = Kernel::new(cfg, nodes).run();
    }

    #[test]
    #[should_panic(expected = "one actor per mesh node")]
    fn node_count_must_match_mesh() {
        let cfg = two_node_config();
        let _ = Kernel::new(cfg, vec![OneShot::receiver(0)]);
    }
}
