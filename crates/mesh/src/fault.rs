//! Deterministic fault injection for the mesh.
//!
//! A [`FaultPlan`] attached to [`crate::MeshConfig`] tells the kernel to
//! **drop**, **duplicate**, **delay**, or **reorder** envelopes as they
//! are injected. The plan is fully deterministic: rates are expressed in
//! basis points (1/10 000, keeping `MeshConfig: Copy + Eq` without any
//! floating point), and every random decision comes from a seeded
//! [`rand::rngs::StdRng`] stream — the same seed always yields the same
//! fault sequence, so faulted runs are exactly reproducible.
//!
//! Faults act on *deliveries*, after the send already consumed network
//! bandwidth: a dropped envelope was injected (and is counted in
//! `NetStats::packets`) but never arrives; a duplicated envelope is
//! injected a second time behind the first, consuming real bandwidth for
//! the copy. At most one fault applies per envelope, decided in the
//! fixed precedence order drop → duplicate → delay → reorder so the
//! random stream is stable when individual rates are toggled.
//!
//! A [`FaultScope`] narrows the blast radius to a single source node,
//! destination node, or payload-size band (the message-passing layer's
//! packet kinds map onto distinct payload sizes, so a size band acts as
//! a per-packet-kind filter without the mesh knowing about packets).

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

use crate::topology::NodeId;

/// Rates are per-ten-thousand; this is the 100% value.
pub const BP_SCALE: u32 = 10_000;

/// Maximum node-scoped faults one plan can carry (a fixed-size array
/// keeps [`FaultPlan`] `Copy + Eq`).
pub const MAX_NODE_FAULTS: usize = 4;

/// A scheduled node-level failure: fail-stop, fail-recover, or
/// fail-slow. Unlike the link faults, node faults fire at fixed
/// simulated times taken straight from the plan — they consume no
/// randomness, so they compose with the seeded link-fault stream
/// without perturbing it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeFault {
    /// Fail-stop: the node goes down at `at_ns` and never comes back.
    /// All in-flight and future packets to or from it are lost.
    Crash {
        /// Crash time (ns).
        at_ns: u64,
    },
    /// Fail-recover: down at `at_ns`, back up `downtime_ns` later with
    /// its local state intact (the kernel calls
    /// [`crate::Node::on_restart`] so the actor can roll back to a
    /// checkpoint).
    CrashRestart {
        /// Crash time (ns).
        at_ns: u64,
        /// How long the node stays down.
        downtime_ns: u64,
    },
    /// Fail-slow: from `at_ns` for `duration_ns`, every step's service
    /// cost (receive overhead, application work, per-send processing) is
    /// multiplied by `factor`.
    Stall {
        /// Stall onset (ns).
        at_ns: u64,
        /// Service-cost multiplier (≥ 1; 1 is a no-op).
        factor: u32,
        /// How long the stall lasts.
        duration_ns: u64,
    },
}

impl NodeFault {
    /// Whether the afflicted node is down (crashed, not yet restarted)
    /// at time `t_ns`.
    pub fn down_at(&self, t_ns: u64) -> bool {
        match *self {
            NodeFault::Crash { at_ns } => t_ns >= at_ns,
            NodeFault::CrashRestart { at_ns, downtime_ns } => {
                t_ns >= at_ns && t_ns < at_ns.saturating_add(downtime_ns)
            }
            NodeFault::Stall { .. } => false,
        }
    }

    /// The service-cost multiplier this fault imposes at time `t_ns`
    /// (1 when inactive).
    pub fn stall_factor_at(&self, t_ns: u64) -> u64 {
        match *self {
            NodeFault::Stall { at_ns, factor, duration_ns }
                if t_ns >= at_ns && t_ns < at_ns.saturating_add(duration_ns) =>
            {
                factor.max(1) as u64
            }
            _ => 1,
        }
    }
}

/// Which envelopes a [`FaultPlan`] applies to. `None`/full-range fields
/// match everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultScope {
    /// Only envelopes sent by this node, if set.
    pub src: Option<u32>,
    /// Only envelopes addressed to this node, if set.
    pub dst: Option<u32>,
    /// Only envelopes with at least this many payload bytes.
    pub min_payload_bytes: u32,
    /// Only envelopes with at most this many payload bytes.
    pub max_payload_bytes: u32,
}

impl FaultScope {
    /// Matches every envelope.
    pub const fn all() -> Self {
        FaultScope { src: None, dst: None, min_payload_bytes: 0, max_payload_bytes: u32::MAX }
    }

    /// Whether an envelope from `src` to `dst` with `payload_bytes` of
    /// payload is covered by this scope.
    pub fn covers(&self, src: NodeId, dst: NodeId, payload_bytes: u32) -> bool {
        self.src.is_none_or(|s| s as usize == src)
            && self.dst.is_none_or(|d| d as usize == dst)
            && payload_bytes >= self.min_payload_bytes
            && payload_bytes <= self.max_payload_bytes
    }
}

impl Default for FaultScope {
    fn default() -> Self {
        FaultScope::all()
    }
}

/// A deterministic, seeded fault schedule for one kernel run.
///
/// All rates are basis points (per 10 000 injected envelopes inside the
/// scope). The zero plan — [`FaultPlan::none`] — is the default and is
/// completely invisible: the kernel does not even construct an injector
/// for it, so fault-free runs are byte-identical to runs that predate
/// the fault layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Probability of silently discarding a delivery (basis points).
    pub drop_bp: u32,
    /// Probability of injecting a second copy (basis points).
    pub duplicate_bp: u32,
    /// Upper bound on the injection gap between original and duplicate
    /// (ns); the gap is drawn uniformly from `1..=duplicate_gap_ns`.
    pub duplicate_gap_ns: u64,
    /// Probability of adding extra delivery latency (basis points).
    pub delay_bp: u32,
    /// Upper bound of the extra latency (ns), drawn uniformly from
    /// `1..=delay_ns_max`.
    pub delay_ns_max: u64,
    /// Probability of holding an envelope past later traffic (basis
    /// points).
    pub reorder_bp: u32,
    /// How long a reordered envelope is held (ns); long enough for
    /// several subsequent envelopes to overtake it.
    pub reorder_hold_ns: u64,
    /// Which envelopes the plan applies to.
    pub scope: FaultScope,
    /// Scheduled node-level failures: `(node, fault)` pairs, at most
    /// [`MAX_NODE_FAULTS`] of them. `None` slots are inert.
    pub node_faults: [Option<(u32, NodeFault)>; MAX_NODE_FAULTS],
}

impl FaultPlan {
    /// The inert plan: no faults, no injector, no RNG stream.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_bp: 0,
            duplicate_bp: 0,
            duplicate_gap_ns: 50_000,
            delay_bp: 0,
            delay_ns_max: 100_000,
            reorder_bp: 0,
            reorder_hold_ns: 200_000,
            scope: FaultScope::all(),
            node_faults: [None; MAX_NODE_FAULTS],
        }
    }

    /// Uniform packet loss at `drop_bp` basis points (e.g. 1000 = 10%).
    pub fn uniform_loss(seed: u64, drop_bp: u32) -> Self {
        FaultPlan { seed, drop_bp, ..FaultPlan::none() }
    }

    /// Returns `self` with duplication at `bp` basis points and the
    /// given maximum injection gap.
    pub fn with_duplicates(mut self, bp: u32, max_gap_ns: u64) -> Self {
        self.duplicate_bp = bp;
        self.duplicate_gap_ns = max_gap_ns;
        self
    }

    /// Returns `self` with extra-latency faults at `bp` basis points up
    /// to `max_ns` of added latency.
    pub fn with_delays(mut self, bp: u32, max_ns: u64) -> Self {
        self.delay_bp = bp;
        self.delay_ns_max = max_ns;
        self
    }

    /// Returns `self` with reordering holds at `bp` basis points of
    /// `hold_ns` each.
    pub fn with_reorders(mut self, bp: u32, hold_ns: u64) -> Self {
        self.reorder_bp = bp;
        self.reorder_hold_ns = hold_ns;
        self
    }

    /// Returns `self` restricted to `scope`.
    pub fn with_scope(mut self, scope: FaultScope) -> Self {
        self.scope = scope;
        self
    }

    /// Returns `self` with a different decision-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with `fault` scheduled on `node` in the first free
    /// slot.
    ///
    /// # Panics
    /// Panics when all [`MAX_NODE_FAULTS`] slots are taken.
    pub fn with_node_fault(mut self, node: u32, fault: NodeFault) -> Self {
        let slot = self
            .node_faults
            .iter_mut()
            .find(|s| s.is_none())
            .unwrap_or_else(|| panic!("FaultPlan holds at most {MAX_NODE_FAULTS} node faults"));
        *slot = Some((node, fault));
        self
    }

    /// Whether the plan can never fire (no link-fault rates and no node
    /// faults). Idle plans are skipped entirely by the kernel.
    pub fn is_idle(&self) -> bool {
        self.drop_bp == 0
            && self.duplicate_bp == 0
            && self.delay_bp == 0
            && self.reorder_bp == 0
            && self.node_faults.iter().all(Option::is_none)
    }

    /// Whether any node fault is scheduled.
    pub fn has_node_faults(&self) -> bool {
        self.node_faults.iter().any(Option::is_some)
    }

    /// The scheduled node faults, in slot order.
    pub fn node_faults(&self) -> impl Iterator<Item = (u32, NodeFault)> + '_ {
        self.node_faults.iter().filter_map(|s| *s)
    }

    /// Whether `node` is down (crashed and not yet restarted) at `t_ns`
    /// under this plan. A pure function of the plan, so both the kernel
    /// and post-run analysis agree on down intervals.
    pub fn node_down_at(&self, node: u32, t_ns: u64) -> bool {
        self.node_faults().any(|(n, f)| n == node && f.down_at(t_ns))
    }

    /// The combined service-cost multiplier on `node` at `t_ns` (1 when
    /// no stall is active).
    pub fn stall_factor_at(&self, node: u32, t_ns: u64) -> u64 {
        self.node_faults()
            .filter(|&(n, _)| n == node)
            .map(|(_, f)| f.stall_factor_at(t_ns))
            .max()
            .unwrap_or(1)
    }

    /// Checks that every rate is a valid probability (≤ 10 000 bp) and
    /// every node fault is well-formed.
    pub fn validate(&self) -> Result<(), String> {
        for (name, bp) in [
            ("drop_bp", self.drop_bp),
            ("duplicate_bp", self.duplicate_bp),
            ("delay_bp", self.delay_bp),
            ("reorder_bp", self.reorder_bp),
        ] {
            if bp > BP_SCALE {
                return Err(format!("FaultPlan::{name} = {bp} exceeds {BP_SCALE} basis points"));
            }
        }
        for (node, fault) in self.node_faults() {
            match fault {
                NodeFault::CrashRestart { downtime_ns: 0, .. } => {
                    return Err(format!("node {node}: CrashRestart downtime must be nonzero"));
                }
                NodeFault::Stall { factor: 0, .. } => {
                    return Err(format!("node {node}: Stall factor must be ≥ 1"));
                }
                NodeFault::Stall { duration_ns: 0, .. } => {
                    return Err(format!("node {node}: Stall duration must be nonzero"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// One concrete fault decision for one envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Discard the delivery (the injection already happened).
    Drop,
    /// Inject a second copy `gap_ns` after the original.
    Duplicate {
        /// Injection gap between the original and the copy.
        gap_ns: u64,
    },
    /// Push the arrival back by `extra_ns`.
    Delay {
        /// Added latency.
        extra_ns: u64,
    },
    /// Hold the arrival for `hold_ns` so later traffic overtakes it.
    Reorder {
        /// Hold duration.
        hold_ns: u64,
    },
}

/// The kernel-side decision engine: a plan plus its seeded RNG stream.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultInjector {
    /// Builds the injector for `plan` (callers skip idle plans).
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, rng: StdRng::seed_from_u64(plan.seed) }
    }

    /// One uniform draw in `[0, BP_SCALE)`.
    fn draw_bp(&mut self) -> u32 {
        (self.rng.next_u64() % BP_SCALE as u64) as u32
    }

    /// Decides the fate of one envelope. Out-of-scope envelopes consume
    /// no randomness; in-scope envelopes draw once per enabled category
    /// in precedence order, so disabling a category never perturbs the
    /// draws of the ones before it.
    pub fn decide(&mut self, src: NodeId, dst: NodeId, payload_bytes: u32) -> Option<Fault> {
        if !self.plan.scope.covers(src, dst, payload_bytes) {
            return None;
        }
        if self.plan.drop_bp > 0 && self.draw_bp() < self.plan.drop_bp {
            return Some(Fault::Drop);
        }
        if self.plan.duplicate_bp > 0 && self.draw_bp() < self.plan.duplicate_bp {
            let gap_ns = self.rng.random_range(1..=self.plan.duplicate_gap_ns.max(1));
            return Some(Fault::Duplicate { gap_ns });
        }
        if self.plan.delay_bp > 0 && self.draw_bp() < self.plan.delay_bp {
            let extra_ns = self.rng.random_range(1..=self.plan.delay_ns_max.max(1));
            return Some(Fault::Delay { extra_ns });
        }
        if self.plan.reorder_bp > 0 && self.draw_bp() < self.plan.reorder_bp {
            return Some(Fault::Reorder { hold_ns: self.plan.reorder_hold_ns });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_idle_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_idle());
        assert!(p.validate().is_ok());
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn rates_above_scale_are_rejected() {
        let p = FaultPlan::uniform_loss(1, BP_SCALE + 1);
        assert!(p.validate().is_err());
        assert!(FaultPlan::uniform_loss(1, BP_SCALE).validate().is_ok());
    }

    #[test]
    fn scope_filters_by_endpoint_and_size() {
        let s =
            FaultScope { src: Some(1), dst: None, min_payload_bytes: 10, max_payload_bytes: 20 };
        assert!(s.covers(1, 3, 15));
        assert!(!s.covers(2, 3, 15), "wrong source");
        assert!(!s.covers(1, 3, 9), "too small");
        assert!(!s.covers(1, 3, 21), "too large");
        assert!(FaultScope::all().covers(7, 0, 0));
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::uniform_loss(42, 2_000)
            .with_duplicates(500, 10_000)
            .with_delays(500, 50_000);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for i in 0..10_000u32 {
            assert_eq!(a.decide(0, 1, i % 64), b.decide(0, 1, i % 64), "envelope {i}");
        }
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultPlan::uniform_loss(7, 1_000));
        let n = 20_000;
        let drops = (0..n).filter(|_| inj.decide(0, 1, 16) == Some(Fault::Drop)).count();
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "10% nominal, got {rate:.4}");
    }

    #[test]
    fn node_faults_make_a_plan_non_idle() {
        let p = FaultPlan::none().with_node_fault(2, NodeFault::Crash { at_ns: 1_000 });
        assert!(!p.is_idle(), "a node-fault-only plan must not be idle");
        assert!(p.has_node_faults());
        assert!(p.validate().is_ok());
        assert_eq!(p.node_faults().count(), 1);
    }

    #[test]
    fn down_intervals_follow_the_schedule() {
        let p = FaultPlan::none()
            .with_node_fault(0, NodeFault::Crash { at_ns: 100 })
            .with_node_fault(1, NodeFault::CrashRestart { at_ns: 50, downtime_ns: 25 });
        assert!(!p.node_down_at(0, 99));
        assert!(p.node_down_at(0, 100));
        assert!(p.node_down_at(0, u64::MAX), "fail-stop never recovers");
        assert!(!p.node_down_at(1, 49));
        assert!(p.node_down_at(1, 50));
        assert!(p.node_down_at(1, 74));
        assert!(!p.node_down_at(1, 75), "restarted at at_ns + downtime_ns");
        assert!(!p.node_down_at(2, 100), "unafflicted node is never down");
    }

    #[test]
    fn stall_factor_applies_only_inside_the_window() {
        let p = FaultPlan::none()
            .with_node_fault(3, NodeFault::Stall { at_ns: 10, factor: 4, duration_ns: 20 });
        assert_eq!(p.stall_factor_at(3, 9), 1);
        assert_eq!(p.stall_factor_at(3, 10), 4);
        assert_eq!(p.stall_factor_at(3, 29), 4);
        assert_eq!(p.stall_factor_at(3, 30), 1);
        assert_eq!(p.stall_factor_at(0, 15), 1, "other nodes unaffected");
        assert!(!p.node_down_at(3, 15), "a stalled node is slow, not down");
    }

    #[test]
    fn malformed_node_faults_are_rejected() {
        let zero_down = FaultPlan::none()
            .with_node_fault(0, NodeFault::CrashRestart { at_ns: 5, downtime_ns: 0 });
        assert!(zero_down.validate().is_err());
        let zero_factor = FaultPlan::none()
            .with_node_fault(0, NodeFault::Stall { at_ns: 5, factor: 0, duration_ns: 10 });
        assert!(zero_factor.validate().is_err());
        let zero_duration = FaultPlan::none()
            .with_node_fault(0, NodeFault::Stall { at_ns: 5, factor: 2, duration_ns: 0 });
        assert!(zero_duration.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn node_fault_slots_are_bounded() {
        let mut p = FaultPlan::none();
        for i in 0..=MAX_NODE_FAULTS as u32 {
            p = p.with_node_fault(i, NodeFault::Crash { at_ns: 1 });
        }
    }

    #[test]
    fn out_of_scope_envelopes_consume_no_randomness() {
        let plan = FaultPlan::uniform_loss(3, 5_000)
            .with_scope(FaultScope { dst: Some(2), ..FaultScope::all() });
        let mut scoped = FaultInjector::new(plan);
        let mut reference = FaultInjector::new(plan);
        // Interleave out-of-scope traffic; the in-scope decision stream
        // must be unaffected.
        let mut scoped_decisions = Vec::new();
        for i in 0..1000 {
            scoped.decide(0, 1, 8);
            if i % 3 == 0 {
                scoped_decisions.push(scoped.decide(0, 2, 8));
            }
        }
        let reference_decisions: Vec<_> =
            (0..scoped_decisions.len()).map(|_| reference.decide(0, 2, 8)).collect();
        assert_eq!(scoped_decisions, reference_decisions);
    }
}
