//! Property-based tests for the mesh simulator.

use locus_mesh::topology::Topology;
use locus_mesh::{Envelope, Kernel, MeshConfig, Node, Outbox, SimTime, Step};
use proptest::prelude::*;

/// Sends `n` packets of `bytes` to `to`, then completes.
struct Sender {
    to: usize,
    bytes: u32,
    remaining: u32,
}

/// Completes after receiving `expect` packets.
struct Receiver {
    expect: usize,
    got: usize,
}

enum Actor {
    S(Sender),
    R(Receiver),
}

impl Node for Actor {
    type Msg = ();
    fn step(&mut self, _: SimTime, inbox: Vec<Envelope<()>>, out: &mut Outbox<()>) -> Step {
        match self {
            Actor::S(s) => {
                if s.remaining == 0 {
                    return Step::Done;
                }
                s.remaining -= 1;
                out.send(s.to, s.bytes, ());
                Step::Continue { busy_ns: 100 }
            }
            Actor::R(r) => {
                r.got += inbox.len();
                if r.got >= r.expect {
                    Step::Done
                } else {
                    Step::Block
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn route_length_always_equals_manhattan(
        rows in 1usize..6,
        cols in 1usize..6,
        src_i in 0usize..36,
        dst_i in 0usize..36,
    ) {
        let t = Topology::new(rows, cols);
        let src = src_i % t.n_nodes();
        let dst = dst_i % t.n_nodes();
        let route = t.route(src, dst);
        prop_assert_eq!(route.len() as u32, t.hops(src, dst));
        // Channels along the route are distinct (dimension order never
        // revisits a link).
        let mut seen = std::collections::HashSet::new();
        for ch in route {
            prop_assert!(seen.insert(ch));
        }
    }

    #[test]
    fn uncontended_latency_law_holds(
        d in 0u32..10,
        bytes in 0u32..4096,
    ) {
        let cfg = MeshConfig::ametek(4, 4);
        let expected =
            2 * cfg.process_time_ns + cfg.hop_time_ns * (d as u64 + bytes as u64 + 8);
        prop_assert_eq!(cfg.uncontended_latency_ns(d, bytes), expected);
    }

    #[test]
    fn all_packets_delivered_and_counted(
        n_packets in 1u32..20,
        bytes in 1u32..512,
        cols in 2usize..5,
    ) {
        let cfg = MeshConfig::ametek(1, cols);
        let dst = cols - 1;
        let mut nodes: Vec<Actor> = Vec::new();
        nodes.push(Actor::S(Sender { to: dst, bytes, remaining: n_packets }));
        for _ in 1..cols - 1 {
            nodes.push(Actor::R(Receiver { expect: 0, got: 0 }));
        }
        nodes.push(Actor::R(Receiver { expect: n_packets as usize, got: 0 }));
        let out = Kernel::new(cfg, nodes).run();
        prop_assert!(!out.stats.deadlocked);
        prop_assert_eq!(out.stats.packets, n_packets as u64);
        prop_assert_eq!(out.stats.payload_bytes, n_packets as u64 * bytes as u64);
        prop_assert_eq!(
            out.stats.wire_bytes,
            n_packets as u64 * (bytes as u64 + cfg.header_bytes as u64)
        );
        // Dimension-order distance from node 0 to the last column.
        prop_assert_eq!(
            out.stats.byte_hops,
            out.stats.wire_bytes * (cols as u64 - 1)
        );
    }

    #[test]
    fn contention_never_reduces_latency(
        n_packets in 2u32..10,
        bytes in 1u32..256,
    ) {
        let with = MeshConfig::ametek(1, 3);
        let without = with.without_contention();
        let mk = |_: ()| {
            vec![
                Actor::S(Sender { to: 2, bytes, remaining: n_packets }),
                Actor::S(Sender { to: 2, bytes, remaining: n_packets }),
                Actor::R(Receiver { expect: 2 * n_packets as usize, got: 0 }),
            ]
        };
        let a = Kernel::new(with, mk(())).run();
        let b = Kernel::new(without, mk(())).run();
        prop_assert!(!a.stats.deadlocked && !b.stats.deadlocked);
        prop_assert!(a.stats.completion >= b.stats.completion);
    }

    #[test]
    fn busy_time_never_exceeds_completion(
        n_packets in 1u32..10,
        bytes in 1u32..256,
    ) {
        let cfg = MeshConfig::ametek(1, 2);
        let nodes = vec![
            Actor::S(Sender { to: 1, bytes, remaining: n_packets }),
            Actor::R(Receiver { expect: n_packets as usize, got: 0 }),
        ];
        let out = Kernel::new(cfg, nodes).run();
        for &busy in &out.stats.busy_ns {
            prop_assert!(busy <= out.stats.completion.as_ns());
        }
    }
}
