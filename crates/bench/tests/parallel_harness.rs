//! The parallel sweep harness must be invisible in the results: every
//! engine is deterministic, so rows produced on the scoped-thread pool
//! must equal the serial rows bit for bit, at any thread count.

use locus_bench::{blocking_study, compare_paradigms, table1, table4, table6, Harness};
use locus_circuit::presets;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// The satellite property: parallel-sweep Table 1 rows equal the
    /// serial-sweep rows for every pool size.
    #[test]
    fn table1_parallel_rows_equal_serial_rows(threads in 2usize..=8) {
        let c = presets::tiny();
        let serial = table1(&Harness::serial(), &c, 2);
        let parallel = table1(&Harness::with_threads(threads), &c, 2);
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn multi_run_sweeps_are_harness_invariant() {
    let c = presets::tiny();
    let serial = Harness::serial();
    let pool = Harness::with_threads(4);
    assert_eq!(table4(&serial, &[&c], 2), table4(&pool, &[&c], 2));
    assert_eq!(table6(&serial, &c, &[2, 4]), table6(&pool, &c, &[2, 4]));
    assert_eq!(blocking_study(&serial, &c, 2), blocking_study(&pool, &c, 2));
}

#[test]
fn compare_paradigms_is_harness_invariant_and_registry_complete() {
    let c = presets::tiny();
    let serial = compare_paradigms(&Harness::serial(), &c, 2);
    let pool = compare_paradigms(&Harness::with_threads(3), &c, 2);
    assert_eq!(serial, pool);
    assert_eq!(serial.len(), locus_bench::COMPARE_ENGINES.len());
    for (row, (_, label)) in serial.iter().zip(locus_bench::COMPARE_ENGINES) {
        assert_eq!(row.approach, label);
    }
}
