//! Plain-text table rendering for experiment output.

/// Builds an aligned text table from a header row and data rows.
///
/// Columns are right-aligned except the first, matching the look of the
/// paper's tables in a terminal.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row has wrong arity");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("{cell:>w$}"));
            }
        }
        out.push('\n');
    };

    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    fmt_row(&header_cells, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let s = render_table(
            &["name", "val"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "12345".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned value column.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
