//! `probe` — calibration diagnostics: raw work counters, trace
//! composition, and coherence breakdowns used to tune the timing model.

use locus_bench::shared_memory_trace;
use locus_circuit::presets;
use locus_coherence::{traffic_by_line_size, RefKind};
use locus_msgpass::{run_msgpass, MsgPassConfig, PacketKind, UpdateSchedule};
use locus_router::{RouterParams, SequentialRouter};

fn main() {
    let c = presets::bnr_e();

    let seq = SequentialRouter::new(&c, RouterParams::default()).run();
    println!(
        "sequential bnrE: height={} occupancy={}",
        seq.quality.circuit_height, seq.quality.occupancy_factor
    );
    println!("  work: {:?}", seq.work);

    let trace = shared_memory_trace(&c, 16);
    let reads = trace.refs().iter().filter(|r| r.kind == RefKind::Read).count();
    println!("trace: {} refs ({} reads, {} writes)", trace.len(), reads, trace.write_count());
    for (ls, st) in traffic_by_line_size(&trace, &[4, 8, 16, 32]) {
        println!(
            "  line {ls:>2}: total={:.3}MB fetches={} words={} invals={} refetch={} writefrac={:.2}",
            st.mbytes(),
            st.line_fetches,
            st.word_writes,
            st.invalidations,
            st.refetches,
            st.write_fraction()
        );
    }

    for (label, schedule) in [
        ("sender (2,1)", UpdateSchedule::sender_initiated(2, 1)),
        ("sender (2,10)", UpdateSchedule::sender_initiated(2, 10)),
        ("receiver (1,5)", UpdateSchedule::receiver_initiated(1, 5)),
        ("receiver (1,30)", UpdateSchedule::receiver_initiated(1, 30)),
        ("never", UpdateSchedule::never()),
    ] {
        let out = run_msgpass(&c, MsgPassConfig::new(16, schedule));
        println!(
            "msgpass {label}: ht={} occ={} mb={:.3} t={:.3}s packets={} diverg={:.3}",
            out.quality.circuit_height,
            out.quality.occupancy_factor,
            out.mbytes,
            out.time_secs,
            out.packets.total_packets(),
            out.replica_divergence
        );
        let mean_len: f64 =
            out.routes.iter().map(|r| r.len() as f64).sum::<f64>() / out.routes.len() as f64;
        println!("    mean route cells: {mean_len:.2}");
        for kind in PacketKind::ALL {
            let p = out.packets.packets(kind);
            if p > 0 {
                println!("    {kind:?}: {} packets, {} bytes", p, out.packets.bytes(kind));
            }
        }
    }
}
