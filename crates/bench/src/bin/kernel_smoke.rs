//! CI smoke check for the evaluation-kernel write path.
//!
//! Usage: `cargo run --release -p locus-bench --bin kernel-smoke [BENCH_kernel.json]`
//!
//! Re-measures the `optimized_with_ripup_commit` workload (the span
//! kernel plus an add/remove write pair per connection — the surface the
//! incremental prefix-patching work optimizes) on both bench surfaces
//! and fails (exit 1) if either regresses more than 25% against the
//! numbers committed in `BENCH_kernel.json`.
//!
//! CI runners and the machine that produced the committed numbers run at
//! different speeds, so the comparison is normalized: the eval-only
//! `optimized` kernel is measured alongside and the ratio
//! `measured_optimized / committed_optimized` divides the rip-up/commit
//! measurement before the threshold applies. A uniformly slower machine
//! cancels out; only a change in the *relative* cost of the write path
//! trips the check.

use locus_circuit::{GridCell, Pin};
use locus_router::segment::Connection;
use locus_router::twobend::best_route;
use locus_router::CostArray;
use std::time::Instant;

const THRESHOLD: f64 = 1.25;
const WARMUP: u32 = 200;
const SAMPLES: usize = 500;

/// The kernel bench's congested surface (keep in sync with
/// `benches/kernel.rs`).
fn surface(channels: u16, grids: u16) -> CostArray {
    let mut costs = CostArray::new(channels, grids);
    for c in 0..channels {
        for x in 0..grids {
            costs.set(GridCell::new(c, x), ((x as u32 * 7 + c as u32 * 3) % 5) as u16);
        }
    }
    costs
}

/// The kernel bench's fixed 8-connection mix (keep in sync with
/// `benches/kernel.rs`).
fn connections(channels: u16, grids: u16) -> Vec<Connection> {
    let g = grids as u32;
    let top = channels - 1;
    let pin = |c: u16, x: u32| Pin::new(c.min(top), x.min(g - 1) as u16);
    vec![
        Connection { from: pin(2, g * 30 / 100), to: pin(top - 2, g * 39 / 100) },
        Connection { from: pin(0, g * 3 / 100), to: pin(top, g * 26 / 100) },
        Connection { from: pin(3, g * 60 / 100), to: pin(5, g * 63 / 100) },
        Connection { from: pin(1, g * 15 / 100), to: pin(top - 1, g * 50 / 100) },
        Connection { from: pin(4, g * 88 / 100), to: pin(4, g - 1) },
        Connection { from: pin(0, g * 73 / 100), to: pin(top, g * 73 / 100) },
        Connection { from: pin(2, 0), to: pin(top - 2, g * 18 / 100) },
        Connection {
            from: pin(channels / 2, g * 35 / 100),
            to: pin(channels / 2 + 1, g * 37 / 100),
        },
    ]
}

/// Median ns per `best_route` call for the eval-only workload.
fn measure_eval(channels: u16, grids: u16) -> f64 {
    let costs = surface(channels, grids);
    let conns = connections(channels, grids);
    let mut samples = Vec::with_capacity(SAMPLES);
    let lap = |costs: &CostArray| {
        let mut acc = 0u64;
        for &k in &conns {
            acc += best_route(costs, k, 1).cost;
        }
        std::hint::black_box(acc);
    };
    for _ in 0..WARMUP {
        lap(&costs);
    }
    for _ in 0..SAMPLES {
        let t = Instant::now();
        lap(&costs);
        samples.push(t.elapsed().as_nanos() as f64);
    }
    median(&mut samples) / conns.len() as f64
}

/// Median ns per `best_route` call for the eval + rip-up/commit cycle.
fn measure_ripup_commit(channels: u16, grids: u16) -> f64 {
    let mut costs = surface(channels, grids);
    let conns = connections(channels, grids);
    let mut samples = Vec::with_capacity(SAMPLES);
    let lap = |costs: &mut CostArray| {
        let mut acc = 0u64;
        for &k in &conns {
            let e = best_route(costs, k, 1);
            acc += e.cost;
            costs.add_route(&e.route);
            costs.remove_route(&e.route);
        }
        std::hint::black_box(acc);
    };
    for _ in 0..WARMUP {
        lap(&mut costs);
    }
    for _ in 0..SAMPLES {
        let t = Instant::now();
        lap(&mut costs);
        samples.push(t.elapsed().as_nanos() as f64);
    }
    median(&mut samples) / conns.len() as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Extracts `"field": <number>` from the surface object named `key` in
/// the committed artifact. The scan is anchored at the surface key so a
/// field name shared by both surfaces resolves to the right one.
fn committed(json: &str, key: &str, field: &str) -> f64 {
    let start = json
        .find(&format!("\"{key}\""))
        .unwrap_or_else(|| panic!("surface {key:?} not found in BENCH_kernel.json"));
    let tail = &json[start..];
    let f = tail
        .find(&format!("\"{field}\""))
        .unwrap_or_else(|| panic!("field {field:?} not found under surface {key:?}"));
    let after = &tail[f..];
    let colon = after.find(':').expect("malformed field");
    let rest = after[colon + 1..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end]
        .trim()
        .parse::<f64>()
        .unwrap_or_else(|e| panic!("field {field:?} under {key:?} is not a number: {e}"))
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_kernel.json".to_string());
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));

    let mut failed = false;
    for (key, channels, grids) in [("bnre", 10u16, 341u16), ("mdc", 12, 386)] {
        let committed_eval = committed(&json, key, "after_optimized_ns_per_call");
        let committed_rc = committed(&json, key, "optimized_with_ripup_commit_ns_per_call");
        let measured_eval = measure_eval(channels, grids);
        let measured_rc = measure_ripup_commit(channels, grids);
        let machine = measured_eval / committed_eval;
        let normalized = measured_rc / machine;
        let limit = committed_rc * THRESHOLD;
        let verdict = if normalized <= limit { "ok" } else { "REGRESSED" };
        println!(
            "kernel-smoke {key}: ripup_commit measured {measured_rc:.0} ns/call \
             (machine factor {machine:.2}x, normalized {normalized:.0}) \
             vs committed {committed_rc:.0}, limit {limit:.0} -> {verdict}"
        );
        if normalized > limit {
            failed = true;
        }
    }
    if failed {
        eprintln!(
            "kernel-smoke: optimized_with_ripup_commit regressed >25% vs {path}; \
             fix the regression or re-run the kernel bench and update the artifact"
        );
        std::process::exit(1);
    }
    println!("kernel-smoke: write path within 25% of committed numbers");
}
