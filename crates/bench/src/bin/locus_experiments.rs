//! `locus-experiments` — regenerates every table and figure of
//! Martonosi & Gupta (ICPP 1989) at the paper's full settings.
//!
//! Usage:
//!
//! ```text
//! locus-experiments <table1|table2|table3|table4|table5|table6|
//!                    blocking|mixed|locality|speedup|compare|
//!                    figure1|figure2|figure3|all>
//!                   [--trace-out <file>] [--metrics-out <file>]
//! locus-experiments --quality-check
//! ```
//!
//! `--quality-check` routes bnrE and MDC evaluating every connection with
//! both the optimized span kernel and the retained reference evaluator,
//! and exits nonzero on any divergence in route, cost, candidate count,
//! or cells examined.
//!
//! `--trace-out` writes a Chrome trace-event JSON (load it at
//! `chrome://tracing`) and `--metrics-out` a flat metrics JSON, both
//! captured from one instrumented paper-settings message-passing run
//! (bnrE, 16 processors, sender-initiated updates).
//!
//! Run with `--release`; the full suite takes a few minutes.

use locus_bench::fmt::render_table;
use locus_bench::*;
use locus_circuit::presets;

fn f3(v: f64) -> String {
    format!("{v:.3}")
}

fn run_table1() {
    let c = presets::bnr_e();
    let rows = table1(&c, PAPER_PROCS);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.a),
                format!("{}", r.b),
                format!("{}", r.ckt_ht),
                format!("{}", r.occupancy),
                f3(r.mbytes),
                f3(r.time_s),
            ]
        })
        .collect();
    println!("Table 1: network traffic using sender initiated updates (bnrE, 16 procs)\n");
    println!(
        "{}",
        render_table(
            &["SendRmtData", "SendLocData", "Ckt Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)"],
            &data
        )
    );
}

fn run_table2() {
    let c = presets::bnr_e();
    let rows = table2(&c, PAPER_PROCS);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.a),
                format!("{}", r.b),
                format!("{}", r.ckt_ht),
                format!("{}", r.occupancy),
                f3(r.mbytes),
                f3(r.time_s),
            ]
        })
        .collect();
    println!("Table 2: traffic using non-blocking receiver initiated updates (bnrE, 16 procs)\n");
    println!(
        "{}",
        render_table(
            &["ReqLocData", "ReqRmtData", "Ckt Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)"],
            &data
        )
    );
}

fn run_blocking() {
    let c = presets::bnr_e();
    let rows = blocking_study(&c, PAPER_PROCS);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("({},{})", r.schedule.0, r.schedule.1),
                format!("{}", r.ht_nonblocking),
                format!("{}", r.ht_blocking),
                f3(r.time_nonblocking),
                f3(r.time_blocking),
                format!("{:+.1}%", (r.time_blocking / r.time_nonblocking - 1.0) * 100.0),
            ]
        })
        .collect();
    println!("§5.1.3: blocking vs non-blocking receiver initiated (bnrE, 16 procs)\n");
    println!(
        "{}",
        render_table(
            &["(ReqLoc,ReqRmt)", "Ht nonblk", "Ht blk", "T nonblk (s)", "T blk (s)", "T delta"],
            &data
        )
    );
}

fn run_mixed() {
    let c = presets::bnr_e();
    let rows = mixed_study(&c, PAPER_PROCS);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}", r.ckt_ht),
                format!("{}", r.occupancy),
                f3(r.mbytes),
                f3(r.time_s),
            ]
        })
        .collect();
    println!("§5.1.3: mixed update schedules (bnrE, 16 procs)\n");
    println!(
        "{}",
        render_table(&["strategy", "Ckt Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)"], &data)
    );
}

fn run_table3() {
    let c = presets::bnr_e();
    let rows = table3(&c, PAPER_PROCS, &[4, 8, 16, 32]);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.line_size),
                format!("{:.2}", r.mbytes),
                format!("{:.0}%", r.write_fraction * 100.0),
                format!("{}", r.invalidations),
            ]
        })
        .collect();
    println!("Table 3: shared-memory traffic vs cache line size (bnrE, 16 procs, WBI)\n");
    println!(
        "{}",
        render_table(
            &["Cache Line Size", "MBytes Transferred", "write-caused", "invalidations"],
            &data
        )
    );
}

fn run_table4() {
    let bnr = presets::bnr_e();
    let mdc = presets::mdc();
    let rows = table4(&[&bnr, &mdc], PAPER_PROCS);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.circuit.clone(),
                r.method.clone(),
                format!("{}", r.ckt_ht),
                f3(r.mbytes),
                f3(r.time_s),
                f3(r.mbytes_receiver),
            ]
        })
        .collect();
    println!("Table 4: effect of locality, message passing (sender initiated; last column: receiver-initiated traffic)\n");
    println!(
        "{}",
        render_table(
            &["Ckt.", "Asmt. Method", "Ckt. Ht.", "MBytes Xfrd.", "Time (s)", "MB (recv-init)"],
            &data
        )
    );
}

fn run_table5() {
    let bnr = presets::bnr_e();
    let mdc = presets::mdc();
    let rows = table5(&[&bnr, &mdc], PAPER_PROCS);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.circuit.clone(), r.method.clone(), format!("{}", r.ckt_ht), f3(r.mbytes)])
        .collect();
    println!("Table 5: effect of locality in shared memory version (8-byte lines)\n");
    println!("{}", render_table(&["Ckt.", "Asmt. Method", "Ckt. Height", "MBytes Xfrd."], &data));
}

fn run_table6() {
    let c = presets::bnr_e();
    let rows = table6(&c, &[2, 4, 9, 16]);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.procs),
                format!("{}", r.ckt_ht),
                format!("{}", r.occupancy),
                f3(r.mbytes),
                f3(r.time_s),
                format!("{:.1}", r.speedup),
            ]
        })
        .collect();
    println!("Table 6: effect of number of processors (bnrE, sender initiated)\n");
    println!(
        "{}",
        render_table(
            &["Num Procs.", "Ckt. Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)", "Speedup"],
            &data
        )
    );
}

fn run_locality() {
    let bnr = presets::bnr_e();
    let mdc = presets::mdc();
    let rows = locality_study(&[&bnr, &mdc], &[4, 9, 16]);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.circuit.clone(),
                r.method.clone(),
                format!("{}", r.procs),
                format!("{:.2}", r.mean_hops),
                format!("{:.0}%", r.owned_fraction * 100.0),
            ]
        })
        .collect();
    println!("§5.3.3: locality measure (mean hops routing proc -> owner)\n");
    println!(
        "{}",
        render_table(&["Ckt.", "Asmt. Method", "Procs", "Mean hops", "Owned cells"], &data)
    );
}

fn run_speedup() {
    let bnr = presets::bnr_e();
    let mdc = presets::mdc();
    let rows = speedup_study(&[&bnr, &mdc], &[2, 4, 9, 16]);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.circuit.clone(),
                format!("{}", r.procs),
                format!("{:.4}", r.time_s),
                format!("{:.1}", r.speedup),
            ]
        })
        .collect();
    println!("§5.4: speedup (relative to 2-processor run, x2)\n");
    println!("{}", render_table(&["engine", "Ckt.", "Procs", "Time (s)", "Speedup"], &data));
}

fn ablation_table(title: &str, rows: &[locus_bench::AblationRow]) {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{}", r.ckt_ht),
                f3(r.mbytes),
                f3(r.time_s),
                format!("{}", r.packets),
            ]
        })
        .collect();
    println!("{title}\n");
    println!(
        "{}",
        render_table(&["variant", "Ckt. Ht.", "MBytes Xfrd.", "Time (s)", "packets"], &data)
    );
}

fn run_structures() {
    let c = presets::bnr_e();
    ablation_table(
        "Ablation §4.3.1: update packet structures (bnrE, 16 procs, sender initiated)",
        &structures_study(&c, PAPER_PROCS),
    );
}

fn run_overshoot() {
    let c = presets::bnr_e();
    ablation_table(
        "Ablation: two-bend candidate channel overshoot (bnrE, 16 procs)",
        &overshoot_study(&c, PAPER_PROCS),
    );
}

fn run_contention() {
    let c = presets::bnr_e();
    ablation_table(
        "Ablation: network contention model on/off (bnrE, 16 procs, eager sender)",
        &contention_study(&c, PAPER_PROCS),
    );
}

fn run_distribution() {
    let c = presets::bnr_e();
    ablation_table(
        "Ablation §4.2: static vs dynamic wire distribution (bnrE, 16 procs, 1 iteration)",
        &distribution_study(&c, PAPER_PROCS),
    );
}

fn run_compare() {
    let c = presets::bnr_e();
    let rows = compare_paradigms(&c, PAPER_PROCS);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.approach.clone(), format!("{}", r.ckt_ht), f3(r.mbytes)])
        .collect();
    println!("§5.2: shared memory vs message passing (bnrE, 16 procs)\n");
    println!("{}", render_table(&["approach", "Ckt. Ht.", "MBytes Xfrd."], &data));
}

/// Routes a circuit with both two-bend evaluators over an evolving cost
/// surface and counts divergences in `(route, cost, candidates,
/// cells_examined)`.
///
/// Every connection is evaluated three ways — the historical cell-list
/// reference, the span kernel through the `CostArray` prefix-sum fast
/// path, and the span kernel through the per-cell default span
/// implementations — on the live surface *before* the winner is
/// committed, so the comparison covers realistic congested states, not
/// just the empty array.
fn quality_check_circuit(c: &locus_circuit::Circuit) -> u64 {
    use locus_router::segment::decompose;
    use locus_router::twobend::{best_route, best_route_reference};
    use locus_router::{CostArray, CostView};

    /// Forces the per-cell default span implementations.
    struct PerCell<'a>(&'a CostArray);
    impl CostView for PerCell<'_> {
        fn channels(&self) -> u16 {
            CostView::channels(self.0)
        }
        fn grids(&self) -> u16 {
            CostView::grids(self.0)
        }
        fn cost_at(&self, cell: locus_circuit::GridCell) -> u32 {
            self.0.cost_at(cell)
        }
    }

    const OVERSHOOT: u16 = 1;
    let mut costs = CostArray::new(c.channels, c.grids);
    let mut checked = 0u64;
    let mut divergences = 0u64;
    for wire in &c.wires {
        for conn in decompose(wire) {
            let reference = best_route_reference(&costs, conn, OVERSHOOT);
            let fast = best_route(&costs, conn, OVERSHOOT);
            let slow = best_route(&PerCell(&costs), conn, OVERSHOOT);
            for (path, eval) in [("fast", &fast), ("percell", &slow)] {
                if eval.route != reference.route
                    || eval.cost != reference.cost
                    || eval.candidates != reference.candidates
                    || eval.cells_examined != reference.cells_examined
                {
                    divergences += 1;
                    eprintln!(
                        "quality-check: {} wire {} conn {:?}->{:?} [{path}]: \
                         cost {} vs {}, candidates {} vs {}, cells {} vs {}",
                        c.name,
                        wire.id,
                        conn.from,
                        conn.to,
                        eval.cost,
                        reference.cost,
                        eval.candidates,
                        reference.candidates,
                        eval.cells_examined,
                        reference.cells_examined,
                    );
                }
            }
            costs.add_route(&fast.route);
            checked += 1;
        }
    }
    println!("quality-check: {} — {} connections, {} divergences", c.name, checked, divergences);
    divergences
}

/// `--quality-check`: route bnrE and MDC with both evaluators and fail
/// on any divergence.
fn run_quality_check() -> ! {
    let divergences =
        quality_check_circuit(&presets::bnr_e()) + quality_check_circuit(&presets::mdc());
    if divergences > 0 {
        eprintln!("quality-check: FAILED ({divergences} divergences)");
        std::process::exit(1);
    }
    println!("quality-check: OK (optimized kernel matches reference evaluator exactly)");
    std::process::exit(0);
}

/// Removes `--flag <value>` from `args` and returns the value, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a file argument");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Runs one instrumented paper-settings run and writes the requested
/// trace / metrics exports.
fn write_observability(trace_out: Option<String>, metrics_out: Option<String>) {
    use locus_obs::export;
    let c = presets::bnr_e();
    eprintln!("observability: instrumented msgpass run (bnrE, {PAPER_PROCS} procs)...");
    let run = observed_paper_run(&c, PAPER_PROCS);
    if let Some(path) = trace_out {
        let json = export::chrome_trace(&run.events);
        export::validate_json(&json).expect("chrome trace must be valid JSON");
        write_or_die(&path, &json);
        eprintln!("observability: wrote {} events to {path} (chrome://tracing)", run.events.len());
    }
    if let Some(path) = metrics_out {
        let json = export::metrics_json(&run.metrics);
        export::validate_json(&json).expect("metrics must be valid JSON");
        write_or_die(&path, &json);
        eprintln!("observability: wrote metrics to {path}");
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--quality-check") {
        args.remove(i);
        run_quality_check();
    }
    let trace_out = take_flag(&mut args, "--trace-out");
    let metrics_out = take_flag(&mut args, "--metrics-out");
    if let Some(bad) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!("unknown flag {bad}; expected --trace-out FILE or --metrics-out FILE");
        std::process::exit(2);
    }
    let arg = args.first().cloned().unwrap_or_else(|| "all".to_string());
    let known: &[(&str, fn())] = &[
        ("table1", run_table1),
        ("table2", run_table2),
        ("blocking", run_blocking),
        ("mixed", run_mixed),
        ("table3", run_table3),
        ("table4", run_table4),
        ("table5", run_table5),
        ("table6", run_table6),
        ("locality", run_locality),
        ("speedup", run_speedup),
        ("compare", run_compare),
        ("structures", run_structures),
        ("distribution", run_distribution),
        ("overshoot", run_overshoot),
        ("contention", run_contention),
    ];
    match arg.as_str() {
        "figure1" => print!("{}", figure1()),
        "figure2" => print!("{}", figure2(4)),
        "figure3" => print!("{}", figure3()),
        "all" => {
            for (name, f) in known {
                println!("==== {name} ====");
                f();
            }
            print!("{}", figure1());
            print!("{}", figure2(4));
            print!("{}", figure3());
        }
        other => match known.iter().find(|(n, _)| *n == other) {
            Some((_, f)) => f(),
            None => {
                eprintln!(
                    "unknown experiment {other:?}; expected one of table1..table6, blocking, \
                     mixed, locality, speedup, compare, structures, overshoot, contention, \
                     figure1..figure3, all"
                );
                std::process::exit(2);
            }
        },
    }
    if trace_out.is_some() || metrics_out.is_some() {
        write_observability(trace_out, metrics_out);
    }
}
