//! `locus-experiments` — regenerates every table and figure of
//! Martonosi & Gupta (ICPP 1989) at the paper's full settings.
//!
//! Usage:
//!
//! ```text
//! locus-experiments <table1|table2|table3|table4|table5|table6|
//!                    blocking|mixed|locality|speedup|compare|faults|
//!                    serve|chaos|memory|figure1|figure2|figure3|list|sweeps|all>
//!                   [--quick] [--threads N] [--out <file>]
//!                   [--report <file>] [--memory <backend>]
//!                   [--trace-out <file>] [--metrics-out <file>]
//! locus-experiments --engine <name> [--circuit <name>] [--procs N] [--quick]
//! locus-experiments analyze [--engine <name>] [--procs N] [--quick]
//!                           [--report <file>]
//! locus-experiments --quality-check
//! ```
//!
//! Independent sweep points run concurrently on a small scoped-thread
//! pool sized by `--threads` (default: the host's available
//! parallelism). Engines are deterministic, so the output is identical
//! at any thread count; `sweeps` demonstrates that by running the
//! Table 1 sweep serially and in parallel, checking the rows match, and
//! recording the timings in `BENCH_sweeps.json` (see `--out`).
//!
//! `list` prints every experiment id plus every registered routing
//! engine; `--engine <name>` routes one circuit through a single
//! registry engine and prints its headline metrics (`--circuit
//! <tiny|small|bnre|mdc|powerlaw>` picks the preset). `serve` runs the
//! routing-as-a-service study — a seeded rush-hour workload swept from
//! underload to past saturation under each backpressure policy — and
//! writes the byte-identical `BENCH_service.json` (`--report` overrides
//! the path). `chaos` runs the node-failure chaos grid — one
//! deterministic crash, restart, coordinator loss, or stall injected
//! mid-run into the message-passing engine with checkpoint/restore
//! recovery on — verifies every scenario terminates with all wires
//! routed and reproduces bitwise, and writes `BENCH_resilience.json`.
//! `memory` replays each circuit's shared-memory trace
//! through every registered memory-system backend (bus-wbi, bus-wt,
//! directory, dls) and writes `BENCH_memory.json`; `--memory <backend>`
//! (alias `--protocol`) restricts the study to one backend, and on
//! `table3` reruns the line-size sweep through that backend — e.g.
//! `table3 --memory bus-wt` is the write-through ablation. `--quick` shrinks
//! any experiment to a CI-sized configuration (small synthetic circuit,
//! 4 processors) — `locus-experiments compare --quick` is the CI smoke
//! step.
//!
//! `analyze` replays one engine's coherence trace through the
//! vector-clock race detector and classifies every unsynchronized
//! conflicting pair as benign or quality-affecting (for the
//! message-passing engines it instead audits replica staleness against
//! the ground-truth cost array). `--report <file>` writes the
//! machine-readable JSON report.
//!
//! `--quality-check` routes bnrE and MDC evaluating every connection with
//! both the optimized span kernel and the retained reference evaluator,
//! and exits nonzero on any divergence in route, cost, candidate count,
//! or cells examined.
//!
//! `--trace-out` writes a Chrome trace-event JSON (load it at
//! `chrome://tracing`) and `--metrics-out` a flat metrics JSON, both
//! captured from one instrumented paper-settings message-passing run
//! (bnrE, 16 processors, sender-initiated updates).
//!
//! Run with `--release`; the full suite takes a few minutes.

use std::time::Instant;

use locus_bench::fmt::render_table;
use locus_bench::sweep::Harness;
use locus_bench::*;
use locus_circuit::presets;
use locusroute::engines::{build_engine, registry};
use locusroute::router::engine::EngineCtx;
use locusroute::router::RouterParams;

/// Settings shared by every experiment runner: the sweep harness and
/// whether to shrink to the CI-sized quick configuration.
struct RunCfg {
    harness: Harness,
    quick: bool,
    /// `--memory <backend>` (alias `--protocol`): restrict memory-system
    /// experiments to one registered backend.
    memory_backend: Option<String>,
}

impl RunCfg {
    /// The benchmark circuit (`--quick`: the small synthetic preset).
    fn circuit(&self) -> locus_circuit::Circuit {
        if self.quick {
            presets::small()
        } else {
            presets::bnr_e()
        }
    }

    /// The second circuit for two-circuit tables (`--quick`: tiny).
    fn circuit2(&self) -> locus_circuit::Circuit {
        if self.quick {
            presets::tiny()
        } else {
            presets::mdc()
        }
    }

    /// Processor count (`--quick`: 4).
    fn procs(&self) -> usize {
        if self.quick {
            4
        } else {
            PAPER_PROCS
        }
    }

    /// Processor sweep for Table 6 / speedup (`--quick`: {2,4}).
    fn proc_sweep(&self) -> &'static [usize] {
        if self.quick {
            &[2, 4]
        } else {
            &[2, 4, 9, 16]
        }
    }

    /// Short circuit label for table titles (paper naming).
    fn label(&self) -> &'static str {
        if self.quick {
            "small"
        } else {
            "bnrE"
        }
    }

    fn setting(&self) -> String {
        format!("{}, {} procs", self.label(), self.procs())
    }
}

fn f3(v: f64) -> String {
    format!("{v:.3}")
}

fn run_table1(cfg: &RunCfg) {
    let c = cfg.circuit();
    let rows = table1(&cfg.harness, &c, cfg.procs());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.a),
                format!("{}", r.b),
                format!("{}", r.ckt_ht),
                format!("{}", r.occupancy),
                f3(r.mbytes),
                f3(r.time_s),
            ]
        })
        .collect();
    println!("Table 1: network traffic using sender initiated updates ({})\n", cfg.setting());
    println!(
        "{}",
        render_table(
            &["SendRmtData", "SendLocData", "Ckt Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)"],
            &data
        )
    );
}

fn run_table2(cfg: &RunCfg) {
    let c = cfg.circuit();
    let rows = table2(&cfg.harness, &c, cfg.procs());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.a),
                format!("{}", r.b),
                format!("{}", r.ckt_ht),
                format!("{}", r.occupancy),
                f3(r.mbytes),
                f3(r.time_s),
            ]
        })
        .collect();
    println!(
        "Table 2: traffic using non-blocking receiver initiated updates ({})\n",
        cfg.setting()
    );
    println!(
        "{}",
        render_table(
            &["ReqLocData", "ReqRmtData", "Ckt Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)"],
            &data
        )
    );
}

fn run_blocking(cfg: &RunCfg) {
    let c = cfg.circuit();
    let rows = blocking_study(&cfg.harness, &c, cfg.procs());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("({},{})", r.schedule.0, r.schedule.1),
                format!("{}", r.ht_nonblocking),
                format!("{}", r.ht_blocking),
                f3(r.time_nonblocking),
                f3(r.time_blocking),
                format!("{:+.1}%", (r.time_blocking / r.time_nonblocking - 1.0) * 100.0),
            ]
        })
        .collect();
    println!("§5.1.3: blocking vs non-blocking receiver initiated ({})\n", cfg.setting());
    println!(
        "{}",
        render_table(
            &["(ReqLoc,ReqRmt)", "Ht nonblk", "Ht blk", "T nonblk (s)", "T blk (s)", "T delta"],
            &data
        )
    );
}

fn run_mixed(cfg: &RunCfg) {
    let c = cfg.circuit();
    let rows = mixed_study(&cfg.harness, &c, cfg.procs());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}", r.ckt_ht),
                format!("{}", r.occupancy),
                f3(r.mbytes),
                f3(r.time_s),
            ]
        })
        .collect();
    println!("§5.1.3: mixed update schedules ({})\n", cfg.setting());
    println!(
        "{}",
        render_table(&["strategy", "Ckt Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)"], &data)
    );
}

fn run_table3(cfg: &RunCfg) {
    let c = cfg.circuit();
    let (rows, protocol) = match &cfg.memory_backend {
        Some(backend) => {
            let rows =
                table3_backend(&c, cfg.procs(), &[4, 8, 16, 32], backend).unwrap_or_else(|msg| {
                    eprintln!("{msg}");
                    std::process::exit(2);
                });
            (rows, backend.as_str())
        }
        None => (table3(&cfg.harness, &c, cfg.procs(), &[4, 8, 16, 32]), "WBI"),
    };
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.line_size),
                format!("{:.2}", r.mbytes),
                format!("{:.0}%", r.write_fraction * 100.0),
                format!("{}", r.invalidations),
            ]
        })
        .collect();
    println!("Table 3: shared-memory traffic vs cache line size ({}, {protocol})\n", cfg.setting());
    println!(
        "{}",
        render_table(
            &["Cache Line Size", "MBytes Transferred", "write-caused", "invalidations"],
            &data
        )
    );
}

fn run_table4(cfg: &RunCfg) {
    let a = cfg.circuit();
    let b = cfg.circuit2();
    let rows = table4(&cfg.harness, &[&a, &b], cfg.procs());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.circuit.clone(),
                r.method.clone(),
                format!("{}", r.ckt_ht),
                f3(r.mbytes),
                f3(r.time_s),
                f3(r.mbytes_receiver),
            ]
        })
        .collect();
    println!("Table 4: effect of locality, message passing (sender initiated; last column: receiver-initiated traffic)\n");
    println!(
        "{}",
        render_table(
            &["Ckt.", "Asmt. Method", "Ckt. Ht.", "MBytes Xfrd.", "Time (s)", "MB (recv-init)"],
            &data
        )
    );
}

fn run_table5(cfg: &RunCfg) {
    let a = cfg.circuit();
    let b = cfg.circuit2();
    let rows = table5(&cfg.harness, &[&a, &b], cfg.procs());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.circuit.clone(), r.method.clone(), format!("{}", r.ckt_ht), f3(r.mbytes)])
        .collect();
    println!("Table 5: effect of locality in shared memory version (8-byte lines)\n");
    println!("{}", render_table(&["Ckt.", "Asmt. Method", "Ckt. Height", "MBytes Xfrd."], &data));
}

fn run_table6(cfg: &RunCfg) {
    let c = cfg.circuit();
    let rows = table6(&cfg.harness, &c, cfg.proc_sweep());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.procs),
                format!("{}", r.ckt_ht),
                format!("{}", r.occupancy),
                f3(r.mbytes),
                f3(r.time_s),
                format!("{:.1}", r.speedup),
            ]
        })
        .collect();
    println!("Table 6: effect of number of processors ({}, sender initiated)\n", cfg.label());
    println!(
        "{}",
        render_table(
            &["Num Procs.", "Ckt. Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)", "Speedup"],
            &data
        )
    );
}

fn run_locality(cfg: &RunCfg) {
    let a = cfg.circuit();
    let b = cfg.circuit2();
    let procs: &[usize] = if cfg.quick { &[4] } else { &[4, 9, 16] };
    let rows = locality_study(&cfg.harness, &[&a, &b], procs);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.circuit.clone(),
                r.method.clone(),
                format!("{}", r.procs),
                format!("{:.2}", r.mean_hops),
                format!("{:.0}%", r.owned_fraction * 100.0),
            ]
        })
        .collect();
    println!("§5.3.3: locality measure (mean hops routing proc -> owner)\n");
    println!(
        "{}",
        render_table(&["Ckt.", "Asmt. Method", "Procs", "Mean hops", "Owned cells"], &data)
    );
}

fn run_speedup(cfg: &RunCfg) {
    let a = cfg.circuit();
    let b = cfg.circuit2();
    let rows = speedup_study(&cfg.harness, &[&a, &b], cfg.proc_sweep());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                r.circuit.clone(),
                format!("{}", r.procs),
                format!("{:.4}", r.time_s),
                format!("{:.1}", r.speedup),
            ]
        })
        .collect();
    println!("§5.4: speedup (relative to 2-processor run, x2)\n");
    println!("{}", render_table(&["engine", "Ckt.", "Procs", "Time (s)", "Speedup"], &data));
}

fn ablation_table(title: &str, rows: &[locus_bench::AblationRow]) {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{}", r.ckt_ht),
                f3(r.mbytes),
                f3(r.time_s),
                format!("{}", r.packets),
            ]
        })
        .collect();
    println!("{title}\n");
    println!(
        "{}",
        render_table(&["variant", "Ckt. Ht.", "MBytes Xfrd.", "Time (s)", "packets"], &data)
    );
}

fn run_structures(cfg: &RunCfg) {
    let c = cfg.circuit();
    ablation_table(
        &format!("Ablation §4.3.1: update packet structures ({}, sender initiated)", cfg.setting()),
        &structures_study(&cfg.harness, &c, cfg.procs()),
    );
}

fn run_overshoot(cfg: &RunCfg) {
    let c = cfg.circuit();
    ablation_table(
        &format!("Ablation: two-bend candidate channel overshoot ({})", cfg.setting()),
        &overshoot_study(&cfg.harness, &c, cfg.procs()),
    );
}

fn run_contention(cfg: &RunCfg) {
    let c = cfg.circuit();
    ablation_table(
        &format!("Ablation: network contention model on/off ({}, eager sender)", cfg.setting()),
        &contention_study(&cfg.harness, &c, cfg.procs()),
    );
}

fn run_distribution(cfg: &RunCfg) {
    let c = cfg.circuit();
    ablation_table(
        &format!(
            "Ablation §4.2: static vs dynamic wire distribution ({}, 1 iteration)",
            cfg.setting()
        ),
        &distribution_study(&cfg.harness, &c, cfg.procs()),
    );
}

/// `faults`: the resilience study — uniform packet loss × update
/// schedule with the reliability protocol on. `--report FILE` writes the
/// machine-readable JSON rows.
fn run_faults(cfg: &RunCfg, report_out: Option<String>) {
    let c = cfg.circuit();
    let losses = if cfg.quick { FAULT_LOSSES_BP_QUICK } else { FAULT_LOSSES_BP };
    let rows = faults_study(&cfg.harness, &c, cfg.procs(), losses);
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.schedule.to_string(),
                format!("{:.1}%", r.loss_bp as f64 / 100.0),
                format!("{}", r.ckt_ht),
                f3(r.time_s),
                f3(r.mbytes),
                format!("{}", r.dropped),
                format!("{}", r.retransmits),
                format!("{}", r.acks),
                format!("{:.3}", r.divergence),
                if r.degraded { "yes".into() } else { "no".into() },
            ]
        })
        .collect();
    println!("Resilience study: packet loss vs reliability protocol ({})\n", cfg.setting());
    println!(
        "{}",
        render_table(
            &[
                "schedule", "loss", "Ckt Ht.", "Time (s)", "MBytes", "dropped", "resent", "acks",
                "diverg.", "degraded",
            ],
            &data
        )
    );
    if let Some(path) = report_out {
        write_or_die(&path, &faults_report_json(&rows, cfg.label(), cfg.procs()));
        println!("faults: wrote {path}");
    }
}

/// [`run_faults`] adapter for the `all` sequence (no report file).
fn run_faults_known(cfg: &RunCfg) {
    run_faults(cfg, None);
}

/// `serve`: the routing-as-a-service study — offered load × backpressure
/// policy on the rush-hour workload. `report_out = Some(path)` writes the
/// byte-identical `BENCH_service.json`.
fn run_serve(cfg: &RunCfg, report_out: Option<String>) {
    use locus_service::WorkerPool;
    let pool = WorkerPool::with_threads(cfg.harness.threads());
    let study = service_study(&pool, cfg.quick);
    let data: Vec<Vec<String>> = study
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.load),
                r.policy.to_string(),
                format!("{}", r.submitted),
                format!("{}", r.completed),
                format!("{}", r.shed),
                format!("{}", r.rejected),
                format!("{}", r.p50_wait_ms),
                format!("{}", r.p95_wait_ms),
                format!("{}", r.p99_wait_ms),
                format!("{}", r.p95_service_ms),
                format!("{:.2}", r.throughput_jps),
                format!("{:.0}%", r.utilization * 100.0),
                format!("{:.0}%", r.slo_ok * 100.0),
            ]
        })
        .collect();
    println!(
        "Routing as a service: offered load x backpressure ({} workers, queue {}, {} virtual ms)\n",
        study.workers, study.queue_capacity, study.duration_ms
    );
    println!(
        "{}",
        render_table(
            &[
                "load", "policy", "subm", "done", "shed", "rej", "p50 wait", "p95 wait",
                "p99 wait", "p95 svc", "jobs/s", "util", "SLO ok",
            ],
            &data
        )
    );
    match study.knee_load {
        Some(k) => println!(
            "knee: load {k} is the first swept level whose blocking p95 queue wait \
             exceeds the {SERVICE_SLO_WAIT_MS} ms SLO"
        ),
        None => println!("knee: not reached within the swept loads"),
    }
    if let Some(path) = report_out {
        write_or_die(&path, &service_report_json(&study, cfg.quick));
        println!("serve: wrote {path}");
    }
}

/// [`run_serve`] adapter for the `all` sequence (no report file).
fn run_serve_known(cfg: &RunCfg) {
    run_serve(cfg, None);
}

/// `chaos`: the node-failure chaos grid — a single mid-run crash,
/// crash-with-restart, coordinator loss, or stall injected into the
/// message-passing engine with checkpoint/restore recovery on.
/// `report_out = Some(path)` writes the byte-identical
/// `BENCH_resilience.json`. Exits nonzero if any scenario degraded,
/// left a wire to the watchdog, or failed the repeat-identical check.
fn run_chaos(cfg: &RunCfg, report_out: Option<String>) {
    let study = chaos_study(&cfg.harness, cfg.quick);
    for p in &study.probes {
        println!(
            "probe: {} ({} procs) clean {:.3}s (routing {:.3}s) -> heartbeat {} ms, suspect window {} ms",
            p.circuit,
            p.procs,
            p.base_time_s,
            p.routing_s,
            p.heartbeat_ns / 1_000_000,
            p.heartbeat_ns * p.suspect_after as u64 / 1_000_000,
        );
    }
    let data: Vec<Vec<String>> = study
        .rows
        .iter()
        .map(|r| {
            vec![
                r.circuit.clone(),
                r.scenario.to_string(),
                format!("{}", r.checkpoint_every),
                format!("{}", r.fault_frac),
                format!("{}", r.ckt_ht),
                format!("{:.3}", r.time_s),
                format!("{:.2}x", r.time_vs_clean),
                format!("{:.2}x", r.mbytes_vs_clean),
                format!("{}", r.checkpoints),
                format!("{}", r.declared_dead),
                format!("{}", r.reassigned),
                format!("{}", r.rollbacks),
                format!("{}", r.failovers),
                format!("{}", r.duplicates),
                if r.ok() { "ok".to_string() } else { "FAIL".to_string() },
            ]
        })
        .collect();
    println!(
        "\nChaos grid: single node fault x checkpoint interval (recovery on, repeat-verified)\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "circuit", "scenario", "ckpt", "at", "ckt ht", "time s", "vs clean", "mb vs",
                "ckpts", "dead", "reassign", "rollbk", "failover", "dup", "status",
            ],
            &data
        )
    );
    if let Some(path) = report_out {
        write_or_die(&path, &chaos_report_json(&study, cfg.quick));
        println!("chaos: wrote {path}");
    }
    if !study.all_ok() {
        eprintln!("chaos: FAILED — a scenario degraded, lost a wire, or did not reproduce");
        std::process::exit(1);
    }
    println!(
        "chaos: all {} scenarios terminated with every wire routed, bitwise-repeatable",
        study.rows.len()
    );
}

/// [`run_chaos`] adapter for the `all` sequence (no report file).
fn run_chaos_known(cfg: &RunCfg) {
    run_chaos(cfg, None);
}

/// `memory`: the memory-system backend study — every registered backend
/// replays the same per-circuit shared-memory trace over the same mesh
/// machine. `--memory <backend>` restricts the table to one backend;
/// `report_out = Some(path)` writes `BENCH_memory.json`.
fn run_memory(cfg: &RunCfg, report_out: Option<String>) {
    use locus_coherence::memory_registry;
    let a = cfg.circuit();
    let b = cfg.circuit2();
    let mut rows = memory_study(&cfg.harness, &[&a, &b], cfg.procs(), MEMORY_STUDY_LINE_SIZE);
    if let Some(backend) = &cfg.memory_backend {
        if !memory_registry().iter().any(|e| e.name == backend.as_str()) {
            let known: Vec<&str> = memory_registry().iter().map(|e| e.name).collect();
            eprintln!("unknown memory backend {backend:?}; expected one of {known:?}");
            std::process::exit(2);
        }
        rows.retain(|r| r.backend == backend.as_str());
    }
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.circuit.clone(),
                r.backend.to_string(),
                format!("{:.2}", r.mbytes),
                format!("{:.0}%", r.write_fraction * 100.0),
                format!("{}", r.coherence_events),
                format!("{:.2}", r.inval_mbytes),
                format!("{:.3}", r.fifo_wait_ns as f64 / 1.0e6),
                format!("{:.0}", r.fifo_critical_mean_ns),
                format!("{:.0}", r.prio_critical_mean_ns),
                format!("{:.3}", r.critical_wait_saved_ns as f64 / 1.0e6),
            ]
        })
        .collect();
    println!(
        "Memory-system backends: identical traces, {}-byte lines ({} procs)\n",
        MEMORY_STUDY_LINE_SIZE,
        cfg.procs()
    );
    println!(
        "{}",
        render_table(
            &[
                "Ckt.",
                "backend",
                "MBytes",
                "wr-caused",
                "coh. events",
                "inval MB",
                "FIFO wait (ms)",
                "crit ns (FIFO)",
                "crit ns (prio)",
                "saved (ms)",
            ],
            &data
        )
    );
    if let Some(path) = report_out {
        write_or_die(&path, &memory_report_json(&rows, cfg.procs(), MEMORY_STUDY_LINE_SIZE));
        println!("memory: wrote {path}");
    }
}

/// [`run_memory`] adapter for the `all` sequence (no report file).
fn run_memory_known(cfg: &RunCfg) {
    run_memory(cfg, None);
}

fn run_compare(cfg: &RunCfg) {
    let c = cfg.circuit();
    let rows = compare_paradigms(&cfg.harness, &c, cfg.procs());
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.approach.clone(), format!("{}", r.ckt_ht), f3(r.mbytes)])
        .collect();
    println!("§5.2: shared memory vs message passing ({})\n", cfg.setting());
    println!("{}", render_table(&["approach", "Ckt. Ht.", "MBytes Xfrd."], &data));
}

/// `list`: every experiment id the CLI accepts plus every engine the
/// registry can build.
fn run_list() {
    println!("experiments:");
    for (name, _) in KNOWN {
        println!("  {name}");
    }
    for extra in ["figure1", "figure2", "figure3", "list", "sweeps", "all"] {
        println!("  {extra}");
    }
    println!("\nengines (--engine <name>):");
    for e in registry() {
        println!("  {:<17} {}", e.name, e.summary);
    }
    println!("\nmemory backends (--memory <name>):");
    for e in locus_coherence::memory_registry() {
        println!("  {:<17} {}", e.name, e.summary);
    }
}

/// Resolves a `--circuit` name to its preset.
fn circuit_by_name(name: &str) -> locus_circuit::Circuit {
    match name {
        "tiny" => presets::tiny(),
        "small" => presets::small(),
        "bnre" | "bnrE" => presets::bnr_e(),
        "mdc" => presets::mdc(),
        "powerlaw" => presets::power_law(),
        other => {
            eprintln!("unknown circuit {other:?}; expected tiny, small, bnre, mdc or powerlaw");
            std::process::exit(2);
        }
    }
}

/// `--engine <name>`: one run of a single registry engine.
fn run_engine(cfg: &RunCfg, name: &str, procs: Option<usize>, circuit: Option<String>) {
    let engine = match build_engine(name) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let c = match circuit {
        Some(name) => circuit_by_name(&name),
        None => cfg.circuit(),
    };
    let procs = procs.unwrap_or_else(|| cfg.procs());
    let ctx = EngineCtx::new(procs).with_traffic();
    let run = engine.route(&c, &RouterParams::default(), &ctx);
    let data = vec![vec![
        engine.id().to_string(),
        format!("{}", run.outcome.quality.circuit_height),
        format!("{}", run.outcome.quality.occupancy_factor),
        run.mbytes.map_or("-".into(), f3),
        run.time_secs.map_or("-".into(), f3),
    ]];
    println!("engine run ({}, {} procs)\n", c.name, procs);
    println!(
        "{}",
        render_table(&["engine", "Ckt. Ht.", "Occup. Factor", "MBytes Xfrd.", "Time (s)"], &data)
    );
}

/// `analyze`: race detection + classification over one engine's
/// reference trace, or replica-staleness auditing for the
/// message-passing engines. `--report FILE` writes machine-readable
/// JSON alongside the printed summary.
fn run_analyze(cfg: &RunCfg, name: &str, procs: Option<usize>, report_out: Option<String>) {
    use locus_analysis as analysis;
    use locus_obs::{names, RingBufferSink};

    let c = cfg.circuit();
    let procs = procs.unwrap_or_else(|| cfg.procs());
    let params = RouterParams::default();

    if name.starts_with("msgpass") {
        let audit_every = if cfg.quick { 2 } else { 8 };
        let (report, outcome) =
            match analysis::audit_staleness(&c, name, procs, params, audit_every) {
                Ok(r) => r,
                Err(msg) => {
                    eprintln!("{msg}");
                    std::process::exit(2);
                }
            };
        print!("{}", report.render());
        println!(
            "  quality: height {}, occupancy {}",
            outcome.quality.circuit_height, outcome.quality.occupancy_factor
        );
        if let Some(path) = report_out {
            write_or_die(&path, &analysis::staleness_report_json(&report, name, procs));
            eprintln!("analyze: wrote staleness report to {path}");
        }
        return;
    }

    let report = match analysis::analyze_engine(&c, name, procs, params) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    print!("{}", report.render());
    let mut sink = RingBufferSink::new();
    analysis::emit_race_events(&report, &mut sink);
    println!(
        "  obs: {}={} {}={} {}={}",
        names::RACES_DETECTED,
        sink.metrics().counter(names::RACES_DETECTED),
        names::BENIGN_RACES,
        sink.metrics().counter(names::BENIGN_RACES),
        names::QUALITY_RACES,
        sink.metrics().counter(names::QUALITY_RACES),
    );
    if let Some(path) = report_out {
        write_or_die(&path, &analysis::race_report_json(&report));
        eprintln!("analyze: wrote race report to {path}");
    }
}

/// `sweeps`: runs the Table 1 sweep serially and on the parallel
/// harness, verifies the rows are identical, and records the wall-clock
/// comparison in a JSON artifact.
fn run_sweeps(cfg: &RunCfg, out_path: &str) {
    let c = cfg.circuit();
    let procs = cfg.procs();
    let threads = cfg.harness.threads().max(2);
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("sweeps: table1 serial ({}, {procs} procs)...", c.name);
    let t0 = Instant::now();
    let serial_rows = table1(&Harness::serial(), &c, procs);
    let serial_s = t0.elapsed().as_secs_f64();

    eprintln!("sweeps: table1 parallel ({threads} threads)...");
    let t1 = Instant::now();
    let parallel_rows = table1(&Harness::with_threads(threads), &c, procs);
    let parallel_s = t1.elapsed().as_secs_f64();

    let rows_equal = serial_rows == parallel_rows;
    let speedup = serial_s / parallel_s;
    let json = format!(
        "{{\n  \"benchmark\": \"sweeps\",\n  \"description\": \"Wall-clock time of the full Table 1 sweep (12 message-passing runs) executed serially vs on the scoped-thread sweep harness. Engines are deterministic, so rows_equal must be true at any thread count; the achievable speedup is bounded by host_cpus. Run with: cargo run --release -p locus-bench --bin locus-experiments sweeps.\",\n  \"experiment\": \"table1\",\n  \"circuit\": \"{}\",\n  \"n_procs\": {},\n  \"host_cpus\": {},\n  \"threads\": {},\n  \"serial_s\": {:.3},\n  \"parallel_s\": {:.3},\n  \"speedup\": {:.2},\n  \"rows_equal\": {},\n  \"notes\": \"The shmem threads engine now defaults to per-shard cost-array ownership (each worker routes against a private replica with its own prefix caches; cross-shard writes become visible at iteration barriers). This sweep exercises the message-passing engine, whose per-node replicas already had that property, so its rows are unaffected; shard ownership changes no deterministic result in any engine at P=1.\"\n}}\n",
        c.name, procs, host_cpus, threads, serial_s, parallel_s, speedup, rows_equal
    );
    write_or_die(out_path, &json);
    println!(
        "sweeps: serial {serial_s:.3}s, parallel {parallel_s:.3}s on {threads} threads \
         ({host_cpus} host cpus) -> speedup {speedup:.2}x, rows_equal = {rows_equal}"
    );
    println!("sweeps: wrote {out_path}");
    if !rows_equal {
        eprintln!("sweeps: FAILED — parallel rows diverge from serial rows");
        std::process::exit(1);
    }
}

/// Routes a circuit with both two-bend evaluators over an evolving cost
/// surface and counts divergences in `(route, cost, candidates,
/// cells_examined)`.
///
/// Every connection is evaluated three ways — the historical cell-list
/// reference, the span kernel through the `CostArray` prefix-sum fast
/// path, and the span kernel through the per-cell default span
/// implementations — on the live surface *before* the winner is
/// committed, so the comparison covers realistic congested states, not
/// just the empty array.
fn quality_check_circuit(c: &locus_circuit::Circuit) -> u64 {
    use locus_router::segment::decompose;
    use locus_router::twobend::{best_route, best_route_reference};
    use locus_router::{CostArray, CostView};

    /// Forces the per-cell default span implementations.
    struct PerCell<'a>(&'a CostArray);
    impl CostView for PerCell<'_> {
        fn channels(&self) -> u16 {
            CostView::channels(self.0)
        }
        fn grids(&self) -> u16 {
            CostView::grids(self.0)
        }
        fn cost_at(&self, cell: locus_circuit::GridCell) -> u32 {
            self.0.cost_at(cell)
        }
    }

    const OVERSHOOT: u16 = 1;
    let mut costs = CostArray::new(c.channels, c.grids);
    let mut checked = 0u64;
    let mut divergences = 0u64;
    for wire in &c.wires {
        for conn in decompose(wire) {
            let reference = best_route_reference(&costs, conn, OVERSHOOT);
            let fast = best_route(&costs, conn, OVERSHOOT);
            let slow = best_route(&PerCell(&costs), conn, OVERSHOOT);
            for (path, eval) in [("fast", &fast), ("percell", &slow)] {
                if eval.route != reference.route
                    || eval.cost != reference.cost
                    || eval.candidates != reference.candidates
                    || eval.cells_examined != reference.cells_examined
                {
                    divergences += 1;
                    eprintln!(
                        "quality-check: {} wire {} conn {:?}->{:?} [{path}]: \
                         cost {} vs {}, candidates {} vs {}, cells {} vs {}",
                        c.name,
                        wire.id,
                        conn.from,
                        conn.to,
                        eval.cost,
                        reference.cost,
                        eval.candidates,
                        reference.candidates,
                        eval.cells_examined,
                        reference.cells_examined,
                    );
                }
            }
            costs.add_route(&fast.route);
            checked += 1;
        }
    }
    println!("quality-check: {} — {} connections, {} divergences", c.name, checked, divergences);
    divergences
}

/// `--quality-check`: route bnrE and MDC with both evaluators and fail
/// on any divergence.
fn run_quality_check() -> ! {
    let divergences =
        quality_check_circuit(&presets::bnr_e()) + quality_check_circuit(&presets::mdc());
    if divergences > 0 {
        eprintln!("quality-check: FAILED ({divergences} divergences)");
        std::process::exit(1);
    }
    println!("quality-check: OK (optimized kernel matches reference evaluator exactly)");
    std::process::exit(0);
}

/// Removes `--flag <value>` from `args` and returns the value, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Removes a boolean `--flag` from `args`, returning whether it was set.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

/// Runs one instrumented paper-settings run and writes the requested
/// trace / metrics exports.
fn write_observability(trace_out: Option<String>, metrics_out: Option<String>) {
    use locus_obs::export;
    let c = presets::bnr_e();
    eprintln!("observability: instrumented msgpass run (bnrE, {PAPER_PROCS} procs)...");
    let run = observed_paper_run(&c, PAPER_PROCS);
    if let Some(path) = trace_out {
        let json = export::chrome_trace(&run.events);
        export::validate_json(&json).expect("chrome trace must be valid JSON");
        write_or_die(&path, &json);
        eprintln!("observability: wrote {} events to {path} (chrome://tracing)", run.events.len());
    }
    if let Some(path) = metrics_out {
        let json = export::metrics_json(&run.metrics);
        export::validate_json(&json).expect("metrics must be valid JSON");
        write_or_die(&path, &json);
        eprintln!("observability: wrote metrics to {path}");
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// Experiment id → runner, in presentation order (shared by `all` and
/// `list`).
const KNOWN: &[(&str, fn(&RunCfg))] = &[
    ("table1", run_table1),
    ("table2", run_table2),
    ("blocking", run_blocking),
    ("mixed", run_mixed),
    ("table3", run_table3),
    ("table4", run_table4),
    ("table5", run_table5),
    ("table6", run_table6),
    ("locality", run_locality),
    ("speedup", run_speedup),
    ("compare", run_compare),
    ("structures", run_structures),
    ("distribution", run_distribution),
    ("overshoot", run_overshoot),
    ("contention", run_contention),
    ("faults", run_faults_known),
    ("serve", run_serve_known),
    ("chaos", run_chaos_known),
    ("memory", run_memory_known),
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--quality-check") {
        args.remove(i);
        run_quality_check();
    }
    let trace_out = take_flag(&mut args, "--trace-out");
    let metrics_out = take_flag(&mut args, "--metrics-out");
    let engine_name = take_flag(&mut args, "--engine");
    let circuit_name = take_flag(&mut args, "--circuit");
    let engine_procs = take_flag(&mut args, "--procs").map(|p| {
        p.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--procs expects a number, got {p:?}");
            std::process::exit(2);
        })
    });
    let threads = take_flag(&mut args, "--threads").map(|t| {
        t.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("--threads expects a number, got {t:?}");
            std::process::exit(2);
        })
    });
    let out_path = take_flag(&mut args, "--out").unwrap_or_else(|| "BENCH_sweeps.json".to_string());
    let report_out = take_flag(&mut args, "--report");
    let memory_backend =
        take_flag(&mut args, "--memory").or_else(|| take_flag(&mut args, "--protocol"));
    let quick = take_switch(&mut args, "--quick");
    if let Some(bad) = args.iter().find(|a| a.starts_with("--")) {
        eprintln!(
            "unknown flag {bad}; expected --quick, --threads N, --engine NAME, --circuit NAME, \
             --procs N, --out FILE, --report FILE, --memory BACKEND, --trace-out FILE or \
             --metrics-out FILE"
        );
        std::process::exit(2);
    }
    let harness = match threads {
        Some(n) => Harness::with_threads(n),
        None => Harness::auto(),
    };
    let cfg = RunCfg { harness, quick, memory_backend };

    if circuit_name.is_some()
        && (engine_name.is_none() || args.first().map(String::as_str) == Some("analyze"))
    {
        eprintln!("--circuit only applies to --engine runs");
        std::process::exit(2);
    }

    if args.first().map(String::as_str) == Some("analyze") {
        let name = engine_name.as_deref().unwrap_or("shmem-threads");
        run_analyze(&cfg, name, engine_procs, report_out);
        return;
    }

    if let Some(name) = engine_name {
        run_engine(&cfg, &name, engine_procs, circuit_name);
        return;
    }

    let arg = args.first().cloned().unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "list" => run_list(),
        "faults" => run_faults(&cfg, report_out),
        "serve" => {
            let path = report_out.unwrap_or_else(|| "BENCH_service.json".to_string());
            run_serve(&cfg, Some(path));
        }
        "chaos" => {
            let path = report_out.unwrap_or_else(|| "BENCH_resilience.json".to_string());
            run_chaos(&cfg, Some(path));
        }
        "memory" => {
            let path = report_out.unwrap_or_else(|| "BENCH_memory.json".to_string());
            run_memory(&cfg, Some(path));
        }
        "sweeps" => run_sweeps(&cfg, &out_path),
        "figure1" => print!("{}", figure1()),
        "figure2" => print!("{}", figure2(4)),
        "figure3" => print!("{}", figure3()),
        "all" => {
            for (name, f) in KNOWN {
                println!("==== {name} ====");
                f(&cfg);
            }
            print!("{}", figure1());
            print!("{}", figure2(4));
            print!("{}", figure3());
        }
        other => match KNOWN.iter().find(|(n, _)| *n == other) {
            Some((_, f)) => f(&cfg),
            None => {
                eprintln!(
                    "unknown experiment {other:?}; expected one of table1..table6, blocking, \
                     mixed, locality, speedup, compare, structures, overshoot, contention, \
                     faults, serve, chaos, memory, figure1..figure3, list, sweeps, analyze, all"
                );
                std::process::exit(2);
            }
        },
    }
    if trace_out.is_some() || metrics_out.is_some() {
        write_observability(trace_out, metrics_out);
    }
}
