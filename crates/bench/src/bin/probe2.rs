//! `probe2` — circuit-population sweep used to pick the synthetic bnrE
//! generator parameters (see DESIGN.md §5): for each candidate wire
//! population, print every shape metric the reproduction must hit.

use locus_circuit::{CircuitGenerator, GeneratorConfig};
use locus_coherence::traffic_by_line_size;
use locus_msgpass::{run_msgpass, MsgPassConfig, UpdateSchedule};
use locus_router::locality::locality_measure;
use locus_router::{assign, AssignmentStrategy, RegionMap, RouterParams, SequentialRouter};
use locus_shmem::{ShmemConfig, ShmemEmulator};

fn main() {
    let variants: Vec<(&str, GeneratorConfig)> = vec![
        ("s1", seeded(0x1989_0002)),
        ("s2", seeded(0x1989_0003)),
        ("s3", seeded(0x1989_0004)),
        ("s4", seeded(0x1989_0005)),
        ("s5", seeded(0x1989_0006)),
        ("s6", seeded(0x1989_0007)),
    ];
    for (name, cfg) in variants {
        let c = CircuitGenerator::new(cfg).generate();
        let seq = SequentialRouter::new(&c, RouterParams::default()).run();
        let regions = RegionMap::new(c.channels, c.grids, 16);
        let local = assign(&c, &regions, AssignmentStrategy::Locality { threshold_cost: None });
        let lm = locality_measure(&seq.routes, &local.proc_of_wire, &regions);

        let shm = ShmemEmulator::new(&c, ShmemConfig::new(16).with_trace()).run();
        let t8 = traffic_by_line_size(shm.trace.as_ref().unwrap(), &[4, 8, 32]);

        let r5 = run_msgpass(&c, MsgPassConfig::new(16, UpdateSchedule::receiver_initiated(1, 5)));
        let r30 =
            run_msgpass(&c, MsgPassConfig::new(16, UpdateSchedule::receiver_initiated(1, 30)));
        let never = run_msgpass(&c, MsgPassConfig::new(16, UpdateSchedule::never()));
        let snd = run_msgpass(&c, MsgPassConfig::new(16, UpdateSchedule::sender_initiated(2, 10)));
        let rr = run_msgpass(
            &c,
            MsgPassConfig::new(16, UpdateSchedule::sender_initiated(2, 10))
                .with_assignment(AssignmentStrategy::RoundRobin),
        );
        let t30 = run_msgpass(
            &c,
            MsgPassConfig::new(16, UpdateSchedule::sender_initiated(2, 10))
                .with_assignment(AssignmentStrategy::Locality { threshold_cost: Some(30) }),
        );

        println!(
            "{name}: seq={} shm={} snd={} r5={} r30={} nvr={} rr={} t30={} | loc={:.2} | rr_t={:.2} t30_t={:.2} inf_t={:.2} | shm4/8/32={:.2}/{:.2}/{:.2} sndMB={:.3} r5MB={:.3} snd_t={:.2} r5_t={:.2}",
            seq.quality.circuit_height,
            shm.quality.circuit_height,
            snd.quality.circuit_height,
            r5.quality.circuit_height,
            r30.quality.circuit_height,
            never.quality.circuit_height,
            rr.quality.circuit_height,
            t30.quality.circuit_height,
            lm.mean_hops,
            rr.time_secs,
            t30.time_secs,
            snd.time_secs,
            t8[0].1.mbytes(),
            t8[1].1.mbytes(),
            t8[2].1.mbytes(),
            snd.mbytes,
            r5.mbytes,
            snd.time_secs,
            r5.time_secs,
        );
    }
}

fn base(short_fraction: f64, long_max: f64, span: f64) -> GeneratorConfig {
    let mut cfg = GeneratorConfig::for_surface("variant", 10, 341, 420, 0x1989_0001);
    cfg.short_fraction = short_fraction;
    cfg.long_max_fraction = long_max;
    cfg.mean_channel_span = span;
    cfg
}

fn seeded(seed: u64) -> GeneratorConfig {
    let mut cfg = base(0.62, 0.75, 2.5);
    cfg.seed = seed;
    cfg
}
