//! The routing-as-a-service study: offered load × backpressure policy.
//!
//! Sweeps the [`locus_service`] job server from underload to past
//! saturation on the rush-hour workload, reusing one execution set per
//! load across all three backpressure policies (the arrival trace and
//! the routed jobs are policy-independent; only admission differs).
//! Every quantity reported is virtual-time, so the study — and the
//! `BENCH_service.json` report built from it — is byte-identical across
//! runs, hosts, and pool sizes.

use locus_service::{
    generate, Backpressure, EngineRunner, JobOutcome, JobServer, ServiceConfig, ServiceOutcome,
    WorkerPool, WorkloadConfig,
};
use locusroute::engines::build_engine;

/// Trace seed of the service study.
pub const SERVICE_SEED: u64 = 0x1989_000C;

/// Queue-wait SLO (virtual ms): a job should start routing within this
/// long of arriving. Attainment is measured against *submitted* jobs, so
/// shed and rejected work counts against the SLO.
pub const SERVICE_SLO_WAIT_MS: u64 = 2_000;

/// Mean inter-arrival gap (virtual ms) at `load = 1.0`, off-peak.
///
/// Calibrated against the rush-hour mix under the default cost model
/// (weighted mean service ≈ 1.5 virtual s per job): with the full
/// study's 4 workers, `load = 1.0` puts off-peak utilization near 0.7
/// and the ×2.5–3 rush windows briefly at saturation.
pub const SERVICE_MEAN_INTERARRIVAL_MS: f64 = 550.0;

/// Offered-load multipliers of the full study: underload (0.25×) to
/// well past saturation (4×).
pub const SERVICE_LOADS: &[f64] = &[0.25, 0.5, 1.0, 2.0, 4.0];

/// The reduced sweep for `--quick` runs and CI smoke tests; 6× is past
/// saturation even off-peak.
pub const SERVICE_LOADS_QUICK: &[f64] = &[0.5, 2.0, 6.0];

/// The three policies every load level is replayed under.
pub const SERVICE_POLICIES: [Backpressure; 3] =
    [Backpressure::Block, Backpressure::ShedOldest, Backpressure::Reject];

/// One `(load, policy)` cell of the study.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceRow {
    /// Offered-load multiplier.
    pub load: f64,
    /// Backpressure policy name.
    pub policy: &'static str,
    /// Jobs in the arrival trace.
    pub submitted: u64,
    /// Jobs served to completion.
    pub completed: u64,
    /// Jobs dropped by shed-oldest.
    pub shed: u64,
    /// Jobs turned away by reject.
    pub rejected: u64,
    /// Jobs whose runner errored.
    pub failed: u64,
    /// Queueing-delay quantiles (virtual ms).
    pub p50_wait_ms: u64,
    /// 95th-percentile queueing delay.
    pub p95_wait_ms: u64,
    /// 99th-percentile queueing delay.
    pub p99_wait_ms: u64,
    /// Service-latency quantiles (virtual ms).
    pub p50_service_ms: u64,
    /// 95th-percentile service latency.
    pub p95_service_ms: u64,
    /// 99th-percentile service latency.
    pub p99_service_ms: u64,
    /// Completed jobs per virtual second.
    pub throughput_jps: f64,
    /// Busy worker·ms over offered worker·ms.
    pub utilization: f64,
    /// Fraction of *submitted* jobs completed with queue wait within
    /// [`SERVICE_SLO_WAIT_MS`].
    pub slo_ok: f64,
}

impl ServiceRow {
    fn from_outcome(load: f64, policy: Backpressure, out: &ServiceOutcome) -> Self {
        let within_slo = out
            .records
            .iter()
            .filter(|r| {
                matches!(r.outcome, JobOutcome::Completed { .. })
                    && r.queue_wait_ms().unwrap_or(u64::MAX) <= SERVICE_SLO_WAIT_MS
            })
            .count() as f64;
        let submitted = out.stats.submitted;
        ServiceRow {
            load,
            policy: policy.name(),
            submitted,
            completed: out.stats.completed,
            shed: out.stats.shed,
            rejected: out.stats.rejected,
            failed: out.stats.failed,
            p50_wait_ms: out.queue_wait.quantile(0.50),
            p95_wait_ms: out.queue_wait.quantile(0.95),
            p99_wait_ms: out.queue_wait.quantile(0.99),
            p50_service_ms: out.service.quantile(0.50),
            p95_service_ms: out.service.quantile(0.95),
            p99_service_ms: out.service.quantile(0.99),
            throughput_jps: out.throughput_jps,
            utilization: out.utilization,
            slo_ok: if submitted == 0 { 1.0 } else { within_slo / submitted as f64 },
        }
    }
}

/// The full study: every `(load, policy)` row plus the detected knee.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceStudy {
    /// Rows in `(load, policy)` order (policies inner).
    pub rows: Vec<ServiceRow>,
    /// First swept load whose block-policy p95 queue wait blows through
    /// the SLO — where the latency curve bends. `None` if no swept load
    /// saturates.
    pub knee_load: Option<f64>,
    /// Simulated worker count.
    pub workers: usize,
    /// Admission-queue bound.
    pub queue_capacity: usize,
    /// Trace length (virtual ms).
    pub duration_ms: u64,
}

/// Server shape of the study: `(workers, queue_capacity, duration_ms)`.
fn shape(quick: bool) -> (usize, usize, u64) {
    if quick {
        (4, 4, 12_000)
    } else {
        (4, 8, 86_400)
    }
}

/// Runs the offered-load sweep. One execution pass per load level (on
/// `pool`, with the registry-backed [`EngineRunner`]), three policy
/// replays per pass.
pub fn service_study(pool: &WorkerPool, quick: bool) -> ServiceStudy {
    let (workers, queue_capacity, duration_ms) = shape(quick);
    let loads = if quick { SERVICE_LOADS_QUICK } else { SERVICE_LOADS };
    let runner = EngineRunner::new(build_engine);

    let mut rows = Vec::with_capacity(loads.len() * SERVICE_POLICIES.len());
    for &load in loads {
        let mut wl =
            WorkloadConfig::rush_hour(SERVICE_SEED, duration_ms, SERVICE_MEAN_INTERARRIVAL_MS);
        wl.load = load;
        let jobs = generate(&wl);
        let executions = pool.map(jobs.clone(), |job| {
            use locus_service::JobRunner;
            runner.run(&job)
        });
        for policy in SERVICE_POLICIES {
            let server = JobServer::new(ServiceConfig::new(workers, queue_capacity, policy));
            let out = server.simulate(&jobs, &executions, None);
            rows.push(ServiceRow::from_outcome(load, policy, &out));
        }
    }

    let knee_load = rows
        .iter()
        .find(|r| r.policy == "block" && r.p95_wait_ms > SERVICE_SLO_WAIT_MS)
        .map(|r| r.load);
    ServiceStudy { rows, knee_load, workers, queue_capacity, duration_ms }
}

/// Machine-readable JSON for the study (`serve` → `BENCH_service.json`).
/// Pure virtual-time content: byte-identical for a given configuration.
pub fn service_report_json(study: &ServiceStudy, quick: bool) -> String {
    let mut out = String::with_capacity(512 + study.rows.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"service\",\n");
    out.push_str(
        "  \"description\": \"Routing-as-a-service offered-load sweep: seeded rush-hour \
         arrival traces replayed through the bounded-queue job server under each backpressure \
         policy. All times are virtual ms, so this file is byte-identical across runs and \
         hosts. Regenerate with: cargo run --release -p locus-bench --bin locus-experiments \
         serve.\",\n",
    );
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"seed\": {},\n", SERVICE_SEED));
    out.push_str(&format!("  \"workers\": {},\n", study.workers));
    out.push_str(&format!("  \"queue_capacity\": {},\n", study.queue_capacity));
    out.push_str(&format!("  \"duration_ms\": {},\n", study.duration_ms));
    out.push_str(&format!("  \"mean_interarrival_ms\": {},\n", SERVICE_MEAN_INTERARRIVAL_MS));
    out.push_str(&format!("  \"slo_wait_ms\": {},\n", SERVICE_SLO_WAIT_MS));
    match study.knee_load {
        Some(k) => out.push_str(&format!("  \"knee_load\": {k},\n")),
        None => out.push_str("  \"knee_load\": null,\n"),
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in study.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"load\": {}, \"policy\": \"{}\", \"submitted\": {}, \"completed\": {}, \
             \"shed\": {}, \"rejected\": {}, \"failed\": {}, \
             \"p50_wait_ms\": {}, \"p95_wait_ms\": {}, \"p99_wait_ms\": {}, \
             \"p50_service_ms\": {}, \"p95_service_ms\": {}, \"p99_service_ms\": {}, \
             \"throughput_jps\": {:.6}, \"utilization\": {:.6}, \"slo_ok\": {:.6}}}{}\n",
            r.load,
            r.policy,
            r.submitted,
            r.completed,
            r.shed,
            r.rejected,
            r.failed,
            r.p50_wait_ms,
            r.p95_wait_ms,
            r.p99_wait_ms,
            r.p50_service_ms,
            r.p95_service_ms,
            r.p99_service_ms,
            r.throughput_jps,
            r.utilization,
            r.slo_ok,
            if i + 1 < study.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_covers_underload_and_saturation() {
        let study = service_study(&WorkerPool::serial(), true);
        assert_eq!(study.rows.len(), SERVICE_LOADS_QUICK.len() * 3);

        // Underload: the block row at the lightest load completes
        // everything within the SLO.
        let light = &study.rows[0];
        assert_eq!(light.policy, "block");
        assert_eq!(light.completed + light.failed, light.submitted);
        assert!(light.slo_ok > 0.9, "underload SLO attainment {:.3}", light.slo_ok);

        // Past saturation: the bounded policies lose work, the blocking
        // policy pays in queueing delay instead.
        let heavy = &study.rows[study.rows.len() - 3..];
        assert_eq!(heavy[0].policy, "block");
        assert_eq!(heavy[0].shed + heavy[0].rejected, 0);
        assert!(heavy[0].p95_wait_ms > heavy[0].p50_service_ms, "overload must queue");
        assert!(heavy[1].shed > 0, "shed-oldest must drop work past saturation: {heavy:?}");
        assert!(heavy[2].rejected > 0, "reject must turn work away past saturation: {heavy:?}");
        assert!(study.knee_load.is_some(), "the quick sweep crosses the knee");
    }

    #[test]
    fn report_is_byte_identical_and_valid_json() {
        let a = service_study(&WorkerPool::serial(), true);
        let b = service_study(&WorkerPool::with_threads(4), true);
        let ja = service_report_json(&a, true);
        let jb = service_report_json(&b, true);
        assert_eq!(ja, jb, "virtual-time report must not depend on the pool");
        locus_obs::export::validate_json(&ja).expect("report is valid JSON");
    }
}
