//! One function per experiment id (see `DESIGN.md` §3).
//!
//! Every function is deterministic and parameterized on the circuit and
//! processor count so the Criterion benches can run reduced "quick"
//! configurations while the CLI reproduces the full paper settings.
//!
//! Sweep-style experiments additionally take a [`Harness`]: independent
//! sweep points run concurrently on its scoped-thread pool, and because
//! every swept engine is deterministic the rows are identical whichever
//! harness executes them (`Harness::serial()` vs `Harness::auto()`).

use crate::sweep::Harness;
use locus_circuit::Circuit;
use locus_coherence::{
    memory_registry, traffic_by_backend, traffic_by_line_size, MemoryConfig, MemoryModelEntry,
    MemoryOutcome, Trace,
};
use locus_msgpass::{
    run_msgpass, run_msgpass_observed, MsgPassConfig, MsgPassOutcome, PacketStructure,
    UpdateSchedule,
};
use locus_obs::{Event, MetricsSnapshot, SharedSink};
use locus_router::engine::EngineCtx;
use locus_router::locality::locality_measure;
use locus_router::{assign, AssignmentStrategy, RegionMap, RouterParams, SequentialRouter};
use locus_shmem::{ShmemConfig, ShmemEmulator, ThreadedRouter};
use locusroute::engines::build_engine;

/// The paper's default message-passing machine size.
pub const PAPER_PROCS: usize = 16;

/// The sender-initiated schedule the paper's Tables 4 and 6 use
/// (`SendRmtData = 2`, `SendLocData = 10` — the Table 1 row whose traffic
/// and time the other tables repeat).
pub fn table46_schedule() -> UpdateSchedule {
    UpdateSchedule::sender_initiated(2, 10)
}

/// A row of an update-frequency sweep (Tables 1 and 2).
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateSweepRow {
    /// First swept parameter (Table 1: SendRmtData; Table 2: ReqLocData).
    pub a: u32,
    /// Second swept parameter (Table 1: SendLocData; Table 2: ReqRmtData).
    pub b: u32,
    /// Circuit height.
    pub ckt_ht: u64,
    /// Occupancy factor.
    pub occupancy: u64,
    /// Payload megabytes transferred.
    pub mbytes: f64,
    /// Simulated execution time in seconds.
    pub time_s: f64,
}

impl UpdateSweepRow {
    fn from_outcome(a: u32, b: u32, out: &locus_msgpass::MsgPassOutcome) -> Self {
        UpdateSweepRow {
            a,
            b,
            ckt_ht: out.quality.circuit_height,
            occupancy: out.quality.occupancy_factor,
            mbytes: out.mbytes,
            time_s: out.time_secs,
        }
    }
}

/// **Table 1** — network traffic and quality using sender-initiated
/// updates: sweep `SendRmtData ∈ {2,5,10}` × `SendLocData ∈ {1,5,10,20}`.
pub fn table1(harness: &Harness, circuit: &Circuit, n_procs: usize) -> Vec<UpdateSweepRow> {
    let points: Vec<(u32, u32)> =
        [2u32, 5, 10].iter().flat_map(|&rmt| [1u32, 5, 10, 20].map(|loc| (rmt, loc))).collect();
    harness.map(points, |(rmt, loc)| {
        let cfg = MsgPassConfig::new(n_procs, UpdateSchedule::sender_initiated(rmt, loc));
        let out = run_msgpass(circuit, cfg);
        assert!(!out.deadlocked, "table1 run ({rmt},{loc}) deadlocked");
        UpdateSweepRow::from_outcome(rmt, loc, &out)
    })
}

/// **Table 2** — non-blocking receiver-initiated updates: sweep
/// `ReqLocData ∈ {1,2,10}` × `ReqRmtData ∈ {5,10,30}`.
pub fn table2(harness: &Harness, circuit: &Circuit, n_procs: usize) -> Vec<UpdateSweepRow> {
    let points: Vec<(u32, u32)> =
        [1u32, 2, 10].iter().flat_map(|&loc| [5u32, 10, 30].map(|rmt| (loc, rmt))).collect();
    harness.map(points, |(loc, rmt)| {
        let cfg = MsgPassConfig::new(n_procs, UpdateSchedule::receiver_initiated(loc, rmt));
        let out = run_msgpass(circuit, cfg);
        assert!(!out.deadlocked, "table2 run ({loc},{rmt}) deadlocked");
        UpdateSweepRow::from_outcome(loc, rmt, &out)
    })
}

/// A blocking-vs-non-blocking comparison row (§5.1.3).
#[derive(Clone, Debug, PartialEq)]
pub struct BlockingRow {
    /// `(ReqLocData, ReqRmtData)` schedule.
    pub schedule: (u32, u32),
    /// Circuit height: non-blocking.
    pub ht_nonblocking: u64,
    /// Circuit height: blocking.
    pub ht_blocking: u64,
    /// Time (s): non-blocking.
    pub time_nonblocking: f64,
    /// Time (s): blocking.
    pub time_blocking: f64,
}

/// **§5.1.3 (blocking)** — blocking vs non-blocking receiver-initiated
/// strategies on the same update schedules: quality about equal, blocking
/// execution time up to ~75% larger.
pub fn blocking_study(harness: &Harness, circuit: &Circuit, n_procs: usize) -> Vec<BlockingRow> {
    harness.map(vec![(1u32, 5u32), (2, 10), (10, 30)], |(loc, rmt)| {
        let nb = run_msgpass(
            circuit,
            MsgPassConfig::new(n_procs, UpdateSchedule::receiver_initiated(loc, rmt)),
        );
        let bl = run_msgpass(
            circuit,
            MsgPassConfig::new(n_procs, UpdateSchedule::receiver_initiated_blocking(loc, rmt)),
        );
        assert!(!nb.deadlocked && !bl.deadlocked);
        BlockingRow {
            schedule: (loc, rmt),
            ht_nonblocking: nb.quality.circuit_height,
            ht_blocking: bl.quality.circuit_height,
            time_nonblocking: nb.time_secs,
            time_blocking: bl.time_secs,
        }
    })
}

/// A mixed-schedule comparison row (§5.1.3).
#[derive(Clone, Debug, PartialEq)]
pub struct MixedRow {
    /// Strategy label.
    pub label: String,
    /// Circuit height.
    pub ckt_ht: u64,
    /// Occupancy factor.
    pub occupancy: u64,
    /// Megabytes transferred.
    pub mbytes: f64,
    /// Execution time (s).
    pub time_s: f64,
}

/// **§5.1.3 (mixed)** — the paper's mixed schedule
/// (`SendLocData=5, SendRmtData=2, ReqLocData=1, ReqRmtData=5`) against
/// pure sender- and pure receiver-initiated schedules: mixed should beat
/// both on occupancy factor using roughly half the sender traffic.
pub fn mixed_study(harness: &Harness, circuit: &Circuit, n_procs: usize) -> Vec<MixedRow> {
    let cases: Vec<(&str, UpdateSchedule)> = vec![
        ("sender (2,5)", UpdateSchedule::sender_initiated(2, 5)),
        ("receiver (1,5)", UpdateSchedule::receiver_initiated(1, 5)),
        ("mixed (5,2,1,5)", UpdateSchedule::mixed_paper()),
    ];
    harness.map(cases, |(label, schedule)| {
        let out = run_msgpass(circuit, MsgPassConfig::new(n_procs, schedule));
        assert!(!out.deadlocked);
        MixedRow {
            label: label.to_string(),
            ckt_ht: out.quality.circuit_height,
            occupancy: out.quality.occupancy_factor,
            mbytes: out.mbytes,
            time_s: out.time_secs,
        }
    })
}

/// A Table 3 row: coherence traffic at one cache line size.
#[derive(Clone, Debug, PartialEq)]
pub struct LineSizeRow {
    /// Cache line size in bytes.
    pub line_size: u32,
    /// Megabytes transferred on the bus.
    pub mbytes: f64,
    /// Fraction of bytes caused by writes (§5.2 reports >0.8).
    pub write_fraction: f64,
    /// Invalidations performed.
    pub invalidations: u64,
}

/// Collects the shared-memory reference trace the coherence analyses use.
pub fn shared_memory_trace(circuit: &Circuit, n_procs: usize) -> Trace {
    let out = ShmemEmulator::new(circuit, ShmemConfig::new(n_procs).with_trace()).run();
    out.trace.expect("trace collection enabled")
}

/// **Table 3** — shared-memory bus traffic as a function of cache line
/// size under Write-Back-with-Invalidate with infinite caches. One
/// traced emulator run; the per-line-size coherence replays are the
/// sweep points.
pub fn table3(
    harness: &Harness,
    circuit: &Circuit,
    n_procs: usize,
    line_sizes: &[u32],
) -> Vec<LineSizeRow> {
    let trace = shared_memory_trace(circuit, n_procs);
    harness.map(line_sizes.to_vec(), |line_size| {
        let stats = traffic_by_line_size(&trace, &[line_size]).remove(0).1;
        LineSizeRow {
            line_size,
            mbytes: stats.mbytes(),
            write_fraction: stats.write_fraction(),
            invalidations: stats.invalidations,
        }
    })
}

/// **Table 3 generalized** — the same line-size sweep replayed through
/// one registered memory backend ([`traffic_by_backend`]). With
/// `backend = "bus-wbi"` the rows are byte-identical to [`table3`];
/// `"bus-wt"` is the write-through ablation the CLI's `--memory` flag
/// exposes.
pub fn table3_backend(
    circuit: &Circuit,
    n_procs: usize,
    line_sizes: &[u32],
    backend: &str,
) -> Result<Vec<LineSizeRow>, String> {
    let trace = shared_memory_trace(circuit, n_procs);
    let rows = traffic_by_backend(backend, &trace, line_sizes)?;
    Ok(rows
        .into_iter()
        .map(|(line_size, out)| LineSizeRow {
            line_size,
            mbytes: out.stats.mbytes(),
            write_fraction: out.stats.write_fraction(),
            invalidations: out.stats.invalidations,
        })
        .collect())
}

/// A row of the memory-system backend study: one registered backend
/// replaying one circuit's shared-memory trace.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryRow {
    /// Circuit name.
    pub circuit: String,
    /// Registered backend name (`bus-wbi`, `bus-wt`, `directory`, `dls`).
    pub backend: &'static str,
    /// Megabytes of protocol data traffic.
    pub mbytes: f64,
    /// Fraction of bytes caused by writes.
    pub write_fraction: f64,
    /// Invalidations + refetches (0 for `dls`).
    pub coherence_events: u64,
    /// Megabytes of invalidation transport (bus rows price a broadcast,
    /// directory rows unicast point-to-point, `dls` sends none).
    pub inval_mbytes: f64,
    /// Total queueing wait under FIFO service, all requests (ns).
    pub fifo_wait_ns: u64,
    /// Mean wait of critical (rip-up/commit) requests under FIFO (ns).
    pub fifo_critical_mean_ns: f64,
    /// Mean wait of critical requests under critical-first service (ns).
    pub prio_critical_mean_ns: f64,
    /// Total critical wait removed by critical-first service (ns).
    pub critical_wait_saved_ns: u64,
}

fn memory_row(circuit: String, out: &MemoryOutcome) -> MemoryRow {
    MemoryRow {
        circuit,
        backend: out.backend,
        mbytes: out.stats.mbytes(),
        write_fraction: out.stats.write_fraction(),
        coherence_events: out.coherence_events(),
        inval_mbytes: out.invalidation_traffic_bytes as f64 / 1.0e6,
        fifo_wait_ns: out.fifo.all().total_wait_ns,
        fifo_critical_mean_ns: out.fifo.critical.mean_wait_ns(),
        prio_critical_mean_ns: out.critical_first.critical.mean_wait_ns(),
        critical_wait_saved_ns: out.critical_wait_saved_ns(),
    }
}

/// The cache line size the memory study prices every backend at (the
/// paper's Table 3 headline point).
pub const MEMORY_STUDY_LINE_SIZE: u32 = 8;

/// **Memory-system study** — every backend in [`memory_registry`] replays
/// the *same* shared-memory reference trace per circuit (one traced
/// emulator run each, so all backends see byte-identical input) priced
/// over the same mesh machine. Reports protocol data traffic,
/// invalidation transport (broadcast vs point-to-point vs none), and
/// FIFO vs criticality-aware queueing of the rip-up/commit requests.
pub fn memory_study(
    harness: &Harness,
    circuits: &[&Circuit],
    n_procs: usize,
    line_size: u32,
) -> Vec<MemoryRow> {
    let mut rows = Vec::new();
    for &circuit in circuits {
        let trace = shared_memory_trace(circuit, n_procs);
        let entries: Vec<&'static MemoryModelEntry> = memory_registry().iter().collect();
        rows.extend(harness.map(entries, |entry| {
            let model = (entry.build)(MemoryConfig::paper(n_procs as u32, line_size));
            memory_row(circuit.name.clone(), &model.run(&trace))
        }));
    }
    rows
}

/// Machine-readable JSON for the memory study (`memory --report`,
/// committed as `BENCH_memory.json`).
pub fn memory_report_json(rows: &[MemoryRow], procs: usize, line_size: u32) -> String {
    let mut out = String::with_capacity(512 + rows.len() * 256);
    out.push_str("{\n");
    out.push_str(
        "  \"description\": \"Every registered memory-system backend replaying the same \
         shared-memory reference trace per circuit (infinite caches, so all traffic is \
         coherence traffic). mbytes is protocol data traffic; inval_mbytes prices the \
         invalidation transport (bus rows broadcast, directory rows unicast, dls none). \
         The *_wait columns resolve the identical request log through FIFO and \
         critical-first service: critical requests are the router's rip-up/commit stores. \
         Regenerate with: cargo run --release -p locus-bench --bin locus-experiments memory\",\n",
    );
    out.push_str(&format!("  \"procs\": {procs},\n"));
    out.push_str(&format!("  \"line_size\": {line_size},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"circuit\": \"{}\", \"backend\": \"{}\", \"mbytes\": {:.6}, \
             \"write_fraction\": {:.4}, \"coherence_events\": {}, \"inval_mbytes\": {:.6}, \
             \"fifo_wait_ns\": {}, \"fifo_critical_mean_ns\": {:.1}, \
             \"prio_critical_mean_ns\": {:.1}, \"critical_wait_saved_ns\": {}}}{}\n",
            r.circuit,
            r.backend,
            r.mbytes,
            r.write_fraction,
            r.coherence_events,
            r.inval_mbytes,
            r.fifo_wait_ns,
            r.fifo_critical_mean_ns,
            r.prio_critical_mean_ns,
            r.critical_wait_saved_ns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A Table 4 row: message-passing locality sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Table4Row {
    /// Circuit name.
    pub circuit: String,
    /// Assignment method label (paper wording).
    pub method: String,
    /// Circuit height.
    pub ckt_ht: u64,
    /// Megabytes transferred (sender-initiated schedule).
    pub mbytes: f64,
    /// Execution time (s).
    pub time_s: f64,
    /// Megabytes transferred under the receiver-initiated schedule
    /// (§5.3.1's −63% observation concerns this strategy).
    pub mbytes_receiver: f64,
}

/// **Table 4** — effect of the wire-assignment strategy on the
/// message-passing implementation (both circuits, sender-initiated
/// schedule, plus receiver-initiated traffic for the −63% comparison).
pub fn table4(harness: &Harness, circuits: &[&Circuit], n_procs: usize) -> Vec<Table4Row> {
    let points: Vec<(&Circuit, &str, AssignmentStrategy)> = circuits
        .iter()
        .flat_map(|&c| AssignmentStrategy::table45_rows().into_iter().map(move |(m, s)| (c, m, s)))
        .collect();
    harness.map(points, |(circuit, method, strategy)| {
        let sender = run_msgpass(
            circuit,
            MsgPassConfig::new(n_procs, table46_schedule()).with_assignment(strategy),
        );
        let receiver = run_msgpass(
            circuit,
            MsgPassConfig::new(n_procs, UpdateSchedule::receiver_initiated(1, 5))
                .with_assignment(strategy),
        );
        assert!(!sender.deadlocked && !receiver.deadlocked);
        Table4Row {
            circuit: circuit.name.clone(),
            method: method.to_string(),
            ckt_ht: sender.quality.circuit_height,
            mbytes: sender.mbytes,
            time_s: sender.time_secs,
            mbytes_receiver: receiver.mbytes,
        }
    })
}

/// A Table 5 row: shared-memory locality sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Table5Row {
    /// Circuit name.
    pub circuit: String,
    /// Assignment method label.
    pub method: String,
    /// Circuit height.
    pub ckt_ht: u64,
    /// Megabytes of bus traffic at 8-byte cache lines.
    pub mbytes: f64,
}

/// **Table 5** — effect of the wire-assignment strategy on the
/// shared-memory implementation (8-byte cache lines).
pub fn table5(harness: &Harness, circuits: &[&Circuit], n_procs: usize) -> Vec<Table5Row> {
    let points: Vec<(&Circuit, &str, AssignmentStrategy)> = circuits
        .iter()
        .flat_map(|&c| AssignmentStrategy::table45_rows().into_iter().map(move |(m, s)| (c, m, s)))
        .collect();
    harness.map(points, |(circuit, method, strategy)| {
        let cfg = ShmemConfig::new(n_procs).with_trace().with_static_assignment(strategy);
        let out = ShmemEmulator::new(circuit, cfg).run();
        let trace = out.trace.expect("trace enabled");
        let stats = traffic_by_line_size(&trace, &[8]).remove(0).1;
        Table5Row {
            circuit: circuit.name.clone(),
            method: method.to_string(),
            ckt_ht: out.quality.circuit_height,
            mbytes: stats.mbytes(),
        }
    })
}

/// A Table 6 row: processor-count scaling.
#[derive(Clone, Debug, PartialEq)]
pub struct Table6Row {
    /// Processor count.
    pub procs: usize,
    /// Circuit height.
    pub ckt_ht: u64,
    /// Occupancy factor.
    pub occupancy: u64,
    /// Megabytes transferred.
    pub mbytes: f64,
    /// Execution time (s).
    pub time_s: f64,
    /// Speedup, computed as the paper does: relative to the two-processor
    /// run, multiplied by two.
    pub speedup: f64,
}

/// **Table 6** — effect of the number of processors (sender-initiated
/// schedule); quality degrades, time scales, traffic peaks then falls.
pub fn table6(harness: &Harness, circuit: &Circuit, procs: &[usize]) -> Vec<Table6Row> {
    let outcomes: Vec<(usize, locus_msgpass::MsgPassOutcome)> = harness.map(procs.to_vec(), |p| {
        let out = run_msgpass(circuit, MsgPassConfig::new(p, table46_schedule()));
        assert!(!out.deadlocked, "table6 run P={p} deadlocked");
        (p, out)
    });
    let t2 = outcomes
        .iter()
        .find(|(p, _)| *p == 2)
        .map(|(_, o)| o.time_secs)
        .unwrap_or_else(|| outcomes[0].1.time_secs);
    outcomes
        .into_iter()
        .map(|(p, out)| Table6Row {
            procs: p,
            ckt_ht: out.quality.circuit_height,
            occupancy: out.quality.occupancy_factor,
            mbytes: out.mbytes,
            time_s: out.time_secs,
            speedup: t2 / out.time_secs * 2.0,
        })
        .collect()
}

/// A locality-measure row (§5.3.3).
#[derive(Clone, Debug, PartialEq)]
pub struct LocalityRow {
    /// Circuit name.
    pub circuit: String,
    /// Assignment method label.
    pub method: String,
    /// Processor count.
    pub procs: usize,
    /// Mean hops between routing and owning processor (0 = perfect).
    pub mean_hops: f64,
    /// Fraction of route cells routed by their owner.
    pub owned_fraction: f64,
}

/// **§5.3.3** — the locality measure over assignment strategies and
/// processor counts (computed on the sequential routing solution, so the
/// measure reflects the circuit + assignment, not update noise).
pub fn locality_study(
    harness: &Harness,
    circuits: &[&Circuit],
    proc_counts: &[usize],
) -> Vec<LocalityRow> {
    let per_circuit = harness.map(circuits.to_vec(), |circuit| {
        let solution = SequentialRouter::new(circuit, RouterParams::default()).run();
        let mut rows = Vec::new();
        for &p in proc_counts {
            let regions = RegionMap::new(circuit.channels, circuit.grids, p);
            for (method, strategy) in [
                ("round robin", AssignmentStrategy::RoundRobin),
                ("ThresholdCost = inf.", AssignmentStrategy::Locality { threshold_cost: None }),
            ] {
                let a = assign(circuit, &regions, strategy);
                let lm = locality_measure(&solution.routes, &a.proc_of_wire, &regions);
                rows.push(LocalityRow {
                    circuit: circuit.name.clone(),
                    method: method.to_string(),
                    procs: p,
                    mean_hops: lm.mean_hops,
                    owned_fraction: lm.owned_fraction,
                });
            }
        }
        rows
    });
    per_circuit.into_iter().flatten().collect()
}

/// A speedup row (§5.4).
#[derive(Clone, Debug, PartialEq)]
pub struct SpeedupRow {
    /// Engine label ("message passing" or "threads").
    pub engine: String,
    /// Circuit name.
    pub circuit: String,
    /// Processor count.
    pub procs: usize,
    /// Time: simulated seconds (message passing) or wall seconds
    /// (threads).
    pub time_s: f64,
    /// Speedup relative to the 2-processor run × 2 (paper convention).
    pub speedup: f64,
}

/// **§5.4 (speedup)** — message-passing speedup on the simulator plus
/// real-thread wall-clock speedup of the shared-memory router.
pub fn speedup_study(
    harness: &Harness,
    circuits: &[&Circuit],
    proc_counts: &[usize],
) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for &circuit in circuits {
        // Message passing on the simulated mesh (simulated time, so the
        // points can run concurrently without distorting each other).
        let times: Vec<(usize, f64)> = harness.map(proc_counts.to_vec(), |p| {
            let out = run_msgpass(circuit, MsgPassConfig::new(p, table46_schedule()));
            (p, out.time_secs)
        });
        let t2 = times.iter().find(|(p, _)| *p == 2).map(|&(_, t)| t).unwrap_or(times[0].1);
        for &(p, t) in &times {
            rows.push(SpeedupRow {
                engine: "message passing".into(),
                circuit: circuit.name.clone(),
                procs: p,
                time_s: t,
                speedup: t2 / t * 2.0,
            });
        }
        // Real threads (wall clock; nondeterministic, reported as-is).
        // Deliberately serial: concurrent wall-clock runs would contend
        // for cores and distort each other's times.
        let wall: Vec<(usize, f64)> = proc_counts
            .iter()
            .filter(|&&p| p <= 16)
            .map(|&p| {
                let out = ThreadedRouter::new(circuit, ShmemConfig::new(p)).run();
                (p, out.wall.as_secs_f64())
            })
            .collect();
        let w2 = wall.iter().find(|(p, _)| *p == 2).map(|&(_, t)| t).unwrap_or(wall[0].1);
        for &(p, t) in &wall {
            rows.push(SpeedupRow {
                engine: "threads (wall)".into(),
                circuit: circuit.name.clone(),
                procs: p,
                time_s: t,
                speedup: w2 / t * 2.0,
            });
        }
    }
    rows
}

/// A paradigm-comparison row (§5.2).
#[derive(Clone, Debug, PartialEq)]
pub struct CompareRow {
    /// Approach label.
    pub approach: String,
    /// Circuit height.
    pub ckt_ht: u64,
    /// Megabytes transferred (bus traffic at 8-byte lines for shared
    /// memory; payload bytes for message passing).
    pub mbytes: f64,
}

/// The `(registry engine, display label)` pairs `compare_paradigms`
/// runs, in paper order.
pub const COMPARE_ENGINES: [(&str, &str); 3] = [
    ("shmem-emul", "shared memory (WBI, 8B lines)"),
    ("msgpass-sender", "message passing, sender initiated (2,10)"),
    ("msgpass-receiver", "message passing, receiver initiated (1,5)"),
];

/// **§5.2** — the headline comparison: shared memory (best quality, most
/// traffic) vs sender-initiated (≈10× less traffic) vs receiver-initiated
/// (≈10× less again). Driven entirely through the engine registry — one
/// traffic-measured run per registered paradigm.
pub fn compare_paradigms(harness: &Harness, circuit: &Circuit, n_procs: usize) -> Vec<CompareRow> {
    let ctx = EngineCtx::new(n_procs).with_traffic();
    harness.map(COMPARE_ENGINES.to_vec(), |(name, label)| {
        let engine = build_engine(name).expect("compare engines are registered");
        let run = engine.route(circuit, &RouterParams::default(), &ctx);
        CompareRow {
            approach: label.to_string(),
            ckt_ht: run.outcome.quality.circuit_height,
            mbytes: run.mbytes.expect("every compared engine measures traffic"),
        }
    })
}

/// An ablation row: one configuration variant of a design choice.
#[derive(Clone, Debug, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Circuit height.
    pub ckt_ht: u64,
    /// Megabytes transferred.
    pub mbytes: f64,
    /// Execution time (s).
    pub time_s: f64,
    /// Packets sent.
    pub packets: u64,
}

fn ablation_row(variant: &str, out: &locus_msgpass::MsgPassOutcome) -> AblationRow {
    AblationRow {
        variant: variant.to_string(),
        ckt_ht: out.quality.circuit_height,
        mbytes: out.mbytes,
        time_s: out.time_secs,
        packets: out.packets.total_packets(),
    }
}

/// **Ablation (§4.3.1)** — the three update-packet structures the paper
/// discusses: bounding box (chosen), full region, wire-based events.
pub fn structures_study(harness: &Harness, circuit: &Circuit, n_procs: usize) -> Vec<AblationRow> {
    let schedule = UpdateSchedule::sender_initiated(2, 10);
    let variants = vec![
        ("bounding box (paper's choice)", PacketStructure::BoundingBox),
        ("full region", PacketStructure::FullRegion),
        ("wire-based events", PacketStructure::WireBased),
    ];
    harness.map(variants, |(label, st)| {
        let out = run_msgpass(circuit, MsgPassConfig::new(n_procs, schedule).with_structure(st));
        assert!(!out.deadlocked, "structure {label} deadlocked");
        ablation_row(label, &out)
    })
}

/// **Ablation** — candidate channel overshoot: how far two-bend VHV
/// candidates may detour outside the pin bounding box (DESIGN.md §6).
pub fn overshoot_study(harness: &Harness, circuit: &Circuit, n_procs: usize) -> Vec<AblationRow> {
    harness.map(vec![0u16, 1, 2], |ov| {
        let cfg = MsgPassConfig::new(n_procs, table46_schedule())
            .with_params(RouterParams::default().with_channel_overshoot(ov));
        let out = run_msgpass(circuit, cfg);
        ablation_row(&format!("overshoot = {ov}"), &out)
    })
}

/// **Ablation** — network contention on vs off: how much of the
/// execution time the wormhole channel-blocking model accounts for
/// (evaluated on the chattiest sender schedule).
pub fn contention_study(harness: &Harness, circuit: &Circuit, n_procs: usize) -> Vec<AblationRow> {
    let cfg = MsgPassConfig::new(n_procs, UpdateSchedule::sender_initiated(2, 1));
    harness.map(vec![true, false], |modelled| {
        if modelled {
            ablation_row("contention modelled", &run_msgpass(circuit, cfg))
        } else {
            let out = locus_msgpass::run_msgpass_with_mesh(
                circuit,
                cfg,
                cfg.mesh_config().without_contention(),
            );
            ablation_row("contention disabled", &out)
        }
    })
}

/// **Ablation (§4.2)** — static vs dynamic wire distribution: the paper
/// rejected the dynamic scheme because wire requests are only served
/// between wires; this measures what that choice cost.
pub fn distribution_study(
    harness: &Harness,
    circuit: &Circuit,
    n_procs: usize,
) -> Vec<AblationRow> {
    let schedule = UpdateSchedule::sender_initiated(2, 10);
    harness.map(vec![false, true], |dynamic| {
        if dynamic {
            let out =
                run_msgpass(circuit, MsgPassConfig::new(n_procs, schedule).with_dynamic_wires());
            ablation_row("dynamic distribution (1 iter)", &out)
        } else {
            let params = RouterParams::default().with_iterations(1);
            let out =
                run_msgpass(circuit, MsgPassConfig::new(n_procs, schedule).with_params(params));
            ablation_row("static assignment (1 iter)", &out)
        }
    })
}

/// A row of the fault-resilience study.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRow {
    /// Update schedule label.
    pub schedule: &'static str,
    /// Uniform packet-loss rate in basis points (1000 = 10%).
    pub loss_bp: u32,
    /// Circuit height.
    pub ckt_ht: u64,
    /// Simulated execution time in seconds.
    pub time_s: f64,
    /// Payload megabytes transferred (including repair traffic).
    pub mbytes: f64,
    /// Packets the fault plan dropped.
    pub dropped: u64,
    /// Packets the reliability layer retransmitted.
    pub retransmits: u64,
    /// Cumulative acks sent.
    pub acks: u64,
    /// Mean absolute replica divergence at the end of the run.
    pub divergence: f64,
    /// Whether the run degraded (watchdog had to complete it).
    pub degraded: bool,
}

/// The schedules the resilience study sweeps: the paper's two headline
/// update strategies.
fn fault_study_schedules() -> [(&'static str, UpdateSchedule); 2] {
    [
        ("sender(2,10)", UpdateSchedule::sender_initiated(2, 10)),
        ("receiver(1,5)", UpdateSchedule::receiver_initiated(1, 5)),
    ]
}

/// **Resilience study** — uniform packet loss (0–20%) × update schedule
/// with the end-to-end reliability protocol enabled: how much repair
/// traffic, extra time, and replica staleness does an unreliable mesh
/// cost, and does solution quality survive? The `loss_bp = 0` rows run
/// the *unmodified* protocol (no reliability framing) and reproduce the
/// fault-free baseline exactly.
pub fn faults_study(
    harness: &Harness,
    circuit: &Circuit,
    n_procs: usize,
    losses_bp: &[u32],
) -> Vec<FaultRow> {
    use locus_mesh::FaultPlan;
    let points: Vec<(&'static str, UpdateSchedule, u32)> = fault_study_schedules()
        .into_iter()
        .flat_map(|(name, schedule)| losses_bp.iter().map(move |&bp| (name, schedule, bp)))
        .collect();
    harness.map(points, |(name, schedule, loss_bp)| {
        let mut cfg = MsgPassConfig::new(n_procs, schedule);
        if loss_bp > 0 {
            // Seed varies per point so rows are independent experiments;
            // both are fixed constants, so the table is reproducible.
            let seed = 0xFA_0175 + loss_bp as u64;
            cfg = cfg.with_faults(FaultPlan::uniform_loss(seed, loss_bp)).with_reliability();
        }
        let out = run_msgpass(circuit, cfg);
        assert!(!out.deadlocked, "faults run {name}@{loss_bp}bp must terminate cleanly");
        FaultRow {
            schedule: name,
            loss_bp,
            ckt_ht: out.quality.circuit_height,
            time_s: out.time_secs,
            mbytes: out.mbytes,
            dropped: out.net.packets_dropped,
            retransmits: out.reliability.retransmits,
            acks: out.reliability.acks_sent,
            divergence: out.replica_divergence,
            degraded: out.degraded.is_some(),
        }
    })
}

/// The loss sweep of the full resilience study: 0–20% uniform loss.
pub const FAULT_LOSSES_BP: &[u32] = &[0, 200, 500, 1000, 2000];

/// The reduced sweep for `--quick` runs and CI smoke tests.
pub const FAULT_LOSSES_BP_QUICK: &[u32] = &[0, 1000];

/// Machine-readable JSON for the resilience study (`faults --report`).
pub fn faults_report_json(rows: &[FaultRow], circuit: &str, procs: usize) -> String {
    let mut out = String::with_capacity(256 + rows.len() * 192);
    out.push_str("{\n");
    out.push_str(&format!("  \"circuit\": \"{circuit}\",\n"));
    out.push_str(&format!("  \"procs\": {procs},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"schedule\": \"{}\", \"loss_bp\": {}, \"ckt_ht\": {}, \
             \"time_s\": {:.6}, \"mbytes\": {:.6}, \"dropped\": {}, \
             \"retransmits\": {}, \"acks\": {}, \"divergence\": {:.6}, \
             \"degraded\": {}}}{}\n",
            r.schedule,
            r.loss_bp,
            r.ckt_ht,
            r.time_s,
            r.mbytes,
            r.dropped,
            r.retransmits,
            r.acks,
            r.divergence,
            r.degraded,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// **Figure 1** — a cost array with one wire's route highlighted.
pub fn figure1() -> String {
    use locus_router::render::render_cost_array;
    let circuit = locus_circuit::presets::tiny();
    let out = SequentialRouter::new(&circuit, RouterParams::default()).run();
    let mut s = String::from("Figure 1: cost array with wire 0's route highlighted\n");
    s.push_str(&render_cost_array(&out.cost, Some(&out.routes[0])));
    s
}

/// **Figure 2** — the division of the cost array among processors.
pub fn figure2(n_procs: usize) -> String {
    use locus_router::render::render_regions;
    let circuit = locus_circuit::presets::tiny();
    let regions = RegionMap::new(circuit.channels, circuit.grids, n_procs);
    let mut s = format!("Figure 2: cost-array division among {n_procs} processors\n");
    s.push_str(&render_regions(&regions));
    s
}

/// **Figure 3** — the update-transaction taxonomy.
pub fn figure3() -> String {
    "Figure 3: classification of update types\n\
     \n\
     updates\n\
     ├── sender initiated\n\
     │   ├── SendLocData  — absolute own-region data, pushed to N/S/E/W neighbours\n\
     │   └── SendRmtData  — deltas pushed to the owning processor\n\
     └── receiver initiated\n\
         ├── ReqRmtData   — ask an owner for its region   (blocking | non-blocking)\n\
         └── ReqLocData   — owner asks a writer for deltas (blocking | non-blocking)\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;

    const QUICK_PROCS: usize = 4;

    /// Unit tests exercise the serial harness; harness parity is covered
    /// by `tests/parallel_harness.rs`.
    fn h() -> Harness {
        Harness::serial()
    }

    #[test]
    fn table1_shape_and_traffic_ordering() {
        let c = presets::small();
        let rows = table1(&h(), &c, QUICK_PROCS);
        assert_eq!(rows.len(), 12);
        // Within a SendRmtData group, traffic falls as SendLocData grows.
        for g in rows.chunks(4) {
            assert!(
                g[0].mbytes >= g[3].mbytes,
                "loc=1 traffic {} must be >= loc=20 traffic {}",
                g[0].mbytes,
                g[3].mbytes
            );
        }
    }

    #[test]
    fn table2_shape() {
        let c = presets::small();
        let rows = table2(&h(), &c, QUICK_PROCS);
        assert_eq!(rows.len(), 9);
        // Traffic falls as ReqRmtData grows (fewer requests).
        for g in rows.chunks(3) {
            assert!(g[0].mbytes >= g[2].mbytes);
        }
    }

    #[test]
    fn blocking_study_blocking_never_faster() {
        let c = presets::small();
        for row in blocking_study(&h(), &c, QUICK_PROCS) {
            assert!(row.time_blocking >= row.time_nonblocking, "schedule {:?}", row.schedule);
        }
    }

    #[test]
    fn table3_traffic_shape() {
        let c = presets::small();
        let rows = table3(&h(), &c, QUICK_PROCS, &[4, 8, 16, 32]);
        assert_eq!(rows.len(), 4);
        // The robust Table 3 properties on synthetic circuits: long lines
        // cost more than mid-size lines (false-sharing growth), and the
        // traffic is write-dominated (§5.2: >80% of bytes from writes).
        // See EXPERIMENTS.md for why the 4-byte point can sit above the
        // 8-byte point here (spatial merging of clustered route writes).
        assert!(
            rows[3].mbytes > rows[1].mbytes,
            "32B lines {} must out-traffic 8B lines {}",
            rows[3].mbytes,
            rows[1].mbytes
        );
        for r in &rows {
            assert!(
                r.write_fraction > 0.6,
                "line {}: write fraction {} too low",
                r.line_size,
                r.write_fraction
            );
        }
    }

    #[test]
    fn table3_backend_bus_wbi_matches_table3_and_bus_wt_is_reachable() {
        let c = presets::small();
        let legacy = table3(&h(), &c, QUICK_PROCS, &[4, 8, 32]);
        let wbi = table3_backend(&c, QUICK_PROCS, &[4, 8, 32], "bus-wbi").expect("registered");
        assert_eq!(legacy, wbi, "bus-wbi sweep must be byte-identical to the legacy Table 3");
        let wt = table3_backend(&c, QUICK_PROCS, &[8], "bus-wt").expect("registered");
        assert!(
            wt[0].mbytes > wbi[1].mbytes,
            "write-through pays a bus word on every store, so it must out-traffic WBI: \
             {} vs {}",
            wt[0].mbytes,
            wbi[1].mbytes
        );
        assert!(table3_backend(&c, QUICK_PROCS, &[8], "nope").is_err());
    }

    #[test]
    fn memory_study_covers_every_backend_and_priority_never_hurts_critical() {
        let c = presets::small();
        let rows = memory_study(&h(), &[&c], QUICK_PROCS, MEMORY_STUDY_LINE_SIZE);
        assert_eq!(rows.len(), locus_coherence::memory_registry().len());
        let by = |name: &str| rows.iter().find(|r| r.backend == name).unwrap();
        // WBI-semantics backends agree on data traffic; transport differs.
        assert_eq!(by("bus-wbi").mbytes, by("directory").mbytes);
        assert!(by("directory").inval_mbytes <= by("bus-wbi").inval_mbytes);
        // DLS caches nothing, so it has no coherence events or
        // invalidation transport at all.
        assert_eq!(by("dls").coherence_events, 0);
        assert_eq!(by("dls").inval_mbytes, 0.0);
        for r in &rows {
            assert!(
                r.prio_critical_mean_ns <= r.fifo_critical_mean_ns,
                "{}: critical-first must not slow critical requests: {r:?}",
                r.backend
            );
        }
        let again = memory_study(&h(), &[&c], QUICK_PROCS, MEMORY_STUDY_LINE_SIZE);
        assert_eq!(rows, again, "the study must be exactly reproducible");
    }

    #[test]
    fn memory_report_json_is_valid_and_names_every_backend() {
        let c = presets::tiny();
        let rows = memory_study(&h(), &[&c], QUICK_PROCS, MEMORY_STUDY_LINE_SIZE);
        let json = memory_report_json(&rows, QUICK_PROCS, MEMORY_STUDY_LINE_SIZE);
        locus_obs::export::validate_json(&json).expect("report must be valid JSON");
        for e in locus_coherence::memory_registry() {
            assert!(json.contains(e.name), "report must mention {}", e.name);
        }
    }

    #[test]
    fn table4_and_5_cover_both_circuits_and_methods() {
        let a = presets::small();
        let b = presets::tiny();
        let rows4 = table4(&h(), &[&a, &b], QUICK_PROCS);
        assert_eq!(rows4.len(), 8);
        let rows5 = table5(&h(), &[&a], QUICK_PROCS);
        assert_eq!(rows5.len(), 4);
    }

    #[test]
    fn table6_speedup_improves_with_processors() {
        let c = presets::small();
        let rows = table6(&h(), &c, &[2, 4]);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].speedup - 2.0).abs() < 1e-9, "P=2 speedup is 2 by definition");
        assert!(rows[1].time_s < rows[0].time_s, "4 procs must be faster than 2");
        assert!(rows[1].speedup > 2.0);
    }

    #[test]
    fn locality_study_round_robin_worse_than_local() {
        let c = presets::small();
        let rows = locality_study(&h(), &[&c], &[4]);
        let rr = rows.iter().find(|r| r.method.contains("robin")).unwrap();
        let local = rows.iter().find(|r| r.method.contains("inf")).unwrap();
        assert!(local.mean_hops < rr.mean_hops);
    }

    #[test]
    fn compare_paradigms_traffic_ordering() {
        let c = presets::small();
        let rows = compare_paradigms(&h(), &c, QUICK_PROCS);
        assert_eq!(rows.len(), 3);
        // Shared memory must move more bytes than sender-initiated, which
        // must move more than receiver-initiated (§5.2, §6).
        assert!(rows[0].mbytes > rows[1].mbytes);
        assert!(rows[1].mbytes > rows[2].mbytes);
    }

    #[test]
    fn structures_study_orders_traffic() {
        let c = presets::small();
        let rows = structures_study(&h(), &c, QUICK_PROCS);
        assert_eq!(rows.len(), 3);
        let bbox = &rows[0];
        let full = &rows[1];
        // §4.3.1: the full-region structure "uses a large number of
        // bytes"; the bounding-box scheme reduces traffic relative to it.
        assert!(full.mbytes > bbox.mbytes, "full {} vs bbox {}", full.mbytes, bbox.mbytes);
    }

    #[test]
    fn overshoot_study_zero_examines_less_work() {
        let c = presets::small();
        let rows = overshoot_study(&h(), &c, QUICK_PROCS);
        assert_eq!(rows.len(), 3);
        // More overshoot = more candidates = more modelled time.
        assert!(rows[0].time_s <= rows[2].time_s);
    }

    #[test]
    fn contention_study_runs_and_contention_counter_responds() {
        let c = presets::small();
        let rows = contention_study(&h(), &c, QUICK_PROCS);
        assert_eq!(rows.len(), 2);
        // Message timing feeds back into the adaptive application, so
        // total time and packet counts may move either way; the solid
        // invariant is the contention counter itself.
        let cfg = MsgPassConfig::new(QUICK_PROCS, UpdateSchedule::sender_initiated(2, 1));
        let with = run_msgpass(&c, cfg);
        let without =
            locus_msgpass::run_msgpass_with_mesh(&c, cfg, cfg.mesh_config().without_contention());
        assert!(with.net.contention_ns > 0, "chatty schedule must contend");
        assert_eq!(without.net.contention_ns, 0);
    }

    #[test]
    fn distribution_study_dynamic_not_faster() {
        let c = presets::small();
        let rows = distribution_study(&h(), &c, QUICK_PROCS);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].time_s >= rows[0].time_s * 0.9,
            "dynamic should not significantly beat static: {rows:?}"
        );
        assert!(rows[1].packets > rows[0].packets, "requests/grants add packets");
    }

    #[test]
    fn figures_render() {
        assert!(figure1().contains('['));
        assert!(figure2(4).contains("ch"));
        assert!(figure3().contains("SendLocData"));
    }

    #[test]
    fn faults_study_rows_are_deterministic_and_loss_costs_traffic() {
        let c = presets::small();
        let rows = faults_study(&h(), &c, QUICK_PROCS, FAULT_LOSSES_BP_QUICK);
        assert_eq!(rows.len(), 4, "two schedules x two loss points");
        for pair in rows.chunks(2) {
            let (clean, lossy) = (&pair[0], &pair[1]);
            assert_eq!(clean.loss_bp, 0);
            assert_eq!(clean.dropped, 0);
            assert_eq!(clean.retransmits, 0, "fault-free rows run the unmodified protocol");
            assert!(lossy.dropped > 0, "10% loss must drop packets: {lossy:?}");
            assert!(lossy.retransmits > 0, "drops must force retransmissions: {lossy:?}");
            assert!(!clean.degraded && !lossy.degraded);
        }
        let again = faults_study(&h(), &c, QUICK_PROCS, FAULT_LOSSES_BP_QUICK);
        assert_eq!(rows, again, "the study must be exactly reproducible");
    }
}

/// An instrumented run: the outcome plus everything the sink captured.
#[derive(Clone, Debug)]
pub struct ObservedRun {
    /// The ordinary simulation outcome.
    pub outcome: MsgPassOutcome,
    /// The recorded event stream (bounded by the ring-buffer capacity).
    pub events: Vec<Event>,
    /// Counter/histogram snapshot (exact even if the ring wrapped).
    pub metrics: MetricsSnapshot,
}

/// Runs the paper-settings message-passing router (sender-initiated
/// Table 4/6 schedule) with observability on. Backs the CLI's
/// `--trace-out` / `--metrics-out` flags.
pub fn observed_paper_run(circuit: &Circuit, n_procs: usize) -> ObservedRun {
    let sink = SharedSink::new();
    let cfg = MsgPassConfig::new(n_procs, table46_schedule());
    let outcome = run_msgpass_observed(circuit, cfg, sink.clone());
    assert!(!outcome.deadlocked, "observed run deadlocked");
    ObservedRun { outcome, events: sink.snapshot_events(), metrics: sink.metrics_snapshot() }
}
