//! # locus-bench
//!
//! The experiment harness: one function per table/figure of Martonosi &
//! Gupta (ICPP 1989), producing typed rows that the `locus-experiments`
//! CLI and the Criterion benches render as the paper's tables.
//!
//! Absolute values are not expected to match the 1989 testbed; the
//! *shape* of each result (orderings, ratios, crossovers) is the
//! reproduction target. `EXPERIMENTS.md` records paper-vs-measured values
//! for every experiment id.

pub mod chaos;
pub mod experiments;
pub mod fmt;
pub mod serve;
pub mod sweep;

pub use chaos::{
    chaos_report_json, chaos_study, ChaosProbe, ChaosRow, ChaosStudy, CHAOS_CHECKPOINT_INTERVALS,
    CHAOS_CRASH_FRACTIONS,
};
pub use experiments::*;
pub use serve::{
    service_report_json, service_study, ServiceRow, ServiceStudy, SERVICE_LOADS,
    SERVICE_LOADS_QUICK, SERVICE_SLO_WAIT_MS,
};
pub use sweep::Harness;
