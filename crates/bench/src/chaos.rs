//! The chaos study: node-level failure injection × recovery configuration.
//!
//! Every scenario routes a circuit on the message-passing engine with
//! checkpoint/restore recovery enabled, injects one deterministic node
//! fault mid-run (crash, crash-with-restart, coordinator crash, or a
//! fail-slow stall), and measures what the failure cost relative to the
//! fault-free run under the same recovery configuration: extra simulated
//! time, extra bytes, solution-quality drift, and the recovery-protocol
//! work (checkpoints, reassignments, rollbacks, failovers) that paid for
//! it.
//!
//! The headline claims this study backs (`BENCH_resilience.json`):
//! any *single* mid-run node failure costs bounded re-work — the run
//! always terminates with every wire routed, no watchdog intervention —
//! and every scenario is bitwise-repeatable (each cell is executed twice
//! and compared).
//!
//! Recovery windows are **derived, not guessed**: a probe run without
//! recovery measures the circuit's clean completion time `T`, then the
//! heartbeat period is set to `T/50` and the suspect window to 8
//! heartbeats (≈ 0.16 `T`). Nodes under recovery chunk their busy time
//! at half a heartbeat per step, so even a wire whose routing work
//! exceeds the window cannot silence its owner into a false death.

use locus_circuit::{presets, Circuit};
use locus_mesh::{FaultPlan, NodeFault};
use locus_msgpass::{run_msgpass, MsgPassConfig, MsgPassOutcome, RecoveryConfig, UpdateSchedule};

use crate::sweep::Harness;

/// Crash points of the worker-crash sweep, as fractions of the target
/// worker's own clean *routing span* (not total completion time):
/// onsets scaled by total time would land after the target's work is
/// done — the run tail is update exchange and termination — and never
/// orphan a wire.
pub const CHAOS_CRASH_FRACTIONS: &[f64] = &[0.25, 0.5, 0.75];

/// Reduced crash sweep for `--quick` runs and CI smoke tests.
pub const CHAOS_CRASH_FRACTIONS_QUICK: &[f64] = &[0.5];

/// Checkpoint intervals (wires between checkpoints) of the full study.
pub const CHAOS_CHECKPOINT_INTERVALS: &[u32] = &[4, 16];

/// Reduced interval sweep for `--quick` runs.
pub const CHAOS_CHECKPOINT_INTERVALS_QUICK: &[u32] = &[4];

/// Heartbeat period as a fraction of the probed clean completion time.
const HEARTBEAT_DIVISOR: u64 = 50;

/// Heartbeats of silence before a peer is declared dead.
const SUSPECT_AFTER: u32 = 8;

/// Stall scenarios multiply service cost by this factor.
const STALL_FACTOR: u32 = 4;

/// One clean probe per circuit: the measured base time and the recovery
/// knobs derived from it.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosProbe {
    /// Circuit name.
    pub circuit: String,
    /// Processor count.
    pub procs: usize,
    /// Clean completion time without recovery (simulated seconds).
    pub base_time_s: f64,
    /// Clean routing span (simulated seconds): when the last processor
    /// finished its last wire. Fault onsets are fractions of this.
    pub routing_s: f64,
    /// Derived heartbeat period (ns).
    pub heartbeat_ns: u64,
    /// Heartbeats of silence before a peer is declared dead.
    pub suspect_after: u32,
}

/// One `(circuit, checkpoint interval, scenario)` cell of the study.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosRow {
    /// Circuit name.
    pub circuit: String,
    /// Processor count.
    pub procs: usize,
    /// Scenario id (`clean`, `worker-crash`, `worker-restart`,
    /// `coordinator-crash`, `stall`).
    pub scenario: &'static str,
    /// Wires between checkpoints.
    pub checkpoint_every: u32,
    /// Fault onset as a fraction of the fault target's own clean
    /// routing span (0 for the clean scenario).
    pub fault_frac: f64,
    /// Final circuit height.
    pub ckt_ht: u64,
    /// Simulated completion time (s).
    pub time_s: f64,
    /// Application megabytes moved.
    pub mbytes: f64,
    /// Checkpoints taken across all nodes.
    pub checkpoints: u64,
    /// Checkpoint bytes serialized to stable store.
    pub checkpoint_bytes: u64,
    /// Peers declared dead by the failure detector.
    pub declared_dead: u64,
    /// Wires reassigned from dead nodes.
    pub reassigned: u64,
    /// Checkpoint rollbacks performed by restarted nodes.
    pub rollbacks: u64,
    /// Coordinator failovers.
    pub failovers: u64,
    /// Wires routed by two processors (false-death overlap), resolved
    /// first-writer-wins.
    pub duplicates: u64,
    /// Wires the watchdog had to route (must be 0).
    pub watchdog: u64,
    /// True when the run degraded (deadlock/event-limit watchdog path).
    pub degraded: bool,
    /// `time_s` over the clean scenario's `time_s` at the same
    /// checkpoint interval.
    pub time_vs_clean: f64,
    /// `mbytes` over the clean scenario's `mbytes`.
    pub mbytes_vs_clean: f64,
    /// True when an immediate second execution of the cell reproduced
    /// routes, time, traffic, and recovery counters exactly.
    pub repeat_identical: bool,
}

impl ChaosRow {
    /// Every wire routed, no watchdog, clean termination, reproducible.
    pub fn ok(&self) -> bool {
        !self.degraded && self.watchdog == 0 && self.repeat_identical
    }
}

/// The full study: probes and rows in deterministic order.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosStudy {
    /// One probe per circuit.
    pub probes: Vec<ChaosProbe>,
    /// Rows in `(circuit, interval, scenario)` order.
    pub rows: Vec<ChaosRow>,
}

impl ChaosStudy {
    /// True when every row satisfies [`ChaosRow::ok`].
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(ChaosRow::ok)
    }
}

/// The scenarios injected at each `(circuit, checkpoint interval)`:
/// `(id, onset fraction, plan builder)`. The target of worker faults
/// is the *longest-routing* worker from the clean probe, and each
/// onset is a fraction of that node's own routing span — so the fault
/// lands while the victim still holds unfinished wires (static shares
/// are imbalanced enough that a fixed rank often finishes in the
/// first few percent of the run and a crash there orphans nothing).
/// Durations scale with the full completion time `t_ns`, because the
/// suspect window they are sized against is `t_ns`-derived.
fn scenarios(spans_ns: &[u64], t_ns: u64, fracs: &[f64]) -> Vec<(&'static str, f64, FaultPlan)> {
    // Longest-routing non-coordinator rank (ties break low, fixed).
    let worker = spans_ns
        .iter()
        .enumerate()
        .skip(1)
        .max_by_key(|&(p, ns)| (ns, std::cmp::Reverse(p)))
        .map(|(p, _)| p as u32)
        .unwrap_or(1);
    let at = |span: u64, frac: f64| (span as f64 * frac).max(1.0) as u64;
    let worker_at = |frac: f64| at(spans_ns[worker as usize], frac);
    let mut v = vec![("clean", 0.0, FaultPlan::none())];
    for &f in fracs {
        v.push((
            "worker-crash",
            f,
            FaultPlan::none().with_node_fault(worker, NodeFault::Crash { at_ns: worker_at(f) }),
        ));
    }
    v.push((
        "worker-restart",
        0.5,
        FaultPlan::none().with_node_fault(
            worker,
            NodeFault::CrashRestart { at_ns: worker_at(0.5), downtime_ns: t_ns / 20 },
        ),
    ));
    v.push((
        "coordinator-crash",
        0.5,
        FaultPlan::none().with_node_fault(0, NodeFault::Crash { at_ns: at(spans_ns[0], 0.5) }),
    ));
    v.push((
        "stall",
        0.5,
        FaultPlan::none().with_node_fault(
            worker,
            NodeFault::Stall { at_ns: worker_at(0.5), factor: STALL_FACTOR, duration_ns: t_ns / 4 },
        ),
    ));
    v
}

/// Base message-passing configuration of the study (single iteration so
/// checkpoint progress is monotone, as recovery requires).
fn base_config(procs: usize) -> MsgPassConfig {
    let mut cfg = MsgPassConfig::new(procs, UpdateSchedule::sender_initiated(2, 10));
    cfg.params = cfg.params.with_iterations(1);
    cfg
}

/// True when two executions of the same cell reproduced each other
/// exactly: routes, time, traffic, quality, and recovery counters.
fn identical(a: &MsgPassOutcome, b: &MsgPassOutcome) -> bool {
    a.routes == b.routes
        && a.time_secs.to_bits() == b.time_secs.to_bits()
        && a.mbytes.to_bits() == b.mbytes.to_bits()
        && a.quality == b.quality
        && a.recovery == b.recovery
}

/// Runs the chaos grid. One probe per circuit (clean, recovery off),
/// then every `(interval, scenario)` cell with recovery on; each cell
/// executes twice to prove bitwise repeatability.
pub fn chaos_study(harness: &Harness, quick: bool) -> ChaosStudy {
    let circuits: Vec<(Circuit, usize)> = if quick {
        vec![(presets::small(), 4)]
    } else {
        vec![(presets::bnr_e(), 16), (presets::power_law(), 16)]
    };
    let fracs = if quick { CHAOS_CRASH_FRACTIONS_QUICK } else { CHAOS_CRASH_FRACTIONS };
    let intervals =
        if quick { CHAOS_CHECKPOINT_INTERVALS_QUICK } else { CHAOS_CHECKPOINT_INTERVALS };

    let mut probes = Vec::new();
    let mut rows = Vec::new();
    for (circuit, procs) in &circuits {
        let probe_out = run_msgpass(circuit, base_config(*procs));
        assert!(!probe_out.deadlocked, "probe run must terminate");
        let t_ns = (probe_out.time_secs * 1e9) as u64;
        let spans_ns: Vec<u64> =
            probe_out.routing_done_secs_by_proc.iter().map(|s| (s * 1e9) as u64).collect();
        let heartbeat_ns = (t_ns / HEARTBEAT_DIVISOR).max(1_000_000);
        probes.push(ChaosProbe {
            circuit: circuit.name.clone(),
            procs: *procs,
            base_time_s: probe_out.time_secs,
            routing_s: probe_out.routing_done_secs,
            heartbeat_ns,
            suspect_after: SUSPECT_AFTER,
        });

        for &interval in intervals {
            let recovery = RecoveryConfig {
                checkpoint_every: interval,
                heartbeat_ns,
                suspect_after: SUSPECT_AFTER,
                ..RecoveryConfig::default()
            };
            let cells = scenarios(&spans_ns, t_ns, fracs);
            let cell_rows = harness.map(cells, |(scenario, frac, plan)| {
                let mut cfg = base_config(*procs).with_reliability().with_recovery_config(recovery);
                if !plan.is_idle() {
                    cfg = cfg.with_faults(plan);
                }
                let out = run_msgpass(circuit, cfg);
                let repeat = run_msgpass(circuit, cfg);
                let repeat_identical = identical(&out, &repeat);
                ChaosRow {
                    circuit: circuit.name.clone(),
                    procs: *procs,
                    scenario,
                    checkpoint_every: interval,
                    fault_frac: frac,
                    ckt_ht: out.quality.circuit_height,
                    time_s: out.time_secs,
                    mbytes: out.mbytes,
                    checkpoints: out.recovery.checkpoints_taken,
                    checkpoint_bytes: out.recovery.checkpoint_bytes,
                    declared_dead: out.recovery.nodes_declared_dead,
                    reassigned: out.recovery.wires_reassigned,
                    rollbacks: out.recovery.rollbacks,
                    failovers: out.recovery.coordinator_failovers,
                    duplicates: out.recovery.duplicate_routes,
                    watchdog: out.watchdog_recoveries,
                    degraded: out.degraded.is_some(),
                    time_vs_clean: 1.0,
                    mbytes_vs_clean: 1.0,
                    repeat_identical,
                }
            });
            // Normalize the fault rows against this interval's clean row.
            let clean_time = cell_rows[0].time_s.max(f64::MIN_POSITIVE);
            let clean_mb = cell_rows[0].mbytes.max(f64::MIN_POSITIVE);
            for mut row in cell_rows {
                row.time_vs_clean = row.time_s / clean_time;
                row.mbytes_vs_clean = row.mbytes / clean_mb;
                rows.push(row);
            }
        }
    }
    ChaosStudy { probes, rows }
}

/// Machine-readable JSON for the study (`chaos` →
/// `BENCH_resilience.json`). Pure virtual-time content: byte-identical
/// for a given configuration.
pub fn chaos_report_json(study: &ChaosStudy, quick: bool) -> String {
    let mut out = String::with_capacity(1024 + study.rows.len() * 320);
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"resilience\",\n");
    out.push_str(
        "  \"description\": \"Node-failure chaos grid on the message-passing engine with \
         checkpoint/restore recovery: one deterministic crash, restart, coordinator loss, or \
         stall per run, measured against the fault-free run under the same recovery \
         configuration. All quantities are simulated time, so this file is byte-identical \
         across runs and hosts. Regenerate with: cargo run --release -p locus-bench --bin \
         locus-experiments chaos.\",\n",
    );
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"all_ok\": {},\n", study.all_ok()));
    out.push_str("  \"probes\": [\n");
    for (i, p) in study.probes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"circuit\": \"{}\", \"procs\": {}, \"base_time_s\": {:.6}, \
             \"routing_s\": {:.6}, \"heartbeat_ns\": {}, \"suspect_after\": {}}}{}\n",
            p.circuit,
            p.procs,
            p.base_time_s,
            p.routing_s,
            p.heartbeat_ns,
            p.suspect_after,
            if i + 1 < study.probes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in study.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"circuit\": \"{}\", \"procs\": {}, \"scenario\": \"{}\", \
             \"checkpoint_every\": {}, \"fault_frac\": {}, \"ckt_ht\": {}, \
             \"time_s\": {:.6}, \"mbytes\": {:.6}, \"checkpoints\": {}, \
             \"checkpoint_bytes\": {}, \"declared_dead\": {}, \"reassigned\": {}, \
             \"rollbacks\": {}, \"failovers\": {}, \"duplicates\": {}, \"watchdog\": {}, \
             \"degraded\": {}, \"time_vs_clean\": {:.6}, \"mbytes_vs_clean\": {:.6}, \
             \"repeat_identical\": {}}}{}\n",
            r.circuit,
            r.procs,
            r.scenario,
            r.checkpoint_every,
            r.fault_frac,
            r.ckt_ht,
            r.time_s,
            r.mbytes,
            r.checkpoints,
            r.checkpoint_bytes,
            r.declared_dead,
            r.reassigned,
            r.rollbacks,
            r.failovers,
            r.duplicates,
            r.watchdog,
            r.degraded,
            r.time_vs_clean,
            r.mbytes_vs_clean,
            r.repeat_identical,
            if i + 1 < study.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_survives_every_single_fault() {
        let study = chaos_study(&Harness::serial(), true);
        assert_eq!(study.probes.len(), 1);
        // clean + 1 worker crash + restart + coordinator + stall.
        assert_eq!(study.rows.len(), 5);
        assert!(study.all_ok(), "{:#?}", study.rows);

        let clean = &study.rows[0];
        assert_eq!(clean.scenario, "clean");
        assert_eq!(clean.declared_dead, 0);
        assert!(clean.checkpoints > 0);

        let coord = study
            .rows
            .iter()
            .find(|r| r.scenario == "coordinator-crash")
            .expect("coordinator scenario present");
        // At least the successor's claim; crossed claims during churn
        // may add a re-assertion (the succession invariant heals them),
        // so the exact count is protocol-churn-dependent. Determinism
        // is covered by the repeat_identical check above.
        assert!(coord.failovers >= 1, "no failover recorded: {coord:#?}");
        assert!(coord.reassigned > 0);

        let restart = study
            .rows
            .iter()
            .find(|r| r.scenario == "worker-restart")
            .expect("restart scenario present");
        // Downtime (T/20) is inside the suspect window, so the restart
        // recovers silently — no false death, no reassignment.
        assert_eq!(restart.declared_dead, 0);

        // Failures cost time, but boundedly: re-work is capped by the
        // checkpoint interval, and the dominant absolute cost is the
        // reliable layer's retransmit tail toward the dead peer (~1.3
        // simulated seconds before it gives up).
        let clean_s = study.rows[0].time_s;
        for r in &study.rows {
            assert!(
                r.time_s <= clean_s + 2.0,
                "{}@{} took {}s vs clean {}s",
                r.scenario,
                r.fault_frac,
                r.time_s,
                clean_s
            );
        }
    }

    #[test]
    fn report_json_is_valid_and_deterministic() {
        let study = chaos_study(&Harness::serial(), true);
        let json = chaos_report_json(&study, true);
        locus_obs::export::validate_json(&json).expect("chaos report must be valid JSON");
        let again = chaos_report_json(&chaos_study(&Harness::serial(), true), true);
        assert_eq!(json, again, "chaos report must be byte-identical across runs");
    }
}
