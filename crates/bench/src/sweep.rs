//! A small scoped-thread pool for running independent sweep points of an
//! experiment concurrently.
//!
//! Every engine in the workspace is deterministic (the real-thread router
//! excepted, and it is never driven through sweeps), so a sweep is an
//! embarrassingly parallel map: the [`Harness`] farms the points out to a
//! few OS threads and reassembles the rows **in input order**, making the
//! parallel harness produce bit-identical rows to the serial one. The
//! `parallel_harness` integration test and the `locus-experiments sweeps`
//! subcommand both check exactly that.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on worker threads; sweeps have at most a few dozen
/// points, and each point is itself a full routing simulation, so a
/// small pool saturates quickly.
const MAX_THREADS: usize = 8;

/// A sweep-point executor: either inline (serial) or a scoped pool of
/// worker threads pulling points off a shared counter — the same
/// distributed-loop scheduling the routers themselves use for wires.
#[derive(Clone, Copy, Debug)]
pub struct Harness {
    threads: usize,
}

impl Harness {
    /// Runs every sweep point inline on the calling thread.
    pub fn serial() -> Self {
        Harness { threads: 1 }
    }

    /// Sizes the pool to the host's available parallelism (capped at 8
    /// threads; 1 worker degenerates to [`Harness::serial`]).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Harness { threads: n.min(MAX_THREADS) }
    }

    /// A pool of exactly `threads` workers (clamped to `1..=8`).
    pub fn with_threads(threads: usize) -> Self {
        Harness { threads: threads.clamp(1, MAX_THREADS) }
    }

    /// Worker count this harness runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, preserving input order in the output.
    ///
    /// With more than one worker, items are claimed from a shared atomic
    /// counter so long points do not serialize behind short ones. `f`
    /// must be deterministic for the parallel result to equal the serial
    /// one; every experiment in this crate satisfies that.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let n = items.len();
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let next = AtomicUsize::new(0);
        let done: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .expect("slot mutex poisoned")
                        .take()
                        .expect("each index claimed once");
                    *done[idx].lock().expect("result mutex poisoned") = Some(f(item));
                });
            }
        });
        done.into_iter()
            .map(|m| m.into_inner().expect("result mutex poisoned").expect("every index computed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_and_preserve_order() {
        let items: Vec<u64> = (0..37).collect();
        let serial = Harness::serial().map(items.clone(), |x| x * x);
        for threads in [2, 3, 8] {
            let parallel = Harness::with_threads(threads).map(items.clone(), |x| x * x);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn thread_counts_are_clamped() {
        assert_eq!(Harness::with_threads(0).threads(), 1);
        assert_eq!(Harness::with_threads(100).threads(), MAX_THREADS);
        assert!(Harness::auto().threads() >= 1);
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let h = Harness::with_threads(4);
        assert_eq!(h.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(h.map(vec![7u32], |x| x + 1), vec![8]);
    }
}
