//! Bench `table4`: locality in the message-passing version (paper Table 4).

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{table4, table46_schedule, Harness};
use locus_circuit::presets;
use locus_msgpass::{run_msgpass, MsgPassConfig};
use locus_router::AssignmentStrategy;

fn bench(c: &mut Criterion) {
    let a = presets::small();
    let rows = table4(&Harness::serial(), &[&a], 4);
    println!("\nTable 4 (reduced: small circuit, 4 procs)");
    for r in &rows {
        println!(
            "{:<8} {:<22} ht={:<4} MB={:.4} t={:.4} MB(recv)={:.4}",
            r.circuit, r.method, r.ckt_ht, r.mbytes, r.time_s, r.mbytes_receiver
        );
    }

    c.bench_function("msgpass_round_robin_small_4p", |b| {
        b.iter(|| {
            run_msgpass(
                &a,
                MsgPassConfig::new(4, table46_schedule())
                    .with_assignment(AssignmentStrategy::RoundRobin),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
