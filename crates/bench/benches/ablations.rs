//! Ablation benches for the design choices DESIGN.md §6 calls out:
//! update-packet structure (§4.3.1), candidate channel overshoot, and
//! the network contention model.

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{
    contention_study, distribution_study, overshoot_study, structures_study, Harness,
};
use locus_circuit::presets;
use locus_msgpass::{run_msgpass, MsgPassConfig, PacketStructure, UpdateSchedule};

fn bench(c: &mut Criterion) {
    let circuit = presets::small();

    println!("\nPacket structures (reduced: small circuit, 4 procs)");
    for r in structures_study(&Harness::serial(), &circuit, 4) {
        println!(
            "  {:<28} ht={:<4} MB={:.4} t={:.4} packets={}",
            r.variant, r.ckt_ht, r.mbytes, r.time_s, r.packets
        );
    }
    println!("Channel overshoot");
    for r in overshoot_study(&Harness::serial(), &circuit, 4) {
        println!("  {:<28} ht={:<4} MB={:.4} t={:.4}", r.variant, r.ckt_ht, r.mbytes, r.time_s);
    }
    println!("Contention model");
    for r in contention_study(&Harness::serial(), &circuit, 4) {
        println!("  {:<28} ht={:<4} MB={:.4} t={:.4}", r.variant, r.ckt_ht, r.mbytes, r.time_s);
    }
    println!("Wire distribution");
    for r in distribution_study(&Harness::serial(), &circuit, 4) {
        println!(
            "  {:<28} ht={:<4} MB={:.4} t={:.4} packets={}",
            r.variant, r.ckt_ht, r.mbytes, r.time_s, r.packets
        );
    }

    c.bench_function("msgpass_wire_based_structure_small_4p", |b| {
        b.iter(|| {
            run_msgpass(
                &circuit,
                MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10))
                    .with_structure(PacketStructure::WireBased),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
