//! The evaluation-kernel microbenchmark backing `BENCH_kernel.json`.
//!
//! Measures median time per [`best_route`] sweep over a fixed mix of
//! connection shapes (narrow/wide bounding boxes, same-channel,
//! same-column) on bnrE-shaped (10×341) and MDC-shaped (12×386) cost
//! surfaces, for three evaluator configurations:
//!
//! * `reference` — the historical cell-list evaluator
//!   ([`best_route_reference`]): the *before* number;
//! * `percell` — the span kernel reading through per-cell default span
//!   implementations (what instrumented views pay);
//! * `optimized` — the span kernel on `CostArray`'s prefix-sum fast path:
//!   the *after* number;
//! * `optimized_ripup_commit` — the fast path with a rip-up/commit write
//!   pair per connection, so incremental prefix patching is on the
//!   measured path (writes clamp a watermark; the next span query
//!   re-extends only the dirtied suffix);
//! * `ripup_commit_scratch` — the same write traffic with the winning
//!   routes pre-materialized and evaluation going through a reused
//!   segment buffer: the pure steady-state eval + write cycle, which the
//!   preflight assertion proves performs **zero heap allocations**.
//!
//! Each iteration evaluates the whole connection mix; divide the printed
//! median by the mix size (8) for ns per `best_route` call.
//!
//! Before the criterion runs, the harness (a) asserts the zero-alloc
//! property via a counting global allocator and (b) prints a prefix-cache
//! counter snapshot (hits/rebuilds/patches/invalidations/fallbacks) for a
//! fixed 1000-cycle rip-up/commit workload — the numbers recorded in
//! `BENCH_kernel.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use locus_circuit::{GridCell, Pin};
use locus_router::segment::Connection;
use locus_router::twobend::{best_route, best_route_into, best_route_reference};
use locus_router::{CostArray, CostView, Route, Segment};

/// Counts heap allocations so the preflight can prove the steady-state
/// rip-up/commit cycle allocates nothing.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Forces the per-cell default span implementations (the path taken by
/// instrumented views such as the shmem emulator's traced view).
struct PerCell<'a>(&'a CostArray);

impl CostView for PerCell<'_> {
    fn channels(&self) -> u16 {
        CostView::channels(self.0)
    }
    fn grids(&self) -> u16 {
        CostView::grids(self.0)
    }
    #[inline]
    fn cost_at(&self, cell: GridCell) -> u32 {
        self.0.cost_at(cell)
    }
}

/// A congested-looking surface: deterministic mixed-magnitude pattern.
fn surface(channels: u16, grids: u16) -> CostArray {
    let mut costs = CostArray::new(channels, grids);
    for c in 0..channels {
        for x in 0..grids {
            costs.set(GridCell::new(c, x), ((x as u32 * 7 + c as u32 * 3) % 5) as u16);
        }
    }
    costs
}

/// A fixed mix of connection shapes scaled to the surface: narrow and
/// wide bounding boxes, a same-channel run, a same-column feedthrough.
fn connections(channels: u16, grids: u16) -> Vec<Connection> {
    let g = grids as u32;
    let top = channels - 1;
    let pin = |c: u16, x: u32| Pin::new(c.min(top), x.min(g - 1) as u16);
    vec![
        Connection { from: pin(2, g * 30 / 100), to: pin(top - 2, g * 39 / 100) },
        Connection { from: pin(0, g * 3 / 100), to: pin(top, g * 26 / 100) },
        Connection { from: pin(3, g * 60 / 100), to: pin(5, g * 63 / 100) },
        Connection { from: pin(1, g * 15 / 100), to: pin(top - 1, g * 50 / 100) },
        Connection { from: pin(4, g * 88 / 100), to: pin(4, g - 1) },
        Connection { from: pin(0, g * 73 / 100), to: pin(top, g * 73 / 100) },
        Connection { from: pin(2, 0), to: pin(top - 2, g * 18 / 100) },
        Connection {
            from: pin(channels / 2, g * 35 / 100),
            to: pin(channels / 2 + 1, g * 37 / 100),
        },
    ]
}

/// The winning route of every connection in the mix, materialized once.
/// add + remove restores the surface, so the winners are loop-invariant.
fn winners(costs: &CostArray, conns: &[Connection]) -> Vec<Route> {
    let mut segs: Vec<Segment> = Vec::with_capacity(3);
    conns
        .iter()
        .map(|&k| {
            segs.clear();
            best_route_into(costs, k, 1, &mut segs);
            Route::from_segments(segs.clone())
        })
        .collect()
}

/// Proves the steady-state eval + rip-up/commit cycle allocates nothing:
/// evaluation goes through a reused segment buffer, writes patch the
/// prefix caches in place, and the surface returns to its start state
/// every cycle.
fn assert_steady_state_cycle_allocates_nothing(name: &str, channels: u16, grids: u16) {
    let mut costs = surface(channels, grids);
    let conns = connections(channels, grids);
    let routes = winners(&costs, &conns);
    let mut segs: Vec<Segment> = Vec::with_capacity(8);
    // One warm lap: caches built, segment buffer at steady capacity.
    for (r, &k) in routes.iter().zip(&conns) {
        segs.clear();
        best_route_into(&costs, k, 1, &mut segs);
        costs.add_route(r);
        costs.remove_route(r);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        for (r, &k) in routes.iter().zip(&conns) {
            segs.clear();
            black_box(best_route_into(&costs, k, 1, &mut segs).cost);
            costs.add_route(r);
            costs.remove_route(r);
        }
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(allocs, 0, "{name}: steady-state eval + rip-up/commit must not allocate");
    eprintln!("zero_alloc_{name}: 0 allocations over 1000 rip-up/commit cycles");
}

/// Prints the prefix-cache counter snapshot for a fixed 1000-cycle
/// rip-up/commit workload (the numbers recorded in BENCH_kernel.json).
fn print_prefix_counters(name: &str, channels: u16, grids: u16) {
    let mut costs = surface(channels, grids);
    let conns = connections(channels, grids);
    for _ in 0..1000 {
        for &k in &conns {
            let e = best_route(&costs, k, 1);
            costs.add_route(&e.route);
            costs.remove_route(&e.route);
        }
    }
    let s = costs.prefix_stats();
    eprintln!(
        "prefix_counters_{name}: hits={} rebuilds={} patches={} invalidations={} fallbacks={}",
        s.hits, s.rebuilds, s.patches, s.invalidations, s.fallbacks
    );
}

fn bench_surface(c: &mut Criterion, name: &str, channels: u16, grids: u16) {
    let costs = surface(channels, grids);
    let conns = connections(channels, grids);

    c.bench_function(&format!("kernel_{name}_reference"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &conns {
                acc += best_route_reference(&costs, k, 1).cost;
            }
            black_box(acc)
        })
    });

    c.bench_function(&format!("kernel_{name}_percell"), |b| {
        let view = PerCell(&costs);
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &conns {
                acc += best_route(&view, k, 1).cost;
            }
            black_box(acc)
        })
    });

    c.bench_function(&format!("kernel_{name}_optimized"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &conns {
                acc += best_route(&costs, k, 1).cost;
            }
            black_box(acc)
        })
    });

    c.bench_function(&format!("kernel_{name}_optimized_ripup_commit"), |b| {
        let mut costs = surface(channels, grids);
        b.iter(|| {
            let mut acc = 0u64;
            for &k in &conns {
                let e = best_route(&costs, k, 1);
                acc += e.cost;
                costs.add_route(&e.route);
                costs.remove_route(&e.route);
            }
            black_box(acc)
        })
    });

    c.bench_function(&format!("kernel_{name}_ripup_commit_scratch"), |b| {
        let mut costs = surface(channels, grids);
        let routes = winners(&costs, &conns);
        let mut segs: Vec<Segment> = Vec::with_capacity(8);
        b.iter(|| {
            let mut acc = 0u64;
            for (r, &k) in routes.iter().zip(&conns) {
                segs.clear();
                acc += best_route_into(&costs, k, 1, &mut segs).cost;
                costs.add_route(r);
                costs.remove_route(r);
            }
            black_box(acc)
        })
    });
}

fn bench(c: &mut Criterion) {
    for (name, channels, grids) in [("bnre", 10u16, 341u16), ("mdc", 12, 386)] {
        assert_steady_state_cycle_allocates_nothing(name, channels, grids);
        print_prefix_counters(name, channels, grids);
    }
    bench_surface(c, "bnre", 10, 341);
    bench_surface(c, "mdc", 12, 386);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench
}
criterion_main!(benches);
