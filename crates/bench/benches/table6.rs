//! Bench `table6`: processor-count scaling (paper Table 6).

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{table46_schedule, table6, Harness};
use locus_circuit::presets;
use locus_msgpass::{run_msgpass, MsgPassConfig};

fn bench(c: &mut Criterion) {
    let circuit = presets::small();
    let rows = table6(&Harness::serial(), &circuit, &[2, 4]);
    println!("\nTable 6 (reduced: small circuit)");
    for r in &rows {
        println!(
            "P={:<3} ht={:<4} occup={:<8} MB={:.4} t={:.4} speedup={:.1}",
            r.procs, r.ckt_ht, r.occupancy, r.mbytes, r.time_s, r.speedup
        );
    }

    c.bench_function("msgpass_scaling_point_small_4p", |b| {
        b.iter(|| run_msgpass(&circuit, MsgPassConfig::new(4, table46_schedule())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
