//! Bench `table5`: locality in the shared-memory version (paper Table 5).

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{table5, Harness};
use locus_circuit::presets;
use locus_router::AssignmentStrategy;
use locus_shmem::{ShmemConfig, ShmemEmulator};

fn bench(c: &mut Criterion) {
    let a = presets::small();
    let rows = table5(&Harness::serial(), &[&a], 4);
    println!("\nTable 5 (reduced: small circuit, 4 procs)");
    for r in &rows {
        println!("{:<8} {:<22} ht={:<4} MB={:.4}", r.circuit, r.method, r.ckt_ht, r.mbytes);
    }

    c.bench_function("shmem_emulator_traced_static_small_4p", |b| {
        b.iter(|| {
            ShmemEmulator::new(
                &a,
                ShmemConfig::new(4).with_trace().with_static_assignment(
                    AssignmentStrategy::Locality { threshold_cost: Some(30) },
                ),
            )
            .run()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
