//! Micro-benchmarks of the core building blocks: two-bend evaluation,
//! cost-array updates, delta scans, region lookups, and the sequential
//! router — the inner loops every experiment exercises.

use criterion::{criterion_group, criterion_main, Criterion};
use locus_circuit::{presets, GridCell, Pin, Rect};
use locus_msgpass::DeltaArray;
use locus_router::segment::Connection;
use locus_router::twobend::best_route;
use locus_router::{CostArray, RegionMap, RouterParams, SequentialRouter};

fn bench(c: &mut Criterion) {
    let circuit = presets::bnr_e();

    c.bench_function("twobend_best_route_30x4_bbox", |b| {
        let mut costs = CostArray::new(10, 341);
        for x in 0..341 {
            for ch in 0..10 {
                costs.set(GridCell::new(ch, x), ((x as u32 * 7 + ch as u32) % 5) as u16);
            }
        }
        let conn = Connection { from: Pin::new(2, 100), to: Pin::new(6, 130) };
        b.iter(|| best_route(&costs, conn, 1))
    });

    c.bench_function("cost_array_add_remove_route", |b| {
        let mut costs = CostArray::new(10, 341);
        let eval = {
            let conn = Connection { from: Pin::new(1, 10), to: Pin::new(8, 300) };
            best_route(&costs, conn, 1)
        };
        b.iter(|| {
            costs.add_route(&eval.route);
            costs.remove_route(&eval.route);
        })
    });

    c.bench_function("delta_scan_region_3x85", |b| {
        let mut delta = DeltaArray::new(10, 341);
        delta.record(GridCell::new(2, 40), 1);
        delta.record(GridCell::new(4, 80), -1);
        let region = Rect::new(2, 4, 0, 84);
        b.iter(|| delta.changes_in(region))
    });

    c.bench_function("region_owner_lookup", |b| {
        let m = RegionMap::new(10, 341, 16);
        b.iter(|| {
            let mut acc = 0usize;
            for x in (0..341).step_by(7) {
                acc += m.owner_of(GridCell::new((x % 10) as u16, x as u16));
            }
            acc
        })
    });

    c.bench_function("sequential_router_bnr_e", |b| {
        b.iter(|| SequentialRouter::new(&circuit, RouterParams::default()).run())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
