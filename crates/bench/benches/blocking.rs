//! Bench `blocking`: blocking vs non-blocking receivers (paper §5.1.3).

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{blocking_study, Harness};
use locus_circuit::presets;
use locus_msgpass::{run_msgpass, MsgPassConfig, UpdateSchedule};

fn bench(c: &mut Criterion) {
    let circuit = presets::small();
    let rows = blocking_study(&Harness::serial(), &circuit, 4);
    println!("\nBlocking study (reduced: small circuit, 4 procs)");
    for r in &rows {
        println!(
            "({},{}): ht {} vs {} | t {:.4}s vs {:.4}s",
            r.schedule.0,
            r.schedule.1,
            r.ht_nonblocking,
            r.ht_blocking,
            r.time_nonblocking,
            r.time_blocking
        );
    }

    c.bench_function("msgpass_blocking_receiver_small_4p", |b| {
        b.iter(|| {
            run_msgpass(
                &circuit,
                MsgPassConfig::new(4, UpdateSchedule::receiver_initiated_blocking(1, 5)),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
