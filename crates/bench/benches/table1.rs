//! Bench `table1`: sender-initiated update sweep (paper Table 1).
//!
//! Prints the reproduced table at reduced scale, then benchmarks one
//! representative run. Full-scale tables: `locus-experiments table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{table1, Harness};
use locus_circuit::presets;
use locus_msgpass::{run_msgpass, MsgPassConfig, UpdateSchedule};

fn bench(c: &mut Criterion) {
    let circuit = presets::small();
    let rows = table1(&Harness::serial(), &circuit, 4);
    println!("\nTable 1 (reduced: small circuit, 4 procs)");
    println!("{:>4} {:>4} {:>6} {:>9} {:>9} {:>9}", "rmt", "loc", "ht", "occup", "MB", "t(s)");
    for r in &rows {
        println!(
            "{:>4} {:>4} {:>6} {:>9} {:>9.4} {:>9.4}",
            r.a, r.b, r.ckt_ht, r.occupancy, r.mbytes, r.time_s
        );
    }

    c.bench_function("msgpass_sender_initiated_small_4p", |b| {
        b.iter(|| {
            run_msgpass(&circuit, MsgPassConfig::new(4, UpdateSchedule::sender_initiated(2, 10)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
