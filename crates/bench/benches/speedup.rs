//! Bench `speedup`: §5.4 speedup study plus real-thread wall clock.

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{speedup_study, Harness};
use locus_circuit::presets;
use locus_shmem::{ShmemConfig, ThreadedRouter};

fn bench(c: &mut Criterion) {
    let circuit = presets::small();
    let rows = speedup_study(&Harness::serial(), &[&circuit], &[2, 4]);
    println!("\nSpeedup study (reduced: small circuit)");
    for r in &rows {
        println!(
            "{:<16} {:<8} P={:<3} t={:.4}s speedup={:.1}",
            r.engine, r.circuit, r.procs, r.time_s, r.speedup
        );
    }

    c.bench_function("threaded_router_small_4t", |b| {
        b.iter(|| ThreadedRouter::new(&circuit, ShmemConfig::new(4)).run())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
