//! Bench `mixed`: mixed sender+receiver schedules (paper §5.1.3).

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{mixed_study, Harness};
use locus_circuit::presets;
use locus_msgpass::{run_msgpass, MsgPassConfig, UpdateSchedule};

fn bench(c: &mut Criterion) {
    let circuit = presets::small();
    let rows = mixed_study(&Harness::serial(), &circuit, 4);
    println!("\nMixed-schedule study (reduced: small circuit, 4 procs)");
    for r in &rows {
        println!(
            "{:<18} ht={:<4} occup={:<8} MB={:.4} t={:.4}",
            r.label, r.ckt_ht, r.occupancy, r.mbytes, r.time_s
        );
    }

    c.bench_function("msgpass_mixed_schedule_small_4p", |b| {
        b.iter(|| run_msgpass(&circuit, MsgPassConfig::new(4, UpdateSchedule::mixed_paper())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
