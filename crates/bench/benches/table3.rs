//! Bench `table3`: coherence traffic vs cache line size (paper Table 3).

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{shared_memory_trace, table3, Harness};
use locus_circuit::presets;
use locus_coherence::{CoherenceConfig, CoherenceSim};

fn bench(c: &mut Criterion) {
    let circuit = presets::small();
    let rows = table3(&Harness::serial(), &circuit, 4, &[4, 8, 16, 32]);
    println!("\nTable 3 (reduced: small circuit, 4 procs)");
    println!("{:>5} {:>10} {:>8}", "line", "MB", "w-frac");
    for r in &rows {
        println!("{:>5} {:>10.4} {:>8.2}", r.line_size, r.mbytes, r.write_fraction);
    }

    let trace = shared_memory_trace(&circuit, 4);
    c.bench_function("coherence_wbi_8B_small_trace", |b| {
        b.iter(|| CoherenceSim::new(CoherenceConfig::with_line_size(8)).run(&trace))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
