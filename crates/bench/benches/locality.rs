//! Bench `locality`: the §5.3.3 locality measure.

use criterion::{criterion_group, criterion_main, Criterion};
use locus_bench::{locality_study, Harness};
use locus_circuit::presets;
use locus_router::locality::locality_measure;
use locus_router::{assign, AssignmentStrategy, RegionMap, RouterParams, SequentialRouter};

fn bench(c: &mut Criterion) {
    let circuit = presets::small();
    let rows = locality_study(&Harness::serial(), &[&circuit], &[4]);
    println!("\nLocality measure (reduced: small circuit)");
    for r in &rows {
        println!(
            "{:<8} {:<22} P={:<3} hops={:.2} owned={:.0}%",
            r.circuit,
            r.method,
            r.procs,
            r.mean_hops,
            r.owned_fraction * 100.0
        );
    }

    let solution = SequentialRouter::new(&circuit, RouterParams::default()).run();
    let regions = RegionMap::new(circuit.channels, circuit.grids, 4);
    let a = assign(&circuit, &regions, AssignmentStrategy::Locality { threshold_cost: None });
    c.bench_function("locality_measure_small_4p", |b| {
        b.iter(|| locality_measure(&solution.routes, &a.proc_of_wire, &regions))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
