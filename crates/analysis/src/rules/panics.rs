//! Abort-path rules: no `.unwrap()` in library code, no panic-family
//! macros in the message-passing protocol.

use super::{FileCtx, Rule, NO_PANIC_CRATE};
use crate::lint::Violation;

/// `.unwrap()` is banned in library code: use `expect` with a message
/// stating the invariant. Binary targets may unwrap.
pub struct NoUnwrap;

impl Rule for NoUnwrap {
    fn name(&self) -> &'static str {
        "no-unwrap"
    }

    fn describe(&self) -> &'static str {
        "no .unwrap() in library code; expect with the invariant instead (binaries exempt)"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if ctx.module.is_bin {
            return;
        }
        for ci in 0..ctx.code.len() {
            if ctx.in_test(ci) {
                continue;
            }
            if ctx.seq(ci, &[".", "unwrap", "(", ")"]) {
                ctx.flag(ci, self.name(), out);
            }
        }
    }
}

/// Panic-family macros banned in the `locus_msgpass` library tree: the
/// reliability protocol turns lost packets into `DegradedReason`
/// outcomes, and a panic anywhere on that path would void the
/// guarantee.
pub struct NoPanicInProtocol;

/// Macros that abort.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Rule for NoPanicInProtocol {
    fn name(&self) -> &'static str {
        "no-panic-in-protocol"
    }

    fn describe(&self) -> &'static str {
        "panic-family macros banned in msgpass library paths; faults must degrade, not abort"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if ctx.module.krate != NO_PANIC_CRATE || ctx.module.is_bin {
            return;
        }
        for ci in 0..ctx.code.len() {
            if ctx.in_test(ci) {
                continue;
            }
            let text = ctx.ctext(ci);
            if PANIC_MACROS.contains(&text) && ctx.seq(ci + 1, &["!"]) {
                ctx.flag(ci, self.name(), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::scan_source;
    use std::path::Path;

    fn lib(src: &str) -> Vec<(&'static str, usize)> {
        scan_source(Path::new("crates/demo/src/lib.rs"), src)
            .violations
            .iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn unwrap_banned_in_libraries_allowed_in_bins() {
        let src = "fn f() { let _ = compute().unwrap(); }\n";
        assert_eq!(lib(src), [("no-unwrap", 1)]);
        assert!(scan_source(Path::new("crates/demo/src/bin/tool.rs"), src).violations.is_empty());
        // unwrap_or and friends are fine; so are docs and strings.
        assert!(lib("fn f() { let _ = compute().unwrap_or(1); }\n").is_empty());
        assert!(lib("/// call .unwrap() at your peril\nfn f() {}\n").is_empty());
        assert!(lib("fn f() -> &'static str { \".unwrap()\" }\n").is_empty());
    }

    #[test]
    fn post_test_module_code_is_scanned_again() {
        // Regression for the old scanner's false exemption: everything
        // below the first top-level `#[cfg(test)]` was skipped, so a
        // library unwrap *after* a bottom-of-file test module was never
        // seen. The token-span scoper catches it.
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    fn t() { let _ = compute().unwrap(); }
}
fn after_tests() { let _ = compute().unwrap(); }
";
        assert_eq!(lib(src), [("no-unwrap", 6)], "only the post-module unwrap, at its line");
    }

    #[test]
    fn panics_banned_in_msgpass_library_paths() {
        let src = "fn f() { panic!(\"lost packet\"); }\nfn g() { unreachable!(); }\n";
        let v = scan_source(Path::new("crates/msgpass/src/reliable.rs"), src).violations;
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "no-panic-in-protocol"));
        // Other crates, msgpass test modules, and strings are exempt.
        assert!(lib(src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn t() { panic!(\"boom\"); } }\n";
        assert!(scan_source(Path::new("crates/msgpass/src/node.rs"), test_src)
            .violations
            .is_empty());
        let str_src = "fn f() -> &'static str { \"panic!(\" }\n";
        assert!(scan_source(Path::new("crates/msgpass/src/node.rs"), str_src)
            .violations
            .is_empty());
    }
}
