//! Concurrency rules: SeqCst ban, the full ordering audit, spawn and
//! atomic-type confinement.
//!
//! The paper's shared-memory router leaves the cost array unlocked and
//! relies on relaxed atomics being *enough* — a stray `SeqCst` would
//! hide a reasoning error rather than fix one, and an atomic (or a
//! memory-ordering argument) outside the audited modules would be
//! invisible to the race analysis that justifies the design. These
//! rules make that discipline mechanical.

use super::{FileCtx, Rule, ATOMICS_MODULES, SPAWN_MODULES};
use crate::lint::Violation;

/// Atomic memory-ordering variants (`std::sync::atomic::Ordering`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Comparison-ordering variants (`std::cmp::Ordering`) — always fine.
const CMP_ORDERINGS: &[&str] = &["Less", "Equal", "Greater"];

/// `Ordering::SeqCst` is banned everywhere, with no allowlist: the
/// routers are deliberately relaxed (the paper's unsynchronized cost
/// array), and sequential consistency anywhere would paper over a
/// misunderstanding the analysis crate exists to surface.
pub struct NoSeqCst;

impl Rule for NoSeqCst {
    fn name(&self) -> &'static str {
        "no-seqcst"
    }

    fn describe(&self) -> &'static str {
        "Ordering::SeqCst is banned everywhere; the cost array is deliberately relaxed"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        for ci in 0..ctx.code.len() {
            if ctx.in_test(ci) {
                continue;
            }
            if ctx.ctext(ci) == "SeqCst" {
                ctx.flag(ci, self.name(), out);
            }
        }
    }
}

/// Every `Ordering::<variant>` path must classify: atomic orderings are
/// confined to the audited atomics modules (SeqCst is [`NoSeqCst`]'s
/// finding and not double-reported), `std::cmp` orderings pass, and an
/// unrecognized variant is flagged so a new ordering cannot slip in
/// unclassified.
pub struct OrderingAudit;

impl Rule for OrderingAudit {
    fn name(&self) -> &'static str {
        "ordering-audit"
    }

    fn describe(&self) -> &'static str {
        "every Ordering:: path must classify; atomic orderings confined to audited modules"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        let audited = ctx.module_in(ATOMICS_MODULES);
        for ci in 0..ctx.code.len() {
            if ctx.in_test(ci) || ctx.ctext(ci) != "Ordering" || !ctx.seq(ci + 1, &["::"]) {
                continue;
            }
            let Some(variant) = (ci + 2 < ctx.code.len()).then(|| ctx.ctext(ci + 2)) else {
                continue;
            };
            if variant == "SeqCst" {
                continue; // no-seqcst owns this finding
            }
            if CMP_ORDERINGS.contains(&variant) {
                continue;
            }
            if ATOMIC_ORDERINGS.contains(&variant) {
                if !audited {
                    ctx.flag(ci, self.name(), out);
                }
            } else {
                // Unclassified: neither an atomic nor a cmp variant.
                ctx.flag(ci, self.name(), out);
            }
        }
    }
}

/// Raw thread spawns (`thread::spawn`, `scope.spawn`) are confined to
/// the audited executors; everything else must route work through them
/// so the race analysis and the deterministic replay cover every thread
/// in the workspace.
pub struct NoRawSpawn;

impl Rule for NoRawSpawn {
    fn name(&self) -> &'static str {
        "no-raw-spawn"
    }

    fn describe(&self) -> &'static str {
        "thread spawns confined to the audited executor modules"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if ctx.module_in(SPAWN_MODULES) {
            return;
        }
        for ci in 0..ctx.code.len() {
            if ctx.in_test(ci) {
                continue;
            }
            if ctx.seq(ci, &["thread", "::", "spawn", "("]) || ctx.seq(ci, &[".", "spawn", "("]) {
                ctx.flag(ci, self.name(), out);
            }
        }
    }
}

/// Atomic types are confined to the audited modules: every relaxed
/// access in the workspace must be in a file the race analysis covers.
pub struct NoUnauditedAtomics;

impl Rule for NoUnauditedAtomics {
    fn name(&self) -> &'static str {
        "no-unaudited-atomics"
    }

    fn describe(&self) -> &'static str {
        "atomic types confined to the modules the race analysis audits"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if ctx.module_in(ATOMICS_MODULES) {
            return;
        }
        for ci in 0..ctx.code.len() {
            if ctx.in_test(ci) {
                continue;
            }
            // `use std::sync::atomic::..` or any `sync::atomic` path.
            if ctx.seq(ci, &["sync", "::", "atomic"]) {
                ctx.flag(ci, self.name(), out);
                continue;
            }
            // Construction of an atomic type: AtomicU32::new(..).
            let text = ctx.ctext(ci);
            if text.starts_with("Atomic")
                && text.len() > "Atomic".len()
                && ctx.seq(ci + 1, &["::", "new", "("])
            {
                ctx.flag(ci, self.name(), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::scan_source;
    use std::path::Path;

    fn lib(src: &str) -> Vec<(&'static str, usize)> {
        scan_source(Path::new("crates/demo/src/lib.rs"), src)
            .violations
            .iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn seqcst_flagged_as_code_not_as_text() {
        assert_eq!(lib("fn f(a: &A) { a.load(Ordering::SeqCst); }\n"), [("no-seqcst", 1)]);
        // The three shapes that fooled the line scanner: strings, raw
        // strings, comments.
        assert!(lib("fn f() -> &'static str { \"Ordering::SeqCst\" }\n").is_empty());
        assert!(lib("fn f() -> &'static str { r#\"Ordering::SeqCst\"# }\n").is_empty());
        assert!(lib("// Ordering::SeqCst discussed here\nfn f() {}\n").is_empty());
        assert!(lib("/* Ordering::SeqCst\n   over lines */\nfn f() {}\n").is_empty());
    }

    #[test]
    fn bare_seqcst_import_is_flagged_too() {
        assert_eq!(lib("use std::sync::atomic::Ordering::SeqCst;\n").len(), 2);
        // (one no-seqcst for the ident, one no-unaudited-atomics for the path)
    }

    #[test]
    fn raw_identifier_cannot_evade() {
        assert_eq!(lib("fn f(a: &A) { a.load(Ordering::r#SeqCst); }\n"), [("no-seqcst", 1)]);
    }

    #[test]
    fn cmp_orderings_pass_the_audit() {
        let src = "fn f(a: u32, b: u32) -> bool {\n    matches!(a.cmp(&b), Ordering::Less | Ordering::Equal | Ordering::Greater)\n}\n";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn atomic_orderings_confined_and_unknown_variants_flagged() {
        let relaxed = "fn f(a: &A) { a.load(Ordering::Relaxed); }\n";
        assert_eq!(lib(relaxed), [("ordering-audit", 1)]);
        let audited = scan_source(Path::new("crates/router/src/engine.rs"), relaxed);
        assert!(audited.violations.is_empty(), "{:?}", audited.violations);
        assert_eq!(lib("fn f() { g(Ordering::Sideways); }\n"), [("ordering-audit", 1)]);
    }

    #[test]
    fn spawns_confined_by_module_identity() {
        let src = "fn f(s: &S) { std::thread::spawn(|| {}); s.spawn(|| {}); }\n";
        assert_eq!(lib(src).len(), 2);
        for allowed in [
            "crates/shmem/src/parallel.rs",
            "crates/bench/src/sweep.rs",
            "crates/service/src/pool.rs",
        ] {
            assert!(scan_source(Path::new(allowed), src).violations.is_empty(), "{allowed}");
        }
        // The allowance is the module, not the crate.
        assert_eq!(scan_source(Path::new("crates/service/src/server.rs"), src).violations.len(), 2);
        // spawn in a string or comment is inert.
        assert!(
            lib("// call .spawn( here\nfn f() -> &'static str { \"thread::spawn(\" }\n").is_empty()
        );
    }

    #[test]
    fn atomics_confined_by_module_identity() {
        let src = "use std::sync::atomic::AtomicU32;\nfn f() { let _ = AtomicU32::new(0); }\n";
        let v = lib(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|(r, _)| *r == "no-unaudited-atomics"));
        assert!(scan_source(Path::new("crates/router/src/engine.rs"), src).violations.is_empty());
        assert!(scan_source(Path::new("crates/shmem/src/shard.rs"), src).violations.is_empty());
    }
}
