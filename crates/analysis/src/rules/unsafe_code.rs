//! Unsafe confinement.
//!
//! The workspace is 100% safe Rust — the kernel's speed comes from
//! prefix-sum structure, not from pointer tricks — and the allowlist
//! ([`super::UNSAFE_MODULES`]) is deliberately empty. Any future
//! `unsafe` block must be added there explicitly, which makes the
//! decision reviewable instead of incidental.

use super::{FileCtx, Rule, UNSAFE_MODULES};
use crate::lint::Violation;

/// Flags the `unsafe` keyword outside the (empty) allowlist.
pub struct UnsafeConfinement;

impl Rule for UnsafeConfinement {
    fn name(&self) -> &'static str {
        "unsafe-confinement"
    }

    fn describe(&self) -> &'static str {
        "no unsafe outside the explicit allowlist (currently empty)"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if ctx.module_in(UNSAFE_MODULES) {
            return;
        }
        for ci in 0..ctx.code.len() {
            if ctx.in_test(ci) {
                continue;
            }
            if ctx.ctext(ci) == "unsafe" {
                ctx.flag(ci, self.name(), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::scan_source;
    use std::path::Path;

    #[test]
    fn unsafe_is_flagged_everywhere_even_in_bins() {
        let src = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let v = scan_source(Path::new("crates/demo/src/lib.rs"), src).violations;
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-confinement");
        assert_eq!(
            scan_source(Path::new("crates/demo/src/bin/tool.rs"), src).violations.len(),
            1,
            "binaries get no unsafe exemption"
        );
        // Mentions in docs and strings are inert.
        assert!(scan_source(
            Path::new("crates/demo/src/lib.rs"),
            "/// not unsafe at all\nfn f() -> &'static str { \"unsafe\" }\n"
        )
        .violations
        .is_empty());
    }
}
