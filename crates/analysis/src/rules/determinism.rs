//! The determinism rule.
//!
//! PRs 3–8 all lean on byte-identical reports: sweep rows equal at any
//! thread count, service replay equal at any worker count, committed
//! BENCH_*.json files regenerable bit-for-bit. Two things quietly break
//! that property:
//!
//! * **Hashed collections.** `HashMap`/`HashSet` iteration order is
//!   randomized per process; any hashed container that even *touches* a
//!   report path is a latent nondeterminism bug. Library code must use
//!   `BTreeMap`/`BTreeSet` or sorted vectors (binaries and tests may
//!   hash).
//! * **Ambient inputs.** Wall-clock reads (`Instant::now`,
//!   `SystemTime::now`) and environment reads (`std::env::*`) make a
//!   run depend on when and where it ran. They are confined to the
//!   bench/CLI crates whose whole job is measuring real time — library
//!   code that genuinely needs a wall clock must carry a
//!   `// lint: allow(determinism)` suppression justifying itself.

use super::{FileCtx, Rule, WALLCLOCK_CRATES};
use crate::lint::Violation;

/// Hashed collections with randomized iteration order.
const HASHED: &[&str] = &["HashMap", "HashSet"];

/// `env::` functions that read ambient process state.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "args", "args_os", "current_dir"];

/// Flags hashed collections in library code and wall-clock/environment
/// reads outside the bench/CLI allowlist.
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn describe(&self) -> &'static str {
        "no hashed collections in library code; wall-clock/env reads confined to bench + binaries"
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
        if ctx.module.is_bin {
            return;
        }
        let clock_ok = WALLCLOCK_CRATES.contains(&ctx.module.krate.as_str());
        for ci in 0..ctx.code.len() {
            if ctx.in_test(ci) {
                continue;
            }
            let text = ctx.ctext(ci);
            if HASHED.contains(&text) {
                ctx.flag(ci, self.name(), out);
                continue;
            }
            if clock_ok {
                continue;
            }
            if (text == "Instant" || text == "SystemTime") && ctx.seq(ci + 1, &["::", "now"]) {
                ctx.flag(ci, self.name(), out);
                continue;
            }
            if text == "env"
                && ctx.seq(ci + 1, &["::"])
                && ci + 2 < ctx.code.len()
                && ENV_READS.contains(&ctx.ctext(ci + 2))
            {
                ctx.flag(ci, self.name(), out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::lint::scan_source;
    use std::path::Path;

    fn lib(src: &str) -> Vec<(&'static str, usize)> {
        scan_source(Path::new("crates/demo/src/lib.rs"), src)
            .violations
            .iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn hashed_collections_banned_in_library_code() {
        let src = "use std::collections::HashMap;\nfn f() { let _: HashMap<u32, u32> = HashMap::new(); }\n";
        let v = lib(src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|(r, _)| *r == "determinism"));
        assert!(lib("use std::collections::BTreeMap;\n").is_empty());
        // Tests and binaries may hash.
        assert!(lib("#[cfg(test)]\nmod t { use std::collections::HashSet; }\n").is_empty());
        assert!(scan_source(Path::new("crates/demo/src/bin/tool.rs"), src).violations.is_empty());
        // "HashMap" in a string or comment is inert.
        assert!(lib("// a HashMap would be wrong here\nfn f() -> &'static str { \"HashMap\" }\n")
            .is_empty());
    }

    #[test]
    fn wallclock_and_env_reads_confined() {
        assert_eq!(lib("fn f() { let _ = Instant::now(); }\n"), [("determinism", 1)]);
        assert_eq!(lib("fn f() { let _ = SystemTime::now(); }\n"), [("determinism", 1)]);
        assert_eq!(lib("fn f() { let _ = std::env::var(\"X\"); }\n"), [("determinism", 1)]);
        assert_eq!(lib("fn f() { for a in std::env::args() {} }\n"), [("determinism", 1)]);
        // The bench crate measures real time by design.
        let t = "fn f() { let _ = Instant::now(); }\n";
        assert!(scan_source(Path::new("crates/bench/src/sweep.rs"), t).violations.is_empty());
        // env!() is compile-time and fine; elapsed() on a passed-in
        // instant is fine.
        assert!(lib("fn f() -> &'static str { env!(\"CARGO_MANIFEST_DIR\") }\n").is_empty());
        assert!(lib("fn f(t: std::time::Instant) -> u128 { t.elapsed().as_nanos() }\n").is_empty());
    }

    #[test]
    fn suppression_allows_a_justified_wall_clock() {
        let src = "\
fn f() -> Instant {
    // Wall time is the measured quantity here.
    Instant::now() // lint: allow(determinism)
}
";
        let scan = scan_source(Path::new("crates/demo/src/lib.rs"), src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.suppressed, 1);
    }
}
