//! The lint's rule registry.
//!
//! Every rule implements [`Rule`] over a [`FileCtx`] — one lexed file
//! plus its resolved module identity ([`crate::modtree`]) — and pushes
//! [`Violation`](crate::lint::Violation)s. Rules match *token
//! sequences*, never raw text, so string literals and comments can
//! never trip them; and they consult token-exact `#[cfg(test)]` spans,
//! so test modules are exempt wherever they sit in the file (the old
//! scanner's "everything below the first test gate" heuristic both
//! over-exempted trailing library code and was trivially fooled).
//!
//! Confinement allowlists key on module identity:
//!
//! | rule | confinement |
//! |------|-------------|
//! | `no-seqcst` | banned everywhere, no allowlist |
//! | `ordering-audit` | atomic orderings confined to [`ATOMICS_MODULES`]; every `Ordering::` path must classify as atomic or `cmp` |
//! | `no-raw-spawn` | spawns confined to [`SPAWN_MODULES`] |
//! | `no-unaudited-atomics` | atomic types confined to [`ATOMICS_MODULES`] |
//! | `no-unwrap` | library code only (binaries may unwrap) |
//! | `no-panic-in-protocol` | panic-family macros banned in [`NO_PANIC_CRATE`] |
//! | `determinism` | hashed collections banned in library code; wall-clock/env reads confined to [`WALLCLOCK_CRATES`] + binaries |
//! | `unsafe-confinement` | `unsafe` confined to [`UNSAFE_MODULES`] (empty) |

use std::path::Path;

use crate::lexer::{TokKind, Tokens};
use crate::lint::Violation;
use crate::modtree::ModInfo;

mod concurrency;
mod determinism;
mod panics;
mod unsafe_code;

/// Modules where spawning threads is the audited mechanism.
pub const SPAWN_MODULES: &[&str] =
    &["locus_bench::sweep", "locus_shmem::parallel", "locus_service::pool"];

/// Modules whose atomics (types *and* orderings) the race analysis
/// audits.
pub const ATOMICS_MODULES: &[&str] = &[
    "locus_shmem::parallel",
    "locus_shmem::shard",
    "locus_router::engine",
    "locus_bench::sweep",
    "locus_service::pool",
];

/// Crates whose library code may read wall clocks and the environment:
/// the experiment harness measures real time by design. Binaries are
/// always allowed.
pub const WALLCLOCK_CRATES: &[&str] = &["locus_bench"];

/// Crate whose library paths must degrade instead of panicking.
pub const NO_PANIC_CRATE: &str = "locus_msgpass";

/// Modules allowed to contain `unsafe`. Deliberately empty: the
/// workspace is 100% safe Rust, and any future exception must be added
/// here explicitly (and justify itself in review).
pub const UNSAFE_MODULES: &[&str] = &[];

/// One lexed file with everything a rule needs.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a Path,
    /// Resolved module identity.
    pub module: &'a ModInfo,
    /// The token stream.
    pub toks: &'a Tokens<'a>,
    /// Indices (into `toks.toks()`) of non-comment tokens.
    pub code: &'a [usize],
    /// Per-token flag: inside a `#[cfg(test)]` item span.
    pub in_test: &'a [bool],
}

impl FileCtx<'_> {
    /// Text of the `ci`-th code token (raw-identifier prefix stripped).
    pub fn ctext(&self, ci: usize) -> &str {
        self.toks.ident_text(&self.toks.toks()[self.code[ci]])
    }

    /// Kind of the `ci`-th code token.
    pub fn ckind(&self, ci: usize) -> TokKind {
        self.toks.toks()[self.code[ci]].kind
    }

    /// Whether the `ci`-th code token sits inside a test span.
    pub fn in_test(&self, ci: usize) -> bool {
        self.in_test[self.code[ci]]
    }

    /// Whether code tokens starting at `ci` spell `pat` exactly
    /// (identifiers and puncts by text; `::` is a single token).
    pub fn seq(&self, ci: usize, pat: &[&str]) -> bool {
        ci + pat.len() <= self.code.len()
            && pat.iter().enumerate().all(|(k, want)| self.ctext(ci + k) == *want)
    }

    /// 1-based source line of the `ci`-th code token.
    pub fn line(&self, ci: usize) -> usize {
        self.toks.line_of(self.toks.toks()[self.code[ci]].start)
    }

    /// Pushes a violation anchored at code token `ci`.
    pub fn flag(&self, ci: usize, rule: &'static str, out: &mut Vec<Violation>) {
        let line = self.line(ci);
        out.push(Violation {
            file: self.rel.to_path_buf(),
            line,
            rule,
            excerpt: self.toks.line_text(line).to_string(),
        });
    }

    /// Whether this module is in an allowlist.
    pub fn module_in(&self, allow: &[&str]) -> bool {
        allow.iter().any(|m| self.module.module == *m)
    }
}

/// One lint rule.
pub trait Rule {
    /// Stable rule identifier (used in findings, suppressions, and the
    /// baseline).
    fn name(&self) -> &'static str;
    /// One-line description for `lint --rules` and the README table.
    fn describe(&self) -> &'static str;
    /// Scans one file, pushing violations.
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Violation>);
}

/// Every registered rule, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(concurrency::NoSeqCst),
        Box::new(concurrency::OrderingAudit),
        Box::new(concurrency::NoRawSpawn),
        Box::new(concurrency::NoUnauditedAtomics),
        Box::new(panics::NoUnwrap),
        Box::new(panics::NoPanicInProtocol),
        Box::new(determinism::Determinism),
        Box::new(unsafe_code::UnsafeConfinement),
    ]
}

/// Computes per-token `#[cfg(test)]` spans.
///
/// Whenever a `#[cfg(test)]` (or `#[cfg(any/all(.., test, ..))]`)
/// attribute is seen, the attribute, any further attributes, and the
/// item they decorate — up to the matching `}` of its first top-level
/// brace, or its terminating `;` — are marked as test tokens. This is
/// exact where the old heuristic was positional: a test module in the
/// middle of a file exempts only itself, and library code *after* a
/// test module is scanned again.
pub fn test_spans(toks: &Tokens<'_>, code: &[usize]) -> Vec<bool> {
    let all = toks.toks();
    let mut in_test = vec![false; all.len()];
    let text = |ci: usize| toks.ident_text(&all[code[ci]]);
    let mut ci = 0usize;
    while ci < code.len() {
        // An attribute is `#` `[` ... `]`; inner attributes (`#![..]`)
        // never gate an item, skip them.
        if !(text(ci) == "#" && ci + 1 < code.len() && text(ci + 1) == "[") {
            ci += 1;
            continue;
        }
        let (attr_end, is_cfg_test) = scan_attr(toks, code, ci + 1);
        if !is_cfg_test {
            ci = attr_end;
            continue;
        }
        let start_tok = code[ci];
        // Skip any further attributes between the cfg gate and the item.
        let mut k = attr_end;
        while k < code.len() && text(k) == "#" && k + 1 < code.len() && text(k + 1) == "[" {
            k = scan_attr(toks, code, k + 1).0;
        }
        // The item ends at the first `;` at base depth, or at the
        // matching `}` of the first base-depth `{`.
        let mut depth = 0i32;
        while k < code.len() {
            match text(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    let mut braces = 1i32;
                    k += 1;
                    while k < code.len() && braces > 0 {
                        match text(k) {
                            "{" => braces += 1,
                            "}" => braces -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    break;
                }
                ";" if depth <= 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let end_tok = if k < code.len() { code[k] } else { all.len() };
        for flag in in_test.iter_mut().take(end_tok).skip(start_tok) {
            *flag = true;
        }
        ci = k;
    }
    in_test
}

/// Scans an attribute starting at the `[` code index; returns (index
/// one past the closing `]`, whether the attribute is a cfg gate
/// mentioning `test`).
fn scan_attr(toks: &Tokens<'_>, code: &[usize], open: usize) -> (usize, bool) {
    let all = toks.toks();
    let text = |ci: usize| toks.ident_text(&all[code[ci]]);
    let mut depth = 0i32;
    let mut k = open;
    let mut saw_cfg = false;
    let mut saw_test = false;
    while k < code.len() {
        match text(k) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, saw_cfg && saw_test);
                }
            }
            "cfg" => saw_cfg = true,
            "test" => saw_test = true,
            _ => {}
        }
        k += 1;
    }
    (k, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn spans(src: &str) -> (Vec<String>, Vec<bool>) {
        let toks = lex(src).expect("lexes");
        let code: Vec<usize> = (0..toks.toks().len())
            .filter(|&i| {
                !matches!(toks.toks()[i].kind, TokKind::LineComment | TokKind::BlockComment)
            })
            .collect();
        let in_test = test_spans(&toks, &code);
        let texts = code.iter().map(|&i| toks.text(&toks.toks()[i]).to_string()).collect();
        let flags = code.iter().map(|&i| in_test[i]).collect();
        (texts, flags)
    }

    #[test]
    fn test_module_span_is_exact() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() {} }\nfn after() {}\n";
        let (texts, flags) = spans(src);
        let tagged: Vec<&str> =
            texts.iter().zip(&flags).filter(|(_, &f)| f).map(|(t, _)| t.as_str()).collect();
        assert!(tagged.contains(&"mod"));
        assert!(tagged.contains(&"tests"));
        // Library code before AND after the module stays scanned.
        let after_pos = texts.iter().rposition(|t| t == "after").expect("after exists");
        assert!(!flags[after_pos], "code after a test module must not be exempt");
        let lib_pos = texts.iter().position(|t| t == "lib").expect("lib exists");
        assert!(!flags[lib_pos]);
    }

    #[test]
    fn cfg_test_on_single_items_and_semicolon_items() {
        let (texts, flags) = spans("#[cfg(test)]\nuse helper::thing;\nfn real() {}\n");
        let thing = texts.iter().position(|t| t == "thing").expect("thing");
        let real = texts.iter().position(|t| t == "real").expect("real");
        assert!(flags[thing]);
        assert!(!flags[real]);
    }

    #[test]
    fn cfg_all_test_counts_and_other_attrs_do_not() {
        let (texts, flags) = spans(
            "#[cfg(all(test, feature = \"x\"))]\nmod gated { }\n#[cfg(feature = \"y\")]\nmod kept { }\n",
        );
        let gated = texts.iter().position(|t| t == "gated").expect("gated");
        let kept = texts.iter().position(|t| t == "kept").expect("kept");
        assert!(flags[gated]);
        assert!(!flags[kept]);
    }

    #[test]
    fn stacked_attributes_stay_inside_the_span() {
        let (texts, flags) =
            spans("#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn x() {} }\nfn out() {}\n");
        let x = texts.iter().position(|t| t == "x").expect("x");
        let out = texts.iter().position(|t| t == "out").expect("out");
        assert!(flags[x]);
        assert!(!flags[out]);
    }
}
