//! Vector clocks for happens-before reasoning over barrier-synchronized
//! reference traces.
//!
//! The routers under analysis use exactly one synchronization primitive:
//! the barrier between routing iterations ("processes are blocked at a
//! barrier until all the processors are finished", paper §3). The race
//! detector therefore only ever performs *full joins* — at a barrier,
//! every processor's clock absorbs every other's — but the detector is
//! written against the general vector-clock algebra so the
//! happens-before test stays the standard FastTrack-style component
//! comparison rather than an ad-hoc epoch check.

/// A vector clock: one logical-time component per processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `n_procs` components.
    pub fn new(n_procs: usize) -> Self {
        VectorClock { clocks: vec![0; n_procs] }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Component for processor `p`.
    pub fn get(&self, p: usize) -> u64 {
        self.clocks[p]
    }

    /// Sets processor `p`'s component.
    pub fn set(&mut self, p: usize, value: u64) {
        self.clocks[p] = value;
    }

    /// Component-wise maximum with `other` (the join at a barrier or
    /// release edge).
    pub fn join(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.clocks.len(), other.clocks.len());
        for (mine, theirs) in self.clocks.iter_mut().zip(&other.clocks) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether this clock has observed at least logical time `value` of
    /// processor `p` — the FastTrack "epoch ⪯ clock" test: an access by
    /// `p` at `p`-time `value` happens-before the current point iff the
    /// current clock's `p` component has reached `value`.
    pub fn has_observed(&self, p: usize, value: u64) -> bool {
        self.clocks[p] >= value
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` (i.e. `self` happens-before-or-equals `other`).
    pub fn leq(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.clocks.len(), other.clocks.len());
        self.clocks.iter().zip(&other.clocks).all(|(a, b)| a <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VectorClock::new(3);
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VectorClock::new(3);
        b.set(1, 7);
        b.set(2, 4);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (5, 7, 4));
    }

    #[test]
    fn has_observed_is_the_epoch_test() {
        let mut c = VectorClock::new(2);
        c.set(1, 3);
        assert!(c.has_observed(1, 3));
        assert!(c.has_observed(1, 2));
        assert!(!c.has_observed(1, 4));
        assert!(c.has_observed(0, 0));
    }

    #[test]
    fn leq_orders_clocks_partially() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        assert!(a.leq(&b) && b.leq(&a));
        b.set(0, 1);
        assert!(a.leq(&b) && !b.leq(&a));
        a.set(1, 1);
        // Now incomparable.
        assert!(!a.leq(&b) && !b.leq(&a));
    }
}
