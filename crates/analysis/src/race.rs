//! FastTrack-style race detection over shared-reference traces.
//!
//! The detector replays a time-sorted [`Trace`] and flags every pair of
//! conflicting cost-array accesses (same address, different processors,
//! at least one write) that is not ordered by happens-before. The only
//! synchronization edges are the inter-iteration barriers, which the
//! producers record as the per-reference `epoch` field: an epoch change
//! is a full barrier, joining every processor's vector clock into every
//! other's.
//!
//! References are processed in barrier-epoch-major order (stable within
//! an epoch), which realizes the barrier join exactly even when producer
//! timestamps tie across the barrier. Because membership of a pair in a
//! race only depends on *which epoch* each access ran in and *which
//! processor* issued it — never on the sub-epoch interleaving — the set
//! of reported races is invariant under stable reorderings of same-time
//! references, a property the crate's proptests pin down.
//!
//! Shadow state is per-address, per-processor *last* read and write
//! (the FastTrack compression): a racing address is reported once per
//! `(address, epoch, processor pair, access kinds)`, not once per
//! dynamic occurrence.

use std::collections::{BTreeMap, BTreeSet};

use locus_coherence::{MemRef, RefKind, Trace};

use crate::vclock::VectorClock;

/// Which kinds of access collide in a race pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceKind {
    /// Two unordered writes (rip-up / commit increments colliding).
    WriteWrite,
    /// An unordered read–write pair (a candidate evaluation racing a
    /// commit or rip-up).
    ReadWrite,
}

/// One detected (deduplicated) race pair.
#[derive(Clone, Debug)]
pub struct RacePair {
    /// Byte address of the contested cost-array cell.
    pub addr: u32,
    /// Barrier epoch both accesses ran in.
    pub epoch: u32,
    /// The access that reached the detector first, with its index into
    /// the analysed trace.
    pub first: MemRef,
    /// Trace index of `first`.
    pub first_idx: usize,
    /// The access that completed the pair.
    pub second: MemRef,
    /// Trace index of `second`.
    pub second_idx: usize,
    /// Write/write or read/write.
    pub kind: RaceKind,
}

impl RacePair {
    /// The write side of the pair (for write/write pairs: the second
    /// access, whose replay position classification uses).
    pub fn write_ref(&self) -> MemRef {
        match self.kind {
            RaceKind::WriteWrite => self.second,
            RaceKind::ReadWrite => {
                if self.first.kind == RefKind::Write {
                    self.first
                } else {
                    self.second
                }
            }
        }
    }

    /// The read side of a read/write pair.
    pub fn read_ref(&self) -> Option<MemRef> {
        match self.kind {
            RaceKind::WriteWrite => None,
            RaceKind::ReadWrite => {
                if self.first.kind == RefKind::Read {
                    Some(self.first)
                } else {
                    Some(self.second)
                }
            }
        }
    }

    /// Deduplication identity: address, epoch, unordered processor
    /// pair, and access kinds.
    pub fn key(&self) -> RaceKey {
        let (lo, hi) = if self.first.proc <= self.second.proc {
            (self.first.proc, self.second.proc)
        } else {
            (self.second.proc, self.first.proc)
        };
        (self.addr, self.epoch, lo, hi, self.kind)
    }
}

/// See [`RacePair::key`].
pub type RaceKey = (u32, u32, u32, u32, RaceKind);

/// What the detector found in one trace.
#[derive(Clone, Debug, Default)]
pub struct DetectionResult {
    /// References analysed.
    pub refs: usize,
    /// Processors that appear in the trace.
    pub procs: usize,
    /// Barrier epochs that appear in the trace.
    pub epochs: u32,
    /// Cross-processor conflicting pairs that *were* ordered by a
    /// barrier (counted against last-access shadow state, like the
    /// races).
    pub synchronized_pairs: u64,
    /// Unordered conflicting pairs, one per [`RacePair::key`].
    pub races: Vec<RacePair>,
}

/// Last access by one processor to one address.
#[derive(Clone, Copy)]
struct Access {
    /// The accessor's own logical time (its vector-clock component) at
    /// the access.
    clock: u64,
    r: MemRef,
    idx: usize,
}

/// Per-address FastTrack shadow cell: last write and last read per proc.
struct Shadow {
    writes: Vec<Option<Access>>,
    reads: Vec<Option<Access>>,
}

/// Runs race detection over `trace`, which must be time-sorted (the
/// producers' merged order; see [`Trace::sort_by_time`]).
pub fn detect(trace: &Trace) -> DetectionResult {
    debug_assert!(trace.is_sorted(), "detect() expects a time-sorted trace");
    let refs = trace.refs();
    let n_procs = refs.iter().map(|r| r.proc as usize + 1).max().unwrap_or(0);
    let epochs = refs.iter().map(|r| r.epoch + 1).max().unwrap_or(0);
    let mut result =
        DetectionResult { refs: refs.len(), procs: n_procs, epochs, ..Default::default() };
    if n_procs == 0 {
        return result;
    }

    // Epoch-major processing order (stable: time order within an epoch,
    // program order per processor). For well-formed traces every
    // epoch-e timestamp precedes every epoch-(e+1) timestamp and this
    // sort is the identity; it exists to make barrier placement exact
    // when timestamps tie across a barrier.
    let mut order: Vec<usize> = (0..refs.len()).collect();
    order.sort_by_key(|&i| refs[i].epoch);

    let mut clock: Vec<u64> = vec![0; n_procs];
    let mut vc: Vec<VectorClock> = vec![VectorClock::new(n_procs); n_procs];
    let mut current_epoch = 0u32;
    let mut shadow: BTreeMap<u32, Shadow> = BTreeMap::new();
    let mut seen: BTreeSet<RaceKey> = BTreeSet::new();

    for &i in &order {
        let r = refs[i];
        if r.epoch > current_epoch {
            // Barrier: everything before the epoch change happens-before
            // everything after. Join all clocks into a release clock and
            // re-acquire it everywhere.
            let mut release = VectorClock::new(n_procs);
            for c in &vc {
                release.join(c);
            }
            for c in &mut vc {
                c.join(&release);
            }
            current_epoch = r.epoch;
        }

        let p = r.proc as usize;
        clock[p] += 1;
        vc[p].set(p, clock[p]);

        let cell = shadow
            .entry(r.addr)
            .or_insert_with(|| Shadow { writes: vec![None; n_procs], reads: vec![None; n_procs] });

        // Conflict checks against every other processor's last accesses.
        for q in 0..n_procs {
            if q == p {
                continue; // program order; never a race, not counted
            }
            if let Some(w) = cell.writes[q] {
                if vc[p].has_observed(q, w.clock) {
                    result.synchronized_pairs += 1;
                } else {
                    let kind = if r.kind == RefKind::Write {
                        RaceKind::WriteWrite
                    } else {
                        RaceKind::ReadWrite
                    };
                    push_race(&mut result.races, &mut seen, w, r, i, kind);
                }
            }
            if r.kind == RefKind::Write {
                if let Some(rd) = cell.reads[q] {
                    if vc[p].has_observed(q, rd.clock) {
                        result.synchronized_pairs += 1;
                    } else {
                        push_race(&mut result.races, &mut seen, rd, r, i, RaceKind::ReadWrite);
                    }
                }
            }
        }

        let access = Access { clock: clock[p], r, idx: i };
        match r.kind {
            RefKind::Write => cell.writes[p] = Some(access),
            RefKind::Read => cell.reads[p] = Some(access),
        }
    }
    result
}

fn push_race(
    races: &mut Vec<RacePair>,
    seen: &mut BTreeSet<RaceKey>,
    prior: Access,
    r: MemRef,
    idx: usize,
    kind: RaceKind,
) {
    let pair = RacePair {
        addr: r.addr,
        epoch: r.epoch,
        first: prior.r,
        first_idx: prior.idx,
        second: r,
        second_idx: idx,
        kind,
    };
    if seen.insert(pair.key()) {
        races.push(pair);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wref(time: u64, proc: u32, addr: u32, epoch: u32, delta: i8) -> MemRef {
        MemRef::new(time, proc, addr, RefKind::Write).with_epoch(epoch).with_delta(delta)
    }

    fn rref(time: u64, proc: u32, addr: u32, epoch: u32, wire: u32) -> MemRef {
        MemRef::new(time, proc, addr, RefKind::Read).with_epoch(epoch).with_wire(wire)
    }

    #[test]
    fn empty_trace_has_no_races() {
        let d = detect(&Trace::new());
        assert_eq!(d.refs, 0);
        assert!(d.races.is_empty());
        assert_eq!(d.synchronized_pairs, 0);
    }

    #[test]
    fn single_processor_never_races() {
        let t: Trace =
            [wref(0, 0, 4, 0, 1), rref(1, 0, 4, 0, 7), wref(2, 0, 4, 0, -1), wref(3, 0, 4, 1, 1)]
                .into_iter()
                .collect();
        let d = detect(&t);
        assert!(d.races.is_empty());
        assert_eq!(d.synchronized_pairs, 0, "same-proc pairs are not counted");
    }

    #[test]
    fn same_epoch_cross_proc_conflicts_race() {
        let t: Trace =
            [wref(0, 0, 8, 0, 1), rref(5, 1, 8, 0, 3), wref(9, 1, 8, 0, 1)].into_iter().collect();
        let d = detect(&t);
        let kinds: Vec<RaceKind> = d.races.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RaceKind::ReadWrite));
        assert!(kinds.contains(&RaceKind::WriteWrite));
        assert_eq!(d.synchronized_pairs, 0);
    }

    #[test]
    fn barrier_orders_cross_epoch_conflicts() {
        let t: Trace =
            [wref(0, 0, 8, 0, 1), wref(10, 1, 8, 1, 1), rref(11, 1, 8, 1, 2)].into_iter().collect();
        let d = detect(&t);
        assert!(d.races.is_empty(), "{:?}", d.races);
        // proc 1's write and read each find proc 0's write barrier-ordered.
        assert_eq!(d.synchronized_pairs, 2);
        assert_eq!(d.epochs, 2);
    }

    #[test]
    fn reads_do_not_conflict_with_reads() {
        let t: Trace =
            [rref(0, 0, 8, 0, 1), rref(1, 1, 8, 0, 2), rref(2, 2, 8, 0, 3)].into_iter().collect();
        let d = detect(&t);
        assert!(d.races.is_empty());
        assert_eq!(d.synchronized_pairs, 0);
    }

    #[test]
    fn races_are_deduplicated_by_key() {
        // Two procs ping-ponging writes on one addr in one epoch: many
        // dynamic conflicts, one reported WW pair.
        let t: Trace = (0..10).map(|i| wref(i, (i % 2) as u32, 8, 0, 1)).collect();
        let d = detect(&t);
        assert_eq!(d.races.len(), 1);
        assert_eq!(d.races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn race_pair_accessors_identify_sides() {
        let t: Trace = [wref(0, 0, 8, 0, -1), rref(5, 1, 8, 0, 3)].into_iter().collect();
        let d = detect(&t);
        assert_eq!(d.races.len(), 1);
        let pair = &d.races[0];
        assert_eq!(pair.kind, RaceKind::ReadWrite);
        assert_eq!(pair.write_ref().delta, -1);
        assert_eq!(pair.read_ref().expect("rw pair has a read").wire, 3);
    }

    #[test]
    fn epoch_major_order_tolerates_timestamp_ties_at_barriers() {
        // An epoch-1 ref and an epoch-0 ref share time 10; whichever
        // order they appear in, the epoch-0 pair (procs 0,1 on addr 8)
        // must race and the epoch-1 access must be barrier-ordered.
        for flip in [false, true] {
            let mut a = vec![wref(0, 0, 8, 0, 1), wref(10, 1, 8, 0, 1), wref(10, 2, 8, 1, 1)];
            if flip {
                a.swap(1, 2);
            }
            let t: Trace = a.into_iter().collect();
            let d = detect(&t);
            assert_eq!(d.races.len(), 1, "flip={flip}");
            let k = d.races[0].key();
            assert_eq!((k.2, k.3), (0, 1), "flip={flip}");
        }
    }
}
