//! Benign vs quality-affecting classification of detected races.
//!
//! The paper routes with an unlocked shared cost array on purpose: "the
//! cost array is not locked [...] the penalty is that some wires may be
//! routed with slightly stale data" (§3). Most races are therefore
//! *benign by design* — increments commute, and a stale read usually
//! picks the same two-bend route anyway. This module makes that claim
//! checkable per race pair:
//!
//! * **write/write** — the two increments are replayed in both orders
//!   from the reconstructed cell value. Addition commutes, so the pair
//!   is benign unless one order drives the cell through the saturating
//!   zero floor (a rip-up decrement racing ahead of the commit it
//!   undoes), in which case the final values differ.
//! * **read/write** — the reading wire's two-bend evaluation is re-run
//!   twice against the replayed array: once with the racing write
//!   applied to the contested cell and once without. If the winning
//!   route is identical either way, the stale read could not have
//!   changed the routing decision: benign. Otherwise quality-affecting.
//!
//! Both checks are deterministic approximations: the replay reconstructs
//! the globally time-ordered value sequence (atomic increments lose
//! nothing, so this is the value the hardware would converge to), and
//! the read/write check perturbs only the contested cell, holding the
//! rest of the array at its replay state.

use locus_circuit::{Circuit, GridCell};
use locus_coherence::{RefKind, Trace};
use locus_router::router::route_wire;
use locus_router::CostView;

use crate::race::{RaceKind, RacePair};

/// Classification verdict for one race pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceClass {
    /// Both orders of the pair yield the same array values and the same
    /// route decision.
    Benign,
    /// The orders diverge: a saturating underflow or a changed two-bend
    /// winner.
    QualityAffecting,
}

/// A race pair with its verdict.
#[derive(Clone, Debug)]
pub struct ClassifiedRace {
    /// The detected pair.
    pub pair: RacePair,
    /// Benign or quality-affecting.
    pub class: RaceClass,
    /// One-line justification of the verdict.
    pub reason: &'static str,
}

impl ClassifiedRace {
    /// Whether the pair was classified benign.
    pub fn is_benign(&self) -> bool {
        self.class == RaceClass::Benign
    }
}

/// Decodes a trace byte address back to its cost-array cell (addresses
/// are `locus_shmem::cell_addr`: `(channel * grids + x) * 2`).
pub fn addr_cell(addr: u32, grids: u16) -> GridCell {
    let slot = addr / 2;
    GridCell::new((slot / grids as u32) as u16, (slot % grids as u32) as u16)
}

/// The replayed cost array with one cell optionally overridden — the
/// "what if the racing write had (not) landed" view.
struct ReplayView<'a> {
    values: &'a [u32],
    channels: u16,
    grids: u16,
    override_cell: usize,
    override_value: u32,
}

impl CostView for ReplayView<'_> {
    fn channels(&self) -> u16 {
        self.channels
    }
    fn grids(&self) -> u16 {
        self.grids
    }
    fn cost_at(&self, cell: GridCell) -> u32 {
        let idx = cell.channel as usize * self.grids as usize + cell.x as usize;
        if idx == self.override_cell {
            self.override_value
        } else {
            self.values[idx]
        }
    }
}

/// Applies a saturating delta the way the threaded router's atomics do.
fn apply_delta(value: u32, delta: i8) -> u32 {
    if delta >= 0 {
        value.saturating_add(delta as u32)
    } else {
        value.saturating_sub((-(delta as i32)) as u32)
    }
}

/// Whether applying `first` then `second` to `value` stays off the zero
/// floor; returns the final value alongside.
fn replay_order(value: u32, first: i8, second: i8) -> (u32, bool) {
    let mut clamped = false;
    let mut v = value;
    for d in [first, second] {
        if d < 0 && v < (-(d as i32)) as u32 {
            clamped = true;
        }
        v = apply_delta(v, d);
    }
    (v, clamped)
}

/// Classifies every race pair by replaying the trace's write deltas up
/// to each pair's later access and re-evaluating the contested decision
/// under both orders. `races` must come from detecting `trace`; the
/// trace supplies the replay order (its stored order, which detection
/// also used for indices).
pub fn classify_races(
    circuit: &Circuit,
    trace: &Trace,
    races: Vec<RacePair>,
    channel_overshoot: u16,
) -> Vec<ClassifiedRace> {
    let grids = circuit.grids;
    let n_cells = circuit.channels as usize * grids as usize;
    let mut values = vec![0u32; n_cells];
    let cell_idx = |addr: u32| {
        let c = addr_cell(addr, grids);
        c.channel as usize * grids as usize + c.x as usize
    };

    let n = races.len();
    let min_of = |p: &RacePair| p.first_idx.min(p.second_idx);
    let max_of = |p: &RacePair| p.first_idx.max(p.second_idx);
    let mut order_min: Vec<usize> = (0..n).collect();
    order_min.sort_by_key(|&k| min_of(&races[k]));
    let mut order_max: Vec<usize> = (0..n).collect();
    order_max.sort_by_key(|&k| max_of(&races[k]));

    // Sweep the trace once, capturing each pair's cell value before its
    // earlier access (the state both interleavings start from — undoing
    // a clamped decrement after the fact would be lossy) and issuing the
    // verdict just before its later access.
    let mut before = vec![0u32; n];
    let mut verdicts: Vec<Option<ClassifiedRace>> = (0..n).map(|_| None).collect();
    let (mut mi, mut ma) = (0usize, 0usize);
    for (i, r) in trace.refs().iter().enumerate() {
        while mi < n && min_of(&races[order_min[mi]]) == i {
            let k = order_min[mi];
            before[k] = values[cell_idx(races[k].addr)];
            mi += 1;
        }
        while ma < n && max_of(&races[order_max[ma]]) == i {
            let k = order_max[ma];
            verdicts[k] = Some(classify_one(
                circuit,
                &values,
                races[k].clone(),
                before[k],
                channel_overshoot,
            ));
            ma += 1;
        }
        if r.kind == RefKind::Write {
            let idx = cell_idx(r.addr);
            values[idx] = apply_delta(values[idx], r.delta);
        }
    }
    // Pairs indexed at/after trace end (defensive; cannot happen for
    // races detected on this trace).
    while ma < n {
        let k = order_max[ma];
        verdicts[k] =
            Some(classify_one(circuit, &values, races[k].clone(), before[k], channel_overshoot));
        ma += 1;
    }
    verdicts.into_iter().map(|v| v.expect("every pair classified")).collect()
}

/// Classifies one pair against the replay state: `values` as of just
/// before the pair's later access (the earlier access's delta, if a
/// write, already applied), and `before` the cell value captured just
/// before the earlier access.
fn classify_one(
    circuit: &Circuit,
    values: &[u32],
    pair: RacePair,
    before: u32,
    channel_overshoot: u16,
) -> ClassifiedRace {
    let grids = circuit.grids;
    let cell = addr_cell(pair.addr, grids);
    let idx = cell.channel as usize * grids as usize + cell.x as usize;
    let current = values[idx];

    match pair.kind {
        RaceKind::WriteWrite => {
            // Replay both orders from the value both interleavings
            // start from.
            let (d_first, d_second) = (pair.first.delta, pair.second.delta);
            let (v_ab, clamp_ab) = replay_order(before, d_first, d_second);
            let (v_ba, clamp_ba) = replay_order(before, d_second, d_first);
            if v_ab == v_ba && !clamp_ab && !clamp_ba {
                ClassifiedRace { pair, class: RaceClass::Benign, reason: "increments commute" }
            } else {
                ClassifiedRace {
                    pair,
                    class: RaceClass::QualityAffecting,
                    reason: "write order reaches the saturating zero floor",
                }
            }
        }
        RaceKind::ReadWrite => {
            let write = pair.write_ref();
            let read = pair.read_ref().expect("read/write pair has a read");
            // Value the read sees with / without the racing write. When
            // the read is the later access the sweep already applied the
            // write; otherwise apply it here.
            let (with_write, without_write) = if pair.second.kind == RefKind::Read {
                (current, apply_delta(current, -write.delta))
            } else {
                (apply_delta(current, write.delta), current)
            };
            if with_write == without_write {
                return ClassifiedRace {
                    pair,
                    class: RaceClass::Benign,
                    reason: "write does not change the observed value",
                };
            }
            let wire_id = read.wire as usize;
            if read.wire == locus_coherence::MemRef::NO_WIRE || wire_id >= circuit.wire_count() {
                // Cannot re-evaluate an unattributable read; a changed
                // value with no decision to re-run is reported as
                // quality-affecting (conservative).
                return ClassifiedRace {
                    pair,
                    class: RaceClass::QualityAffecting,
                    reason: "observed value changes and the read has no attributable wire",
                };
            }
            let wire = circuit.wire(wire_id);
            let base = ReplayView {
                values,
                channels: circuit.channels,
                grids,
                override_cell: idx,
                override_value: with_write,
            };
            let eval_with = route_wire(&base, wire, channel_overshoot);
            let alt = ReplayView { override_value: without_write, ..base };
            let eval_without = route_wire(&alt, wire, channel_overshoot);
            if eval_with.route == eval_without.route {
                ClassifiedRace {
                    pair,
                    class: RaceClass::Benign,
                    reason: "two-bend winner identical under either order",
                }
            } else {
                ClassifiedRace {
                    pair,
                    class: RaceClass::QualityAffecting,
                    reason: "stale read changes the two-bend winner",
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::race::detect;
    use locus_circuit::presets;
    use locus_coherence::MemRef;

    fn wref(time: u64, proc: u32, addr: u32, epoch: u32, delta: i8) -> MemRef {
        MemRef::new(time, proc, addr, RefKind::Write).with_epoch(epoch).with_delta(delta)
    }

    #[test]
    fn addr_cell_inverts_cell_addr() {
        for (channel, x, grids) in [(0u16, 0u16, 341u16), (2, 5, 341), (7, 0, 13)] {
            let addr = locus_shmem_cell_addr(channel, x, grids);
            let cell = addr_cell(addr, grids);
            assert_eq!((cell.channel, cell.x), (channel, x));
        }
    }

    // Local copy of the address formula to avoid a dev-only crate edge.
    fn locus_shmem_cell_addr(channel: u16, x: u16, grids: u16) -> u32 {
        (channel as u32 * grids as u32 + x as u32) * 2
    }

    #[test]
    fn colliding_increments_are_benign() {
        let c = presets::tiny();
        let t: Trace = [wref(0, 0, 4, 0, 1), wref(1, 1, 4, 0, 1)].into_iter().collect();
        let races = detect(&t).races;
        assert_eq!(races.len(), 1);
        let classified = classify_races(&c, &t, races, 1);
        assert_eq!(classified[0].class, RaceClass::Benign);
    }

    #[test]
    fn ripup_racing_past_zero_is_quality_affecting() {
        // Cell starts at 0; a −1 rip-up races a +1 commit. The −1-first
        // order saturates at the floor, so the orders disagree.
        let c = presets::tiny();
        let t: Trace = [wref(0, 0, 4, 0, -1), wref(1, 1, 4, 0, 1)].into_iter().collect();
        let races = detect(&t).races;
        assert_eq!(races.len(), 1);
        let classified = classify_races(&c, &t, races, 1);
        assert_eq!(classified[0].class, RaceClass::QualityAffecting);
    }

    #[test]
    fn read_write_verdict_reruns_the_evaluator() {
        // A read for wire 0 races a +1 commit on a cell; the verdict
        // must come from re-running the two-bend evaluation, and with a
        // +1 on an otherwise-zero array the winner is unchanged for the
        // tiny circuit's wire 0 → benign.
        let c = presets::tiny();
        let grids = c.grids;
        let wire = c.wire(0);
        let pin_cell = wire.pins[0].cell();
        let addr = locus_shmem_cell_addr(pin_cell.channel, pin_cell.x, grids);
        let t: Trace = [
            MemRef::new(0, 0, addr, RefKind::Read).with_epoch(0).with_wire(0),
            wref(1, 1, addr, 0, 1),
        ]
        .into_iter()
        .collect();
        let races = detect(&t).races;
        assert_eq!(races.len(), 1);
        let classified = classify_races(&c, &t, races, 1);
        // Either verdict is legal in principle; what we pin down is that
        // classification ran the evaluator path (reason string).
        assert!(
            classified[0].reason.contains("two-bend"),
            "unexpected reason {:?}",
            classified[0].reason
        );
    }
}
