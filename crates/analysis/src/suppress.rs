//! Inline lint suppressions.
//!
//! A finding can be waived at its site with a comment:
//!
//! ```text
//! Instant::now() // lint: allow(determinism)
//! ```
//!
//! or, for a whole line, with a standalone comment directly above it:
//!
//! ```text
//! // lint: allow(no-unwrap, determinism)
//! let t = map.get(&k).unwrap();
//! ```
//!
//! A suppression names its rules explicitly — there is no blanket
//! `allow(*)` — and must *earn its keep*: one that matches no finding
//! is itself reported as an `unused-suppression` violation, so stale
//! waivers cannot accumulate as the code under them improves. (The
//! ratchet would otherwise let a dormant suppression silently re-arm
//! years later.) `unused-suppression` findings cannot themselves be
//! suppressed.

use crate::lexer::{TokKind, Tokens};
use crate::lint::Violation;
use std::path::Path;

/// One parsed suppression comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// 1-based line of the comment itself.
    pub line: usize,
    /// The line whose findings it suppresses (its own line when inline
    /// after code, the next line when standalone).
    pub applies_to: usize,
    /// Rules it names.
    pub rules: Vec<String>,
    /// The comment text, for unused-suppression excerpts.
    pub excerpt: String,
}

/// Extracts suppressions from a file's comment tokens.
pub fn collect(toks: &Tokens<'_>) -> Vec<Suppression> {
    let all = toks.toks();
    let mut out = Vec::new();
    for (i, t) in all.iter().enumerate() {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let body = toks
            .text(t)
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim();
        let Some(rest) = body.strip_prefix("lint:") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else { continue };
        let Some(end) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..end]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            continue;
        }
        let line = toks.line_of(t.start);
        // Inline if any code token precedes the comment on its line.
        let inline = all[..i]
            .iter()
            .rev()
            .take_while(|p| toks.line_of(p.start) == line)
            .any(|p| !matches!(p.kind, TokKind::LineComment | TokKind::BlockComment));
        let applies_to = if inline { line } else { line + 1 };
        out.push(Suppression { line, applies_to, rules, excerpt: body.to_string() });
    }
    out
}

/// Applies suppressions to raw findings: returns the surviving
/// violations (with `unused-suppression` findings appended) plus the
/// number of findings suppressed.
pub fn apply(
    rel: &Path,
    raw: Vec<Violation>,
    mut sups: Vec<Suppression>,
) -> (Vec<Violation>, usize) {
    let mut used = vec![false; sups.len()];
    let mut kept = Vec::with_capacity(raw.len());
    let mut suppressed = 0usize;
    for v in raw {
        let hit = sups
            .iter()
            .enumerate()
            .find(|(_, s)| s.applies_to == v.line && s.rules.iter().any(|r| r == v.rule));
        match hit {
            Some((i, _)) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(v),
        }
    }
    for (i, s) in sups.drain(..).enumerate() {
        if !used[i] {
            kept.push(Violation {
                file: rel.to_path_buf(),
                line: s.line,
                rule: "unused-suppression",
                excerpt: s.excerpt,
            });
        }
    }
    kept.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use crate::lint::scan_source;
    use std::path::Path;

    fn demo(src: &str) -> crate::lint::FileScan {
        scan_source(Path::new("crates/demo/src/lib.rs"), src)
    }

    #[test]
    fn inline_suppression_waives_same_line() {
        let scan = demo("fn f() { let _ = c().unwrap(); } // lint: allow(no-unwrap)\n");
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.suppressed, 1);
    }

    #[test]
    fn standalone_suppression_waives_next_line() {
        let scan = demo("// lint: allow(no-unwrap)\nfn f() { let _ = c().unwrap(); }\n");
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.suppressed, 1);
    }

    #[test]
    fn suppression_is_rule_specific() {
        // The suppression names the wrong rule: the finding survives
        // AND the suppression reports as unused.
        let scan = demo("fn f() { let _ = c().unwrap(); } // lint: allow(determinism)\n");
        let rules: Vec<&str> = scan.violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, ["no-unwrap", "unused-suppression"], "{:?}", scan.violations);
    }

    #[test]
    fn unused_suppressions_are_findings() {
        let scan = demo("// lint: allow(no-seqcst)\nfn clean() {}\n");
        assert_eq!(scan.violations.len(), 1);
        assert_eq!(scan.violations[0].rule, "unused-suppression");
        assert_eq!(scan.violations[0].line, 1);
    }

    #[test]
    fn one_suppression_covers_multiple_rules_and_findings() {
        let src = "\
// lint: allow(no-unwrap, determinism)
fn f(m: &M) { let _ = m.get(0).unwrap(); let _ = Instant::now(); }
";
        let scan = demo(src);
        assert!(scan.violations.is_empty(), "{:?}", scan.violations);
        assert_eq!(scan.suppressed, 2);
    }

    #[test]
    fn a_gap_line_breaks_the_standalone_binding() {
        let scan = demo("// lint: allow(no-unwrap)\n\nfn f() { let _ = c().unwrap(); }\n");
        let rules: Vec<&str> = scan.violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, ["unused-suppression", "no-unwrap"], "{:?}", scan.violations);
    }
}
