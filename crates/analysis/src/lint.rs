//! The workspace concurrency lint.
//!
//! A plain-text scan (no parser dependency — the workspace is kept
//! dependency-free beyond its vendored shims) over every library source
//! file in the workspace, enforcing the concurrency discipline the
//! routers rely on:
//!
//! 1. **No `Ordering::SeqCst`.** The shared cost array is deliberately
//!    relaxed (the paper's unlocked array); a stray SeqCst hides a
//!    misunderstanding, not a fix.
//! 2. **No raw thread spawns** outside the three audited executors
//!    (`locus_bench::sweep`'s scoped pool, `locus_shmem::parallel`'s
//!    router threads, and `locus_service::pool`'s job workers).
//!    Everything else must go through those.
//! 3. **No `.unwrap()` in library code.** Use `expect` with a message
//!    stating the invariant. Binaries (`src/bin/`) may unwrap.
//! 4. **Atomics confined to audited modules** (`shmem::parallel`,
//!    `router::engine`, `bench::sweep`, `service::pool`): every relaxed
//!    access in the workspace is in a file the race analysis covers.
//! 5. **No panics in the message-passing protocol** (`crates/msgpass/src/`):
//!    a lost or duplicated packet must degrade into a
//!    [`DegradedReason`](../../msgpass/sim/struct.DegradedReason.html)
//!    outcome, never abort the simulation, so `panic!`, `unreachable!`,
//!    `todo!`, and `unimplemented!` are banned from its library paths.
//!
//! Comment lines and everything below a top-level `#[cfg(test)]`
//! (test modules sit at the bottom of files, by workspace convention)
//! are exempt. `vendor/` and generated `target/` trees are never
//! scanned. The `lint` binary (`cargo run -p locus-analysis --bin
//! lint`) wires this into CI.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.excerpt)
    }
}

/// What one lint run scanned and found.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Source files scanned.
    pub files_scanned: usize,
    /// Violations, in path order.
    pub violations: Vec<Violation>,
}

impl LintOutcome {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Files where spawning threads is the audited mechanism.
const SPAWN_ALLOWED: &[&str] =
    &["crates/bench/src/sweep.rs", "crates/shmem/src/parallel.rs", "crates/service/src/pool.rs"];

/// The lint's own implementation names every banned pattern in string
/// literals; scanning it would flag the rules themselves.
const LINT_SELF: &str = "crates/analysis/src/lint.rs";

/// Files whose atomics the race analysis audits.
const ATOMICS_ALLOWED: &[&str] = &[
    "crates/shmem/src/parallel.rs",
    "crates/shmem/src/shard.rs",
    "crates/router/src/engine.rs",
    "crates/bench/src/sweep.rs",
    "crates/service/src/pool.rs",
];

/// Library tree where faults must degrade, never abort: the reliability
/// protocol turns lost packets into `DegradedReason` outcomes, and a
/// panic anywhere on that path would void the guarantee.
const NO_PANIC_TREE: &str = "crates/msgpass/src";

/// Panic-family macros banned under [`NO_PANIC_TREE`].
const PANIC_MACROS: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

fn path_is(rel: &Path, allowed: &[&str]) -> bool {
    allowed.iter().any(|a| rel == Path::new(a))
}

/// Scans one file's text. `rel` must be workspace-relative with `/`
/// separators (as produced by [`lint_workspace`]).
pub fn scan_file(rel: &Path, content: &str) -> Vec<Violation> {
    if rel == Path::new(LINT_SELF) {
        return Vec::new();
    }
    let in_bin = rel.components().any(|c| c.as_os_str() == "bin");
    let spawn_ok = path_is(rel, SPAWN_ALLOWED);
    let atomics_ok = path_is(rel, ATOMICS_ALLOWED);
    let no_panic = !in_bin && rel.starts_with(NO_PANIC_TREE);
    let mut violations = Vec::new();

    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        // Test modules sit at the bottom of files by convention; stop at
        // the first top-level test gate.
        if raw.starts_with("#[cfg(test)]") {
            break;
        }
        if line.starts_with("//") {
            continue;
        }
        let mut flag = |rule: &'static str| {
            violations.push(Violation {
                file: rel.to_path_buf(),
                line: i + 1,
                rule,
                excerpt: line.to_string(),
            })
        };
        if line.contains("Ordering::SeqCst") || line.contains("ordering::SeqCst") {
            flag("no-seqcst");
        }
        if !spawn_ok && (line.contains("thread::spawn(") || line.contains(".spawn(")) {
            flag("no-raw-spawn");
        }
        if !in_bin && line.contains(".unwrap()") {
            flag("no-unwrap");
        }
        if !atomics_ok
            && (line.contains("sync::atomic") || line.contains("Atomic") && line.contains("::new("))
        {
            flag("no-unaudited-atomics");
        }
        if no_panic && PANIC_MACROS.iter().any(|m| line.contains(m)) {
            flag("no-panic-in-protocol");
        }
    }
    violations
}

fn is_skipped_dir(name: &str) -> bool {
    matches!(name, "target" | "vendor" | ".git")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !is_skipped_dir(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every library source file in the workspace rooted at `root`:
/// `src/` of the facade crate and `src/` of every `crates/*` member
/// (integration tests, benches, and examples are outside `src/` and
/// therefore exempt; `vendor/` is never scanned).
pub fn lint_workspace(root: &Path) -> io::Result<LintOutcome> {
    let mut files = Vec::new();
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk(&facade_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut outcome = LintOutcome::default();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let content = fs::read_to_string(&file)?;
        outcome.violations.extend(scan_file(&rel, &content));
        outcome.files_scanned += 1;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(content: &str) -> Vec<Violation> {
        scan_file(Path::new("crates/demo/src/lib.rs"), content)
    }

    #[test]
    fn seqcst_is_flagged_everywhere() {
        let v = lib("let x = a.load(Ordering::SeqCst);\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-seqcst");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn raw_spawn_is_confined_to_audited_executors() {
        let src = "std::thread::spawn(|| {});\nscope.spawn(|| {});\n";
        assert_eq!(lib(src).len(), 2);
        assert!(scan_file(Path::new("crates/shmem/src/parallel.rs"), src).is_empty());
        assert!(scan_file(Path::new("crates/bench/src/sweep.rs"), src).is_empty());
        assert!(scan_file(Path::new("crates/service/src/pool.rs"), src).is_empty());
        // The allowance is the pool file only, not the whole service crate.
        assert_eq!(scan_file(Path::new("crates/service/src/server.rs"), src).len(), 2);
    }

    #[test]
    fn unwrap_banned_in_libraries_allowed_in_bins() {
        let src = "let v = compute().unwrap();\n";
        let v = lib(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert!(scan_file(Path::new("crates/demo/src/bin/tool.rs"), src).is_empty());
        // unwrap_or and friends are fine.
        assert!(lib("let v = compute().unwrap_or(1);\n").is_empty());
        // The service crate is covered from day one: no carve-out exists.
        assert_eq!(scan_file(Path::new("crates/service/src/server.rs"), src).len(), 1);
    }

    #[test]
    fn atomics_confined_to_audited_modules() {
        let src = "use std::sync::atomic::AtomicU32;\nlet c = AtomicU32::new(0);\n";
        let v = lib(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "no-unaudited-atomics"));
        assert!(scan_file(Path::new("crates/router/src/engine.rs"), src).is_empty());
    }

    #[test]
    fn panics_banned_in_msgpass_library_paths() {
        let src = "panic!(\"lost packet\");\nunreachable!();\n";
        let v = scan_file(Path::new("crates/msgpass/src/reliable.rs"), src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "no-panic-in-protocol"));
        // Other crates' libraries and msgpass test modules are exempt.
        assert!(lib(src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn t() { panic!(\"boom\"); } }\n";
        assert!(scan_file(Path::new("crates/msgpass/src/node.rs"), test_src).is_empty());
    }

    #[test]
    fn comments_and_test_modules_are_exempt() {
        let src = "\
// Ordering::SeqCst in a comment is fine.
/// .unwrap() in docs is fine.
fn ok() {}
#[cfg(test)]
mod tests {
    fn t() { let _ = compute().unwrap(); }
}
";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The lint's own acceptance test: run it on this workspace.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/analysis sits two levels below the workspace root");
        let outcome = lint_workspace(root).expect("workspace tree is readable");
        // 83 files as of the memory-backend refactor (mesh arbiter +
        // coherence model registry); the floor keeps the walker honest.
        assert!(outcome.files_scanned > 80, "expected to scan the whole workspace");
        assert!(
            outcome.is_clean(),
            "workspace lint violations:\n{}",
            outcome.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
