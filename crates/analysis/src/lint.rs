//! The workspace static-analysis pass.
//!
//! What used to be a plain-text line scan is now a genuine pipeline:
//! every library source file is tokenized by the hand-rolled lexer
//! ([`crate::lexer`] — no parser dependency, matching the workspace's
//! dependency-free ethos), mapped to its real module identity by the
//! module-tree resolver ([`crate::modtree`]), and checked by every rule
//! in the registry ([`crate::rules`]). Because rules match token
//! sequences, `"SeqCst"` inside a string literal or a comment can no
//! longer trip anything, and because `#[cfg(test)]` scoping is
//! token-span exact, a test module exempts only itself — library code
//! *after* a bottom-of-file test module is scanned (the old scanner's
//! known false exemption).
//!
//! Findings can be waived inline with `// lint: allow(<rule>)`
//! ([`crate::suppress`]; unused waivers are themselves findings), and
//! CI ratchets the result against the committed `lint-baseline.json`
//! ([`crate::baseline`]): new findings fail even when a rule lands with
//! pre-existing hits, and the scanned-file count may never drop below
//! the baseline floor. The `lint` binary (`cargo run -p locus-analysis
//! --bin lint`) wires all of this into CI and emits machine-readable
//! JSON findings ([`crate::report::lint_findings_json`]).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind};
use crate::modtree::{map_workspace, ModInfo};
use crate::rules::{registry, test_spans, FileCtx};
use crate::suppress;

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.excerpt)
    }
}

/// What scanning one file produced.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Surviving violations (suppressed ones removed,
    /// `unused-suppression` findings appended), in line order.
    pub violations: Vec<Violation>,
    /// Findings waived by an inline suppression.
    pub suppressed: usize,
}

/// What one lint run scanned and found.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Source files scanned.
    pub files_scanned: usize,
    /// Violations, in path order.
    pub violations: Vec<Violation>,
    /// Findings waived by inline suppressions, workspace-wide.
    pub suppressed: usize,
}

impl LintOutcome {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scans one file's text against every registered rule. `rel` must be
/// workspace-relative with `/` separators; `module` is its resolved
/// identity (see [`crate::modtree::ModTree::info`]).
pub fn scan_file(rel: &Path, module: &ModInfo, content: &str) -> FileScan {
    let toks = match lex(content) {
        Ok(toks) => toks,
        Err(e) => {
            // A file the lexer cannot finish is a finding, not a pass:
            // rules cannot vouch for code they never saw.
            return FileScan {
                violations: vec![Violation {
                    file: rel.to_path_buf(),
                    line: e.line,
                    rule: "syntax",
                    excerpt: e.to_string(),
                }],
                suppressed: 0,
            };
        }
    };
    let code: Vec<usize> = (0..toks.toks().len())
        .filter(|&i| !matches!(toks.toks()[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let in_test = test_spans(&toks, &code);
    let ctx = FileCtx { rel, module, toks: &toks, code: &code, in_test: &in_test };
    let mut raw = Vec::new();
    for rule in registry() {
        rule.check(&ctx, &mut raw);
    }
    let sups = suppress::collect(&toks);
    let (violations, suppressed) = suppress::apply(rel, raw, sups);
    FileScan { violations, suppressed }
}

/// [`scan_file`] with the module identity derived from the path alone
/// (the workspace naming convention) — the entry point unit tests use
/// with synthetic paths.
pub fn scan_source(rel: &Path, content: &str) -> FileScan {
    scan_file(rel, &ModInfo::fallback(rel), content)
}

fn is_skipped_dir(name: &str) -> bool {
    matches!(name, "target" | "vendor" | ".git")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !is_skipped_dir(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every library source file in the workspace rooted at `root`: `src/`
/// of the facade crate and `src/` of every `crates/*` member
/// (integration tests, benches, and examples are outside `src/` and
/// therefore exempt; `vendor/` is never scanned).
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        walk(&facade_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every library source file in the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintOutcome> {
    let tree = map_workspace(root)?;
    let mut outcome = LintOutcome::default();
    for file in workspace_files(root)? {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let content = fs::read_to_string(&file)?;
        let scan = scan_file(&rel, &tree.info(&rel), &content);
        outcome.violations.extend(scan.violations);
        outcome.suppressed += scan.suppressed;
        outcome.files_scanned += 1;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{ratchet, Baseline};

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/analysis sits two levels below the workspace root")
            .to_path_buf()
    }

    #[test]
    fn lexer_self_hosts_on_the_whole_workspace() {
        // Every workspace source file must tokenize with zero errors —
        // the lexer is only trustworthy if it can read the code it
        // polices.
        let root = workspace_root();
        let files = workspace_files(&root).expect("workspace tree is readable");
        assert!(files.len() > 80, "expected to walk the whole workspace, got {}", files.len());
        for file in files {
            let src = fs::read_to_string(&file).expect("source file is readable");
            let toks = lex(&src).unwrap_or_else(|e| panic!("lexing {}: {e}", file.display()));
            // Coverage: tokens are ascending, non-overlapping, and the
            // gaps between them are pure whitespace.
            let mut prev = 0usize;
            for t in toks.toks() {
                assert!(t.start >= prev && t.end >= t.start, "bad span in {}", file.display());
                assert!(
                    src[prev..t.start].chars().all(char::is_whitespace)
                        || src[..t.start].starts_with("#!"),
                    "non-whitespace gap before offset {} in {}",
                    t.start,
                    file.display()
                );
                prev = t.end;
            }
        }
    }

    #[test]
    fn syntax_failures_are_findings_not_passes() {
        let scan = scan_source(Path::new("crates/demo/src/lib.rs"), "fn f() { \"unclosed }\n");
        assert_eq!(scan.violations.len(), 1);
        assert_eq!(scan.violations[0].rule, "syntax");
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The lint's own acceptance test: run it on this workspace and
        // ratchet against the committed baseline. The file-count floor
        // is auto-derived from the baseline, not hardcoded.
        let root = workspace_root();
        let outcome = lint_workspace(&root).expect("workspace tree is readable");
        let baseline_text = fs::read_to_string(root.join("lint-baseline.json"))
            .expect("lint-baseline.json is committed at the workspace root");
        let baseline = Baseline::parse(&baseline_text).expect("committed baseline parses");
        assert!(
            baseline.counts.is_empty(),
            "the committed tree must be clean, with nothing ratcheted"
        );
        let r = ratchet(&baseline, &outcome);
        assert!(
            r.passes() && outcome.is_clean(),
            "workspace lint violations (floor breach: {:?}):\n{}",
            r.floor_breach,
            outcome.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
        assert!(
            outcome.suppressed >= 1,
            "the known wall-clock suppression in shmem::parallel should be exercised"
        );
    }
}
