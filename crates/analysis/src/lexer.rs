//! A hand-rolled Rust lexer for the static-analysis pass.
//!
//! The workspace carries no external parser (the same dependency-free
//! ethos as the hand-rolled JSON in [`crate::report`]), so the lint's
//! token stream comes from this module: a single forward scan that
//! understands everything that used to fool the plain-text scanner —
//! normal and raw strings (any `#` depth), byte strings, char literals
//! vs. lifetimes, nested block comments, raw identifiers, and numeric
//! literals. `"SeqCst"` inside a string is a [`TokKind::Str`] token,
//! not an identifier, so no rule can trip on it.
//!
//! The lexer is *not* a parser: it produces a flat token sequence with
//! byte spans and leaves grammar to the rules, which only ever match
//! short token sequences (`Ordering` `::` `SeqCst`) or single
//! identifiers. Fidelity matters at the token boundary, not beyond it.
//!
//! Every token records its byte span in the source; [`Tokens`] maps
//! spans back to 1-based lines for diagnostics. Lexing is total over
//! valid Rust: the self-hosting test in [`crate::lint`] tokenizes every
//! workspace source file and demands zero errors, and the proptests
//! inject rule keywords into comments and strings to pin down that they
//! never surface as code tokens.

/// Classification of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers; see
    /// [`Tokens::ident_text`] for `r#`-stripping).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`), quotes included.
    Char,
    /// Any string literal — normal, raw, byte, raw byte — delimiters
    /// included.
    Str,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A `//` comment (also `///` and `//!` docs), newline excluded.
    LineComment,
    /// A `/* ... */` comment, nesting handled.
    BlockComment,
    /// Any other punctuation; `::` is emitted as one two-byte token so
    /// path rules can match it directly.
    Punct,
}

/// One token: kind plus byte span into the source.
#[derive(Clone, Copy, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// A lexing failure: unterminated string/comment/char literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the offending token started.
    pub line: usize,
    /// What was being lexed when the input ran out.
    pub what: &'static str,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: unterminated {}", self.line, self.what)
    }
}

/// A lexed file: the source, its tokens, and a line table.
#[derive(Debug)]
pub struct Tokens<'s> {
    src: &'s str,
    toks: Vec<Tok>,
    /// Byte offset of the start of each line (line_starts[0] == 0).
    line_starts: Vec<usize>,
}

impl<'s> Tokens<'s> {
    /// The token slice.
    pub fn toks(&self) -> &[Tok] {
        &self.toks
    }

    /// The source text.
    pub fn src(&self) -> &'s str {
        self.src
    }

    /// Raw text of a token.
    pub fn text(&self, t: &Tok) -> &'s str {
        &self.src[t.start..t.end]
    }

    /// Identifier text with any `r#` raw-identifier prefix stripped, so
    /// `r#SeqCst` cannot evade an identifier rule.
    pub fn ident_text(&self, t: &Tok) -> &'s str {
        let text = self.text(t);
        if t.kind == TokKind::Ident {
            text.strip_prefix("r#").unwrap_or(text)
        } else {
            text
        }
    }

    /// 1-based line containing a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// The full text of a 1-based line, trimmed.
    pub fn line_text(&self, line: usize) -> &'s str {
        let lo = self.line_starts.get(line - 1).copied().unwrap_or(0);
        let hi = self.line_starts.get(line).copied().unwrap_or(self.src.len());
        self.src[lo..hi].trim_end_matches(['\n', '\r']).trim()
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Width in bytes of the UTF-8 character starting at `b[i]`.
fn char_width(b: &[u8], i: usize) -> usize {
    match b[i] {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

struct Lexer<'s> {
    src: &'s str,
    b: &'s [u8],
    i: usize,
    toks: Vec<Tok>,
}

impl<'s> Lexer<'s> {
    fn err(&self, start: usize, what: &'static str) -> LexError {
        let line = 1 + self.src[..start].bytes().filter(|&c| c == b'\n').count();
        LexError { line, what }
    }

    fn push(&mut self, kind: TokKind, start: usize) {
        self.toks.push(Tok { kind, start, end: self.i });
    }

    /// Consumes a `//` comment (terminator excluded).
    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(TokKind::LineComment, start);
    }

    /// Consumes a `/* ... */` comment, honouring nesting.
    fn block_comment(&mut self) -> Result<(), LexError> {
        let start = self.i;
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() {
            if self.b[self.i] == b'/' && self.b.get(self.i + 1) == Some(&b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.b.get(self.i + 1) == Some(&b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    self.push(TokKind::BlockComment, start);
                    return Ok(());
                }
            } else {
                self.i += 1;
            }
        }
        Err(self.err(start, "block comment"))
    }

    /// Consumes a normal (escaped) string body; `self.i` must sit on
    /// the opening quote.
    fn quoted_string(&mut self, start: usize) -> Result<(), LexError> {
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    self.push(TokKind::Str, start);
                    return Ok(());
                }
                _ => self.i += 1,
            }
        }
        Err(self.err(start, "string literal"))
    }

    /// Consumes a raw string body; `self.i` must sit on the first `#`
    /// or the opening quote. Returns false if this is not actually a
    /// raw string opener (e.g. `r#ident`).
    fn raw_string(&mut self, start: usize) -> Result<bool, LexError> {
        let mut j = self.i;
        let mut hashes = 0usize;
        while j < self.b.len() && self.b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if self.b.get(j) != Some(&b'"') {
            return Ok(false);
        }
        self.i = j + 1;
        while self.i < self.b.len() {
            let tail = &self.b[self.i + 1..];
            if self.b[self.i] == b'"'
                && tail.len() >= hashes
                && tail[..hashes].iter().all(|&c| c == b'#')
            {
                self.i += 1 + hashes;
                self.push(TokKind::Str, start);
                return Ok(true);
            }
            self.i += 1;
        }
        Err(self.err(start, "raw string literal"))
    }

    /// Consumes a char/byte-char literal; `self.i` must sit on the
    /// opening `'` and the caller must have decided this is not a
    /// lifetime.
    fn char_literal(&mut self, start: usize) -> Result<(), LexError> {
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.i += 1;
                    self.push(TokKind::Char, start);
                    return Ok(());
                }
                b'\n' => break, // char literals cannot span lines
                _ => self.i += char_width(self.b, self.i),
            }
        }
        Err(self.err(start, "char literal"))
    }

    /// Consumes an identifier body starting at `self.i`.
    fn ident(&mut self, start: usize) {
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push(TokKind::Ident, start);
    }

    /// `'` disambiguation: lifetime/label vs. char literal.
    fn tick(&mut self) -> Result<(), LexError> {
        let start = self.i;
        let next = self.b.get(self.i + 1).copied();
        match next {
            Some(c) if is_ident_start(c) => {
                // Scan the identifier; a trailing quote makes it a char
                // literal ('a'), otherwise it is a lifetime ('a).
                let mut j = self.i + 2;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    self.char_literal(start)
                } else {
                    self.i = j;
                    self.push(TokKind::Lifetime, start);
                    Ok(())
                }
            }
            Some(_) => self.char_literal(start),
            None => Err(self.err(start, "char literal")),
        }
    }

    /// Consumes a numeric literal: digits in any base with `_`
    /// separators and alphabetic suffixes, plus a fraction part when a
    /// digit follows the dot (so `0..n` stays three tokens).
    fn number(&mut self, start: usize) {
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        if self.i + 1 < self.b.len()
            && self.b[self.i] == b'.'
            && self.b[self.i + 1].is_ascii_digit()
        {
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
        }
        self.push(TokKind::Num, start);
    }

    fn run(mut self) -> Result<Vec<Tok>, LexError> {
        // A shebang line is not Rust tokens.
        if self.b.starts_with(b"#!") && self.b.get(2) != Some(&b'[') {
            while self.i < self.b.len() && self.b[self.i] != b'\n' {
                self.i += 1;
            }
        }
        while self.i < self.b.len() {
            let c = self.b[self.i];
            let start = self.i;
            if c.is_ascii_whitespace() {
                self.i += 1;
            } else if c == b'/' && self.b.get(self.i + 1) == Some(&b'/') {
                self.line_comment();
            } else if c == b'/' && self.b.get(self.i + 1) == Some(&b'*') {
                self.block_comment()?;
            } else if c == b'"' {
                self.quoted_string(start)?;
            } else if c == b'r' {
                // r"..." / r#"..."# / r#ident / plain ident.
                self.i += 1;
                if matches!(self.b.get(self.i), Some(&b'"') | Some(&b'#'))
                    && self.raw_string(start)?
                {
                    continue;
                }
                if self.b.get(self.i) == Some(&b'#') {
                    self.i += 1; // raw identifier: r#type
                }
                self.ident(start);
            } else if c == b'b' {
                // b"..." / br"..." / b'x' / plain ident.
                match self.b.get(self.i + 1) {
                    Some(&b'"') => {
                        self.i += 1;
                        self.quoted_string(start)?;
                    }
                    Some(&b'\'') => {
                        self.i += 1;
                        self.char_literal(start)?;
                    }
                    Some(&b'r') => {
                        self.i += 2;
                        if !self.raw_string(start)? {
                            self.ident(start);
                        }
                    }
                    _ => {
                        self.i += 1;
                        self.ident(start);
                    }
                }
            } else if is_ident_start(c) {
                self.i += 1;
                self.ident(start);
            } else if c.is_ascii_digit() {
                self.number(start);
            } else if c == b'\'' {
                self.tick()?;
            } else if c == b':' && self.b.get(self.i + 1) == Some(&b':') {
                self.i += 2;
                self.push(TokKind::Punct, start);
            } else {
                self.i += char_width(self.b, self.i);
                self.push(TokKind::Punct, start);
            }
        }
        Ok(self.toks)
    }
}

/// Tokenizes one source file.
pub fn lex(src: &str) -> Result<Tokens<'_>, LexError> {
    let toks = Lexer { src, b: src.as_bytes(), i: 0, toks: Vec::new() }.run()?;
    let mut line_starts = vec![0usize];
    line_starts.extend(src.bytes().enumerate().filter(|&(_, c)| c == b'\n').map(|(i, _)| i + 1));
    Ok(Tokens { src, toks, line_starts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let t = lex(src).expect("lexes");
        t.toks().iter().map(|k| (k.kind, t.text(k).to_string())).collect()
    }

    #[test]
    fn keywords_in_strings_are_string_tokens() {
        let ks = kinds(r#"let s = "Ordering::SeqCst";"#);
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("SeqCst")));
        assert!(!ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "SeqCst"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        for src in [r##"r"x" "##, r###"r#".unwrap()"# "###, "r##\"a\"#b\"## "] {
            let ks = kinds(src);
            assert_eq!(ks[0].0, TokKind::Str, "{src:?} -> {ks:?}");
            assert_eq!(ks.len(), 1, "{src:?} -> {ks:?}");
        }
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ks = kinds(r##"b"bytes" b'x' br#"raw"# b128"##);
        assert_eq!(ks[0].0, TokKind::Str);
        assert_eq!(ks[1].0, TokKind::Char);
        assert_eq!(ks[2].0, TokKind::Str);
        assert_eq!(ks[3], (TokKind::Ident, "b128".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(ks[0].0, TokKind::BlockComment);
        assert_eq!(ks[1], (TokKind::Ident, "x".to_string()));
        assert!(lex("/* /* unclosed */").is_err());
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("&'a str; 'x'; '\\n'; '\\''; ' '; 'static");
        let lifes: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        let chars: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokKind::Char).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifes, ["'a", "'static"]);
        assert_eq!(chars, ["'x'", "'\\n'", "'\\''", "' '"]);
    }

    #[test]
    fn path_separator_is_one_token() {
        let ks = kinds("Ordering::SeqCst");
        let texts: Vec<_> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["Ordering", "::", "SeqCst"]);
    }

    #[test]
    fn raw_identifiers_normalize() {
        let src = "r#type r#SeqCst";
        let t = lex(src).expect("lexes");
        let idents: Vec<_> = t.toks().iter().map(|k| t.ident_text(k)).collect();
        assert_eq!(idents, ["type", "SeqCst"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let texts: Vec<String> =
            kinds("0..10 1.5 0x1f_u64 1e9 x.0").into_iter().map(|(_, t)| t).collect();
        assert_eq!(texts, ["0", ".", ".", "10", "1.5", "0x1f_u64", "1e9", "x", ".", "0"]);
    }

    #[test]
    fn line_table_maps_offsets() {
        let t = lex("a\nbb\nccc\n").expect("lexes");
        assert_eq!(t.line_of(0), 1);
        assert_eq!(t.line_of(2), 2);
        assert_eq!(t.line_of(5), 3);
        assert_eq!(t.line_text(2), "bb");
    }

    #[test]
    fn unterminated_tokens_error_with_line() {
        let e = lex("fn f() {}\nlet s = \"open").expect_err("unterminated");
        assert_eq!(e.line, 2);
        assert_eq!(e.what, "string literal");
        // `'x` at EOF is a lifetime token, not an unterminated char —
        // but a started escape sequence is unambiguously a char literal.
        assert!(lex("let c = 'x").is_ok());
        assert!(lex("let c = '\\n").is_err());
        assert!(lex("r#\"open").is_err());
    }

    #[test]
    fn tokens_cover_source_with_whitespace_gaps() {
        let src = "fn main() { let s = r#\"x\"#; /* c */ } // done\n";
        let t = lex(src).expect("lexes");
        let mut prev = 0usize;
        for tok in t.toks() {
            assert!(tok.start >= prev, "overlap at {tok:?}");
            assert!(
                src[prev..tok.start].chars().all(char::is_whitespace),
                "gap {:?} not whitespace",
                &src[prev..tok.start]
            );
            prev = tok.end;
        }
        assert!(src[prev..].chars().all(char::is_whitespace));
    }
}
