//! End-to-end analysis entry points: produce a trace from a named
//! engine, run detection + classification, and aggregate the results
//! into the [`AnalysisReport`] the `analyze` subcommand prints and
//! serializes.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use locus_circuit::{Circuit, GridCell};
use locus_coherence::{MemRef, RefKind, Trace};
use locus_msgpass::{MsgPassConfig, MsgPassOutcome, UpdateSchedule};
use locus_obs::{Event, EventKind, Sink};
use locus_router::router::route_wire_scratch;
use locus_router::{CostArray, CostView, EvalScratch, Route, RouterParams};
use locus_shmem::{cell_addr, ShmemConfig, ShmemEmulator, ThreadedRouter};

use crate::classify::{addr_cell, classify_races, ClassifiedRace};
use crate::race::detect;
use crate::staleness::StalenessReport;

/// A full race-analysis result for one engine run.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Canonical engine name the trace came from.
    pub engine: String,
    /// Circuit the run routed.
    pub circuit: String,
    /// Grid columns (needed to decode addresses back to cells).
    pub grids: u16,
    /// Processors in the run.
    pub procs: usize,
    /// References analysed.
    pub refs: usize,
    /// Barrier epochs in the trace.
    pub epochs: u32,
    /// Cross-processor conflicting pairs ordered by a barrier.
    pub synchronized_pairs: u64,
    /// Every deduplicated race pair with its verdict.
    pub races: Vec<ClassifiedRace>,
    /// Per-channel `(channel, races, benign)` counts, densest first.
    pub per_channel: Vec<(u16, usize, usize)>,
    /// Per-wire `(wire, races, benign)` counts, densest first.
    pub per_wire: Vec<(u32, usize, usize)>,
}

impl AnalysisReport {
    /// Detects and classifies races in `trace` (which must be
    /// time-sorted) and aggregates the per-channel / per-wire tables.
    /// `overshoot` is the run's candidate overshoot, reused when
    /// classification re-evaluates a racing wire.
    pub fn build(
        engine: &str,
        procs: usize,
        circuit: &Circuit,
        trace: &Trace,
        overshoot: u16,
    ) -> Self {
        let detection = detect(trace);
        let races = classify_races(circuit, trace, detection.races, overshoot);

        let mut by_channel: BTreeMap<u16, (usize, usize)> = BTreeMap::new();
        let mut by_wire: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
        for c in &races {
            let channel = addr_cell(c.pair.addr, circuit.grids).channel;
            let e = by_channel.entry(channel).or_default();
            e.0 += 1;
            e.1 += c.is_benign() as usize;
            let mut wires = [c.pair.first.wire, c.pair.second.wire];
            if wires[0] == wires[1] {
                wires[1] = MemRef::NO_WIRE;
            }
            for w in wires {
                if w != MemRef::NO_WIRE {
                    let e = by_wire.entry(w).or_default();
                    e.0 += 1;
                    e.1 += c.is_benign() as usize;
                }
            }
        }
        let mut per_channel: Vec<(u16, usize, usize)> =
            by_channel.into_iter().map(|(c, (t, b))| (c, t, b)).collect();
        per_channel.sort_by_key(|&(c, t, _)| (std::cmp::Reverse(t), c));
        let mut per_wire: Vec<(u32, usize, usize)> =
            by_wire.into_iter().map(|(w, (t, b))| (w, t, b)).collect();
        per_wire.sort_by_key(|&(w, t, _)| (std::cmp::Reverse(t), w));

        AnalysisReport {
            engine: engine.to_string(),
            circuit: circuit.name.clone(),
            grids: circuit.grids,
            procs,
            refs: detection.refs,
            epochs: detection.epochs,
            synchronized_pairs: detection.synchronized_pairs,
            races,
            per_channel,
            per_wire,
        }
    }

    /// Races classified benign.
    pub fn benign_count(&self) -> usize {
        self.races.iter().filter(|c| c.is_benign()).count()
    }

    /// Races classified quality-affecting.
    pub fn quality_count(&self) -> usize {
        self.races.len() - self.benign_count()
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "race analysis: {} on {} ({} procs) — {} refs, {} epochs\n",
            self.engine, self.circuit, self.procs, self.refs, self.epochs
        ));
        out.push_str(&format!("  synchronized pairs: {}\n", self.synchronized_pairs));
        out.push_str(&format!(
            "  races: {} total — {} benign, {} quality-affecting\n",
            self.races.len(),
            self.benign_count(),
            self.quality_count()
        ));
        if !self.per_channel.is_empty() {
            let top: Vec<String> = self
                .per_channel
                .iter()
                .take(5)
                .map(|(c, t, b)| format!("ch {c}: {t} ({b} benign)"))
                .collect();
            out.push_str(&format!("  hottest channels: {}\n", top.join(", ")));
        }
        if !self.per_wire.is_empty() {
            let top: Vec<String> = self
                .per_wire
                .iter()
                .take(5)
                .map(|(w, t, b)| format!("wire {w}: {t} ({b} benign)"))
                .collect();
            out.push_str(&format!("  hottest wires: {}\n", top.join(", ")));
        }
        out
    }
}

/// Emits one `RaceDetected` obs event per classified race into `sink`
/// (stamped with the second access's time and processor).
pub fn emit_race_events(report: &AnalysisReport, sink: &mut dyn Sink) {
    if !sink.enabled() {
        return;
    }
    for c in &report.races {
        let wire = c.pair.read_ref().map(|r| r.wire).unwrap_or(c.pair.second.wire);
        sink.record(Event {
            at_ns: c.pair.second.time,
            node: c.pair.second.proc,
            kind: EventKind::RaceDetected { addr: c.pair.addr, wire, benign: c.is_benign() },
        });
    }
}

/// The sequential router's reference trace plus the routes it chose.
#[derive(Debug)]
pub struct SequentialTrace {
    /// Single-processor trace (proc 0, epoch = iteration, one logical
    /// tick per access).
    pub trace: Trace,
    /// Final route of every wire (matches
    /// [`locus_router::SequentialRouter`]).
    pub routes: Vec<Route>,
}

/// A cost view recording the sequential router's reads; the companion
/// of the emulator's `TracedView`, for the engine that otherwise never
/// collects traces.
struct SeqView<'a> {
    cost: &'a CostArray,
    trace: &'a RefCell<Trace>,
    clock: &'a Cell<u64>,
    epoch: u32,
    wire: u32,
}

impl SeqView<'_> {
    fn tick(&self) -> u64 {
        let t = self.clock.get();
        self.clock.set(t + 1);
        t
    }
}

impl CostView for SeqView<'_> {
    fn channels(&self) -> u16 {
        self.cost.channels()
    }
    fn grids(&self) -> u16 {
        self.cost.grids()
    }
    fn cost_at(&self, cell: GridCell) -> u32 {
        self.trace.borrow_mut().push(
            MemRef::new(
                self.tick(),
                0,
                cell_addr(cell.channel, cell.x, self.cost.grids()),
                RefKind::Read,
            )
            .with_epoch(self.epoch)
            .with_wire(self.wire),
        );
        self.cost.cost_at(cell)
    }
}

/// Routes `circuit` with the sequential algorithm (same wire order and
/// rip-up discipline as [`locus_router::SequentialRouter`]) while
/// recording the reference trace the sequential engine itself never
/// collects. One logical tick per access; epoch = iteration.
pub fn trace_sequential(circuit: &Circuit, params: RouterParams) -> SequentialTrace {
    let n = circuit.wire_count();
    let mut cost = CostArray::new(circuit.channels, circuit.grids);
    let trace = RefCell::new(Trace::new());
    let clock = Cell::new(0u64);
    let mut routes: Vec<Option<Route>> = vec![None; n];
    let mut scratch = EvalScratch::default();

    for iteration in 0..params.iterations {
        for (wire_id, slot) in routes.iter_mut().enumerate() {
            let epoch = iteration as u32;
            let tick = || {
                let t = clock.get();
                clock.set(t + 1);
                t
            };
            if let Some(old) = slot.take() {
                for &cell in old.cells() {
                    let t = tick();
                    trace.borrow_mut().push(
                        MemRef::new(
                            t,
                            0,
                            cell_addr(cell.channel, cell.x, circuit.grids),
                            RefKind::Write,
                        )
                        .with_epoch(epoch)
                        .with_wire(wire_id as u32)
                        .with_delta(-1),
                    );
                }
                cost.remove_route(&old);
            }
            let eval = {
                let view = SeqView {
                    cost: &cost,
                    trace: &trace,
                    clock: &clock,
                    epoch,
                    wire: wire_id as u32,
                };
                route_wire_scratch(
                    &view,
                    circuit.wire(wire_id),
                    params.channel_overshoot,
                    &mut scratch,
                )
            };
            for &cell in eval.route.cells() {
                let t = tick();
                trace.borrow_mut().push(
                    MemRef::new(
                        t,
                        0,
                        cell_addr(cell.channel, cell.x, circuit.grids),
                        RefKind::Write,
                    )
                    .with_epoch(epoch)
                    .with_wire(wire_id as u32)
                    .with_delta(1),
                );
            }
            cost.add_route(&eval.route);
            *slot = Some(eval.route);
        }
    }
    let trace = trace.into_inner();
    debug_assert!(trace.is_sorted(), "one tick per access keeps the trace sorted");
    SequentialTrace {
        trace,
        routes: routes.into_iter().map(|r| r.expect("every wire routed")).collect(),
    }
}

/// Resolves `--engine` spellings to the canonical registry name.
fn canonical(engine: &str) -> &str {
    match engine {
        "seq" => "sequential",
        "emul" => "shmem-emul",
        "threads" => "shmem-threads",
        other => other,
    }
}

/// Traces one run of a named engine and analyses it for races.
///
/// Accepted engines: `sequential`/`seq` (always one processor),
/// `shmem-emul`/`emul`, and `shmem-threads`/`threads`. The
/// message-passing engines have no shared-reference trace — audit them
/// with [`audit_staleness`] instead.
pub fn analyze_engine(
    circuit: &Circuit,
    engine: &str,
    procs: usize,
    params: RouterParams,
) -> Result<AnalysisReport, String> {
    let engine = canonical(engine);
    let (trace, procs) = match engine {
        "sequential" => (trace_sequential(circuit, params).trace, 1),
        "shmem-emul" => {
            let cfg = ShmemConfig::new(procs).with_params(params).with_trace();
            let outcome = ShmemEmulator::new(circuit, cfg).run();
            (outcome.trace.ok_or("emulator did not record a trace")?, procs)
        }
        "shmem-threads" => {
            let cfg = ShmemConfig::new(procs).with_params(params).with_trace();
            let outcome = ThreadedRouter::new(circuit, cfg).run();
            (outcome.trace.ok_or("threaded router did not record a trace")?, procs)
        }
        other => {
            return Err(format!(
                "engine '{other}' has no shared-reference trace to analyse \
                 (msgpass engines are audited for replica staleness instead)"
            ))
        }
    };
    Ok(AnalysisReport::build(engine, procs, circuit, &trace, params.channel_overshoot))
}

/// Runs a message-passing engine with replica audits every
/// `audit_every` wires and folds the snapshots into a staleness report.
///
/// Accepted engines: `msgpass-sender` (paper (2,10) sender-initiated
/// schedule) and `msgpass-receiver` ((1,5) receiver-initiated).
pub fn audit_staleness(
    circuit: &Circuit,
    engine: &str,
    procs: usize,
    params: RouterParams,
    audit_every: u32,
) -> Result<(StalenessReport, MsgPassOutcome), String> {
    let schedule = match engine {
        "msgpass-sender" => UpdateSchedule::sender_initiated(2, 10),
        "msgpass-receiver" => UpdateSchedule::receiver_initiated(1, 5),
        other => return Err(format!("'{other}' is not a message-passing engine")),
    };
    let cfg = MsgPassConfig::new(procs, schedule).with_params(params).with_audit_every(audit_every);
    cfg.validate()?;
    let outcome = locus_msgpass::run_msgpass(circuit, cfg);
    let report = StalenessReport::build(&outcome.replica_audits);
    Ok((report, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;
    use locus_obs::RingBufferSink;
    use locus_router::SequentialRouter;

    #[test]
    fn sequential_trace_matches_sequential_router_routes() {
        let c = presets::small();
        let params = RouterParams::default();
        let traced = trace_sequential(&c, params);
        let reference = SequentialRouter::new(&c, params).run();
        assert_eq!(traced.routes, reference.routes);
        assert!(!traced.trace.is_empty());
        assert!(traced.trace.is_sorted());
        assert!(traced.trace.write_count() > 0);
    }

    #[test]
    fn sequential_trace_has_zero_races() {
        let c = presets::small();
        let report = analyze_engine(&c, "seq", 1, RouterParams::default()).expect("seq analyses");
        assert_eq!(report.engine, "sequential");
        assert_eq!(report.procs, 1);
        assert!(report.races.is_empty(), "single-processor trace can never race");
        assert_eq!(report.synchronized_pairs, 0);
        assert!(report.refs > 0);
    }

    #[test]
    fn one_processor_emulator_trace_is_race_free() {
        let c = presets::small();
        let report = analyze_engine(&c, "emul", 1, RouterParams::default()).expect("emul analyses");
        assert!(report.races.is_empty());
    }

    #[test]
    fn emulator_races_appear_with_processors_and_are_classified() {
        let c = presets::small();
        let report =
            analyze_engine(&c, "shmem-emul", 4, RouterParams::default()).expect("emul analyses");
        assert!(report.epochs >= 1);
        assert!(
            !report.races.is_empty(),
            "4 logical procs sharing an unlocked array must produce race pairs"
        );
        assert_eq!(report.benign_count() + report.quality_count(), report.races.len());
        assert!(!report.per_channel.is_empty());
        assert!(!report.per_wire.is_empty());
        assert!(report.render().contains("races:"));
    }

    #[test]
    fn msgpass_staleness_audit_runs() {
        let c = presets::small();
        let (report, outcome) =
            audit_staleness(&c, "msgpass-sender", 4, RouterParams::default(), 2)
                .expect("audit runs");
        assert!(!outcome.deadlocked);
        assert!(report.audits > 0);
        assert!(report.procs >= 1);
    }

    #[test]
    fn unknown_engines_are_rejected_with_names() {
        let c = presets::tiny();
        let err = analyze_engine(&c, "msgpass-sender", 4, RouterParams::default())
            .expect_err("msgpass has no trace");
        assert!(err.contains("staleness"));
        let err = audit_staleness(&c, "sequential", 1, RouterParams::default(), 2)
            .expect_err("sequential is not msgpass");
        assert!(err.contains("sequential"));
    }

    #[test]
    fn race_events_reach_the_sink_and_metrics() {
        let c = presets::small();
        let report =
            analyze_engine(&c, "shmem-emul", 4, RouterParams::default()).expect("emul analyses");
        let mut sink = RingBufferSink::new();
        emit_race_events(&report, &mut sink);
        assert_eq!(sink.len(), report.races.len());
        assert_eq!(sink.metrics().counter("races_detected"), report.races.len() as u64);
    }
}
