//! Machine-readable JSON for the analysis reports.
//!
//! The workspace deliberately carries no serde; like
//! `locus_obs::export`, this module hand-rolls the small, flat JSON the
//! CI artifact and downstream tooling consume. Keys are stable API.

use crate::baseline::Ratchet;
use crate::classify::addr_cell;
use crate::harness::AnalysisReport;
use crate::lint::LintOutcome;
use crate::race::RaceKind;
use crate::staleness::StalenessReport;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes a race-analysis report.
pub fn race_report_json(r: &AnalysisReport) -> String {
    let mut out = String::with_capacity(1024 + r.races.len() * 160);
    out.push_str("{\n");
    out.push_str(&format!("  \"engine\": \"{}\",\n", esc(&r.engine)));
    out.push_str(&format!("  \"circuit\": \"{}\",\n", esc(&r.circuit)));
    out.push_str(&format!("  \"procs\": {},\n", r.procs));
    out.push_str(&format!("  \"refs\": {},\n", r.refs));
    out.push_str(&format!("  \"epochs\": {},\n", r.epochs));
    out.push_str(&format!("  \"synchronized_pairs\": {},\n", r.synchronized_pairs));
    out.push_str(&format!(
        "  \"races\": {{ \"total\": {}, \"benign\": {}, \"quality_affecting\": {} }},\n",
        r.races.len(),
        r.benign_count(),
        r.quality_count()
    ));

    out.push_str("  \"pairs\": [\n");
    for (i, c) in r.races.iter().enumerate() {
        let cell = addr_cell(c.pair.addr, r.grids);
        let kind = match c.pair.kind {
            RaceKind::WriteWrite => "write-write",
            RaceKind::ReadWrite => "read-write",
        };
        let class = if c.is_benign() { "benign" } else { "quality-affecting" };
        let wire = c.pair.read_ref().map(|r| r.wire).unwrap_or(c.pair.second.wire);
        out.push_str(&format!(
            "    {{ \"addr\": {}, \"channel\": {}, \"x\": {}, \"epoch\": {}, \
             \"procs\": [{}, {}], \"kind\": \"{}\", \"wire\": {}, \"class\": \"{}\", \
             \"reason\": \"{}\" }}{}\n",
            c.pair.addr,
            cell.channel,
            cell.x,
            c.pair.epoch,
            c.pair.first.proc,
            c.pair.second.proc,
            kind,
            wire,
            class,
            esc(c.reason),
            if i + 1 < r.races.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"per_channel\": [\n");
    for (i, (channel, total, benign)) in r.per_channel.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"channel\": {channel}, \"races\": {total}, \"benign\": {benign} }}{}\n",
            if i + 1 < r.per_channel.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"per_wire\": [\n");
    for (i, (wire, total, benign)) in r.per_wire.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"wire\": {wire}, \"races\": {total}, \"benign\": {benign} }}{}\n",
            if i + 1 < r.per_wire.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes a staleness report.
pub fn staleness_report_json(s: &StalenessReport, engine: &str, procs: usize) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\n");
    out.push_str(&format!("  \"engine\": \"{}\",\n", esc(engine)));
    out.push_str(&format!("  \"procs\": {},\n", procs));
    out.push_str(&format!("  \"audits\": {},\n", s.audits));
    out.push_str(&format!("  \"auditing_procs\": {},\n", s.procs));
    out.push_str(&format!("  \"max_diverged_cells\": {},\n", s.max_diverged_cells));
    out.push_str(&format!("  \"mean_diverged_cells\": {:.3},\n", s.mean_diverged_cells));
    out.push_str(&format!("  \"max_abs_divergence\": {},\n", s.max_abs_divergence));
    out.push_str(&format!("  \"total_abs_divergence\": {},\n", s.total_abs_divergence));
    out.push_str(&format!("  \"max_mean_age_ns\": {},\n", s.max_mean_age_ns));
    out.push_str(&format!("  \"mean_age_ns_p50\": {},\n", s.age_hist.quantile(0.50)));
    out.push_str(&format!("  \"mean_age_ns_p99\": {},\n", s.age_hist.quantile(0.99)));
    out.push_str(&format!("  \"diverged_cells_p50\": {},\n", s.cells_hist.quantile(0.50)));
    out.push_str(&format!("  \"diverged_cells_p99\": {}\n", s.cells_hist.quantile(0.99)));
    out.push_str("}\n");
    out
}

/// Serializes a lint run plus its ratchet verdict — the CI artifact
/// (`lint-findings.json`).
pub fn lint_findings_json(outcome: &LintOutcome, ratchet: &Ratchet) -> String {
    let mut out = String::with_capacity(512 + outcome.violations.len() * 160);
    out.push_str("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", outcome.files_scanned));
    out.push_str(&format!("  \"suppressed\": {},\n", outcome.suppressed));
    out.push_str(&format!("  \"ratchet_passes\": {},\n", ratchet.passes()));
    match ratchet.floor_breach {
        Some((current, floor)) => out.push_str(&format!(
            "  \"floor\": {{ \"held\": false, \"current\": {current}, \"baseline\": {floor} }},\n"
        )),
        None => out.push_str(&format!(
            "  \"floor\": {{ \"held\": true, \"slack\": {} }},\n",
            ratchet.floor_slack
        )),
    }
    out.push_str("  \"findings\": [\n");
    for (i, v) in outcome.violations.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"excerpt\": \"{}\" }}{}\n",
            esc(&v.file.to_string_lossy()),
            v.line,
            v.rule,
            esc(&v.excerpt),
            if i + 1 < outcome.violations.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"new\": [\n");
    for (i, row) in ratchet.new.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"baselined\": {}, \"current\": {} }}{}\n",
            esc(&row.file),
            row.rule,
            row.baselined,
            row.current,
            if i + 1 < ratchet.new.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"fixed\": [\n");
    for (i, row) in ratchet.fixed.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"baselined\": {}, \"current\": {} }}{}\n",
            esc(&row.file),
            row.rule,
            row.baselined,
            row.current,
            if i + 1 < ratchet.fixed.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;
    use locus_obs::export::validate_json;
    use locus_router::RouterParams;

    #[test]
    fn race_report_json_is_valid_and_carries_headline_keys() {
        // A 2-proc emulator run on the tiny circuit gives a small but
        // real report (possibly with zero races — both shapes must be
        // valid JSON).
        let report = crate::harness::analyze_engine(
            &presets::small(),
            "shmem-emul",
            2,
            RouterParams::default(),
        )
        .expect("emul analysis runs");
        let json = race_report_json(&report);
        validate_json(&json).expect("race report must be valid JSON");
        for key in ["\"engine\"", "\"synchronized_pairs\"", "\"quality_affecting\"", "\"pairs\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn lint_findings_json_is_valid_for_clean_and_dirty_runs() {
        use crate::baseline::{ratchet, Baseline};
        use crate::lint::Violation;
        use std::path::PathBuf;

        let clean = LintOutcome { files_scanned: 90, suppressed: 1, violations: Vec::new() };
        let base = Baseline::from_outcome(&clean);
        let json = lint_findings_json(&clean, &ratchet(&base, &clean));
        validate_json(&json).expect("clean findings must be valid JSON");
        assert!(json.contains("\"ratchet_passes\": true"));

        let dirty = LintOutcome {
            files_scanned: 90,
            suppressed: 0,
            violations: vec![Violation {
                file: PathBuf::from("crates/demo/src/lib.rs"),
                line: 7,
                rule: "no-unwrap",
                excerpt: "let x = \"quoted \\\" excerpt\".parse().unwrap();".to_string(),
            }],
        };
        let json = lint_findings_json(&dirty, &ratchet(&base, &dirty));
        validate_json(&json).expect("dirty findings (with quotes in excerpt) must be valid JSON");
        assert!(json.contains("\"ratchet_passes\": false"));
        assert!(json.contains("\"rule\": \"no-unwrap\""));
    }

    #[test]
    fn staleness_report_json_is_valid() {
        let s = StalenessReport::build(&[]);
        let json = staleness_report_json(&s, "msgpass-sender", 4);
        validate_json(&json).expect("staleness report must be valid JSON");
        assert!(json.contains("\"audits\": 0"));
    }
}
