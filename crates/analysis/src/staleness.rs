//! Replica-staleness aggregation for the message-passing router.
//!
//! Every processor in the message-passing implementation routes against
//! a *replica* of the cost array that is only reconciled by explicit
//! update packets (§4.3) — staleness is the design's whole bargain.
//! With [`locus_msgpass::MsgPassConfig::with_audit_every`] set, each
//! node periodically diffs its replica against the ground-truth array
//! and records a [`ReplicaSnapshot`]. This module folds those snapshots
//! into the "cells × age" staleness summary the analysis report and the
//! `analyze` subcommand print: how many cells were stale, by how much,
//! and for how long.

use locus_msgpass::ReplicaSnapshot;
use locus_obs::Histogram;

/// Aggregated staleness over all audits of one run.
#[derive(Debug)]
pub struct StalenessReport {
    /// Snapshots folded in.
    pub audits: usize,
    /// Distinct auditing processors.
    pub procs: usize,
    /// Largest diverged-cell count any single audit saw.
    pub max_diverged_cells: u32,
    /// Mean diverged-cell count per audit.
    pub mean_diverged_cells: f64,
    /// Largest absolute per-cell divergence seen anywhere.
    pub max_abs_divergence: u32,
    /// Sum of absolute divergences over all audits (the "cells ×
    /// magnitude" integral).
    pub total_abs_divergence: u64,
    /// Largest per-audit mean stale-cell age (ns).
    pub max_mean_age_ns: u64,
    /// Log₂ histogram of diverged-cell counts per audit.
    pub cells_hist: Histogram,
    /// Log₂ histogram of per-audit mean stale-cell age (ns).
    pub age_hist: Histogram,
}

impl StalenessReport {
    /// Folds `audits` (as produced on
    /// [`locus_msgpass::MsgPassOutcome::replica_audits`]) into a report.
    pub fn build(audits: &[ReplicaSnapshot]) -> Self {
        let mut cells_hist = Histogram::default();
        let mut age_hist = Histogram::default();
        let mut procs: Vec<usize> = Vec::new();
        let mut max_diverged_cells = 0u32;
        let mut max_abs_divergence = 0u32;
        let mut total_abs_divergence = 0u64;
        let mut total_diverged = 0u64;
        let mut max_mean_age_ns = 0u64;
        for s in audits {
            cells_hist.record(s.diverged_cells as u64);
            age_hist.record(s.mean_age_ns());
            if !procs.contains(&s.proc) {
                procs.push(s.proc);
            }
            max_diverged_cells = max_diverged_cells.max(s.diverged_cells);
            max_abs_divergence = max_abs_divergence.max(s.max_abs_divergence);
            total_abs_divergence += s.total_abs_divergence;
            total_diverged += s.diverged_cells as u64;
            max_mean_age_ns = max_mean_age_ns.max(s.mean_age_ns());
        }
        StalenessReport {
            audits: audits.len(),
            procs: procs.len(),
            max_diverged_cells,
            mean_diverged_cells: if audits.is_empty() {
                0.0
            } else {
                total_diverged as f64 / audits.len() as f64
            },
            max_abs_divergence,
            total_abs_divergence,
            max_mean_age_ns,
            cells_hist,
            age_hist,
        }
    }

    /// Human-readable summary block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replica staleness: {} audits across {} procs\n",
            self.audits, self.procs
        ));
        out.push_str(&format!(
            "  diverged cells/audit: mean {:.1}, max {} (p50 {}, p99 {})\n",
            self.mean_diverged_cells,
            self.max_diverged_cells,
            self.cells_hist.quantile(0.50),
            self.cells_hist.quantile(0.99),
        ));
        out.push_str(&format!(
            "  divergence magnitude: max {} tracks/cell, {} cell-tracks total\n",
            self.max_abs_divergence, self.total_abs_divergence
        ));
        out.push_str(&format!(
            "  stale-cell age: mean-of-means {:.0} ns, max mean {} ns (p99 {} ns)\n",
            self.age_hist.mean(),
            self.max_mean_age_ns,
            self.age_hist.quantile(0.99),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(proc: usize, diverged: u32, max_div: u32, total: u64, age_sum: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            proc,
            at_ns: 1_000 * proc as u64,
            wires_routed: 4,
            diverged_cells: diverged,
            total_abs_divergence: total,
            max_abs_divergence: max_div,
            stale_age_sum_ns: age_sum,
        }
    }

    #[test]
    fn empty_audit_set_folds_to_zeros() {
        let r = StalenessReport::build(&[]);
        assert_eq!(r.audits, 0);
        assert_eq!(r.procs, 0);
        assert_eq!(r.mean_diverged_cells, 0.0);
        assert!(r.render().contains("0 audits"));
    }

    #[test]
    fn aggregates_cover_all_snapshots() {
        let audits = [snap(0, 10, 2, 14, 5_000), snap(1, 4, 1, 4, 800), snap(0, 0, 0, 0, 0)];
        let r = StalenessReport::build(&audits);
        assert_eq!(r.audits, 3);
        assert_eq!(r.procs, 2);
        assert_eq!(r.max_diverged_cells, 10);
        assert_eq!(r.max_abs_divergence, 2);
        assert_eq!(r.total_abs_divergence, 18);
        assert!((r.mean_diverged_cells - 14.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.cells_hist.count(), 3);
        // snap(0,..) has mean age 500 ns; snap(1,..) 200 ns.
        assert_eq!(r.max_mean_age_ns, 500);
        assert!(r.render().contains("3 audits across 2 procs"));
    }
}
