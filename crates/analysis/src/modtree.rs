//! Workspace module-tree mapping.
//!
//! Confinement rules ("atomics only in audited modules") used to key on
//! file-path substrings, which conflates module identity with file
//! layout: renaming `src/parallel.rs` to `src/threads/mod.rs` would
//! have silently widened or narrowed an allowlist. This module resolves
//! real module identity instead: for every crate in the workspace it
//! lexes the crate root, follows `mod name;` declarations to `name.rs`
//! or `name/mod.rs` (the standard resolution rule), and records each
//! file's full module path (`locus_shmem::parallel`). Binary targets
//! (`src/bin/*.rs`, plus the crate's declared `[[bin]]` paths) are
//! tagged so rules that exempt binaries key on target kind, not a
//! `/bin/` substring.
//!
//! Files that no `mod` chain reaches (dead files, or declarations the
//! mapper cannot see) still get a *fallback* identity derived from
//! their path so every scanned file has a module, but they are marked
//! unreached; the workspace self-test asserts the real tree reaches
//! every library file, so a dangling file cannot quietly escape a
//! confinement rule.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind};

/// What the mapper knows about one source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModInfo {
    /// Full module path, e.g. `locus_shmem::parallel` (for binaries:
    /// `locus_bench::bin::locus_experiments`).
    pub module: String,
    /// The owning crate, e.g. `locus_shmem`.
    pub krate: String,
    /// Whether the file is a binary target root.
    pub is_bin: bool,
    /// Whether a `mod` chain from the crate root reaches this file
    /// (binaries are roots themselves and count as reached).
    pub reached: bool,
}

impl ModInfo {
    /// Fallback identity for a file nothing declares, derived from the
    /// workspace-relative path using the workspace's naming convention:
    /// `crates/foo/src/bar.rs` → `locus_foo::bar`, facade `src/bar.rs`
    /// → `locusroute::bar`. Real declarations always win; this exists
    /// so synthetic paths in unit tests and dead files still carry a
    /// plausible identity.
    pub fn fallback(rel: &Path) -> ModInfo {
        let comps: Vec<String> =
            rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
        let is_bin = comps.iter().any(|c| c == "bin");
        let in_crates = comps.first().is_some_and(|c| c == "crates");
        let mut parts: Vec<String> =
            if in_crates { Vec::new() } else { vec!["locusroute".to_string()] };
        for (i, c) in comps.iter().enumerate() {
            if c == "crates" || c == "src" {
                continue;
            }
            let stem = c.strip_suffix(".rs").unwrap_or(c);
            if stem == "lib" || stem == "main" || stem == "mod" {
                continue;
            }
            let part = stem.replace('-', "_");
            if in_crates && i == 1 {
                parts.push(format!("locus_{part}"));
            } else {
                parts.push(part);
            }
        }
        let krate = parts.first().cloned().unwrap_or_else(|| "unknown".to_string());
        ModInfo { module: parts.join("::"), krate, is_bin, reached: false }
    }
}

/// The file → module map for one workspace.
#[derive(Debug, Default)]
pub struct ModTree {
    map: BTreeMap<PathBuf, ModInfo>,
}

impl ModTree {
    /// Looks a workspace-relative path up, falling back to a
    /// path-derived identity for unknown files.
    pub fn info(&self, rel: &Path) -> ModInfo {
        self.map.get(rel).cloned().unwrap_or_else(|| ModInfo::fallback(rel))
    }

    /// All mapped files, in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&PathBuf, &ModInfo)> {
        self.map.iter()
    }

    /// Mapped files the crate roots do not reach (excluding fallbacks
    /// never inserted).
    pub fn unreached(&self) -> Vec<&PathBuf> {
        self.map.iter().filter(|(_, m)| !m.reached).map(|(p, _)| p).collect()
    }
}

/// Reads a crate name from its manifest, underscored; falls back to the
/// directory name.
fn crate_name(dir: &Path) -> String {
    let manifest = dir.join("Cargo.toml");
    if let Ok(text) = fs::read_to_string(&manifest) {
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    if let Some(name) = rest.trim().strip_prefix('"') {
                        if let Some(end) = name.find('"') {
                            return name[..end].replace('-', "_");
                        }
                    }
                }
            }
            // Only the [package] table's name counts; stop at the next table.
            if line.starts_with('[') && line != "[package]" {
                break;
            }
        }
    }
    dir.file_name()
        .map(|n| n.to_string_lossy().replace('-', "_"))
        .unwrap_or_else(|| "unknown".to_string())
}

/// The `mod x;` declarations of one file (top-level, outside `#[cfg(test)]`
/// spans — a test-gated `mod` has no file on a non-test build).
fn mod_decls(src: &str) -> Vec<String> {
    let Ok(toks) = lex(src) else { return Vec::new() };
    let code: Vec<usize> = (0..toks.toks().len())
        .filter(|&i| !matches!(toks.toks()[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let in_test = crate::rules::test_spans(&toks, &code);
    let mut out = Vec::new();
    let mut depth = 0i32;
    for (k, &i) in code.iter().enumerate() {
        let t = &toks.toks()[i];
        match toks.text(t) {
            "{" => depth += 1,
            "}" => depth -= 1,
            "mod" if depth == 0 && t.kind == TokKind::Ident && !in_test[i] => {
                if let (Some(&ni), Some(&si)) = (code.get(k + 1), code.get(k + 2)) {
                    let name = &toks.toks()[ni];
                    if name.kind == TokKind::Ident && toks.text(&toks.toks()[si]) == ";" {
                        out.push(toks.ident_text(name).to_string());
                    }
                }
            }
            _ => {}
        }
    }
    out
}

struct Mapper<'a> {
    root: &'a Path,
    map: BTreeMap<PathBuf, ModInfo>,
}

impl Mapper<'_> {
    /// Follows `file`'s `mod` declarations; `module` is the path of the
    /// module the file defines, `owning_dir` the directory its children
    /// live in.
    fn follow(
        &mut self,
        file: &Path,
        owning_dir: &Path,
        module: Vec<String>,
        krate: &str,
        is_bin: bool,
    ) {
        let Ok(src) = fs::read_to_string(file) else { return };
        let rel = file.strip_prefix(self.root).unwrap_or(file).to_path_buf();
        self.map.insert(
            rel,
            ModInfo { module: module.join("::"), krate: krate.to_string(), is_bin, reached: true },
        );
        for child in mod_decls(&src) {
            let flat = owning_dir.join(format!("{child}.rs"));
            let nested = owning_dir.join(&child).join("mod.rs");
            let (child_file, child_dir) = if flat.is_file() {
                (flat, owning_dir.join(&child))
            } else if nested.is_file() {
                (nested, owning_dir.join(&child))
            } else {
                continue;
            };
            let mut child_module = module.clone();
            child_module.push(child.clone());
            self.follow(&child_file, &child_dir, child_module, krate, is_bin);
        }
    }

    /// Maps one crate rooted at `dir`.
    fn map_crate(&mut self, dir: &Path) {
        let name = crate_name(dir);
        let src = dir.join("src");
        let lib = src.join("lib.rs");
        if lib.is_file() {
            self.follow(&lib, &src, vec![name.clone()], &name, false);
        }
        let main = src.join("main.rs");
        if main.is_file() {
            self.follow(&main, &src, vec![name.clone()], &name, true);
        }
        let bin_dir = src.join("bin");
        if bin_dir.is_dir() {
            let Ok(entries) = fs::read_dir(&bin_dir) else { return };
            let mut bins: Vec<PathBuf> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "rs"))
                .collect();
            bins.sort();
            for bin in bins {
                let stem = bin
                    .file_stem()
                    .map(|s| s.to_string_lossy().replace('-', "_"))
                    .unwrap_or_else(|| "bin".to_string());
                let module = vec![name.clone(), "bin".to_string(), stem];
                self.follow(&bin, &bin_dir, module, &name, true);
            }
        }
    }
}

/// Maps every crate in the workspace at `root` (the facade crate plus
/// each `crates/*` member; `vendor/` is never mapped or scanned).
pub fn map_workspace(root: &Path) -> io::Result<ModTree> {
    let mut mapper = Mapper { root, map: BTreeMap::new() };
    mapper.map_crate(root);
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> =
            fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for dir in dirs {
            if dir.is_dir() {
                mapper.map_crate(&dir);
            }
        }
    }
    Ok(ModTree { map: mapper.map })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/analysis sits two levels below the workspace root")
            .to_path_buf()
    }

    #[test]
    fn maps_real_module_identities() {
        let tree = map_workspace(&workspace_root()).expect("workspace maps");
        let par = tree.info(Path::new("crates/shmem/src/parallel.rs"));
        assert_eq!(par.module, "locus_shmem::parallel");
        assert_eq!(par.krate, "locus_shmem");
        assert!(!par.is_bin);
        assert!(par.reached);

        let shard = tree.info(Path::new("crates/shmem/src/shard.rs"));
        assert_eq!(shard.module, "locus_shmem::shard", "pub(crate) mod resolves too");

        let facade = tree.info(Path::new("src/engines.rs"));
        assert_eq!(facade.module, "locusroute::engines");
    }

    #[test]
    fn binaries_are_tagged_by_target_kind() {
        let tree = map_workspace(&workspace_root()).expect("workspace maps");
        let lint = tree.info(Path::new("crates/analysis/src/bin/lint.rs"));
        assert!(lint.is_bin);
        assert_eq!(lint.krate, "locus_analysis");
        let exp = tree.info(Path::new("crates/bench/src/bin/locus_experiments.rs"));
        assert!(exp.is_bin);
        assert_eq!(exp.module, "locus_bench::bin::locus_experiments");
    }

    #[test]
    fn every_workspace_library_file_is_reached() {
        // A file no `mod` chain reaches would fall back to a path-derived
        // identity and could drift out of its confinement rules; the
        // real tree must reach everything.
        let tree = map_workspace(&workspace_root()).expect("workspace maps");
        assert!(tree.unreached().is_empty(), "unreached source files: {:?}", tree.unreached());
        assert!(tree.iter().count() > 80, "expected the whole workspace to map");
    }

    #[test]
    fn fallback_identity_derives_from_path() {
        let m = ModInfo::fallback(Path::new("crates/widget/src/gears/spin.rs"));
        assert_eq!(m.module, "locus_widget::gears::spin");
        assert_eq!(m.krate, "locus_widget");
        assert!(!m.reached);
        let b = ModInfo::fallback(Path::new("crates/widget/src/bin/tool.rs"));
        assert!(b.is_bin);
        let f = ModInfo::fallback(Path::new("src/engines.rs"));
        assert_eq!(f.module, "locusroute::engines");
    }

    #[test]
    fn mod_decls_skip_test_gated_and_inline_modules() {
        let src = "\
pub mod real;
pub(crate) mod also_real;
mod inline { mod nested_decl; }
#[cfg(test)]
mod tests;
";
        assert_eq!(mod_decls(src), ["real", "also_real"]);
    }
}
