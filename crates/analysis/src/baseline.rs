//! The committed lint baseline and the ratchet against it.
//!
//! A new rule should be able to land even when the tree is not yet
//! clean under it: its pre-existing hits go into the committed baseline
//! (`lint-baseline.json` at the workspace root, regenerated with
//! `lint --write-baseline`), and CI fails only on findings *beyond*
//! the baseline. Counts are keyed per `(file, rule)` rather than per
//! line, so unrelated edits that shift line numbers do not churn the
//! ratchet; a count may only ever go down (fixing) or hold — going up
//! is a new finding and fails the run.
//!
//! The baseline also records the number of files the workspace walk
//! scanned. That number replaces the old hardcoded file-count floor:
//! the walker must never scan *fewer* files than the committed
//! baseline, which catches a broken walk (the failure mode where the
//! lint silently passes because it stopped looking) without demanding
//! a manual bump on every new file.

use std::collections::BTreeMap;

use crate::lint::LintOutcome;

/// The committed baseline: scanned-file floor plus per-(file, rule)
/// finding counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Files the walk scanned when the baseline was written.
    pub files_scanned: usize,
    /// Baselined finding counts, keyed by (workspace-relative file,
    /// rule).
    pub counts: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Captures a baseline from one lint run.
    pub fn from_outcome(outcome: &LintOutcome) -> Baseline {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in &outcome.violations {
            *counts
                .entry((v.file.to_string_lossy().into_owned(), v.rule.to_string()))
                .or_default() += 1;
        }
        Baseline { files_scanned: outcome.files_scanned, counts }
    }

    /// Serializes the committed JSON form.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"findings\": [");
        for (i, ((file, rule), count)) in self.counts.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"file\": \"{file}\", \"rule\": \"{rule}\", \"count\": {count} }}"
            ));
        }
        if self.counts.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }

    /// Parses the committed JSON form (the exact shape [`render`]
    /// emits; this is not a general JSON parser).
    ///
    /// [`render`]: Baseline::render
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let files_scanned = field_usize(text, "files_scanned")
            .ok_or_else(|| "baseline: missing files_scanned".to_string())?;
        let mut counts = BTreeMap::new();
        let mut rest = text;
        while let Some(pos) = rest.find("\"file\"") {
            rest = &rest[pos..];
            let file =
                field_str(rest, "file").ok_or_else(|| "baseline: bad file entry".to_string())?;
            let rule =
                field_str(rest, "rule").ok_or_else(|| "baseline: bad rule entry".to_string())?;
            let count = field_usize(rest, "count")
                .ok_or_else(|| "baseline: bad count entry".to_string())?;
            counts.insert((file, rule), count);
            rest = &rest[6..]; // past this "file" key; find() locates the next entry
        }
        Ok(Baseline { files_scanned, counts })
    }
}

/// Extracts `"key": <integer>` after the first occurrence of `key`.
fn field_usize(text: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<string>"` after the first occurrence of `key`.
fn field_str(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// One (file, rule) cell where current and baselined counts differ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RatchetRow {
    /// Workspace-relative file.
    pub file: String,
    /// Rule identifier.
    pub rule: String,
    /// Count in the committed baseline.
    pub baselined: usize,
    /// Count in the current run.
    pub current: usize,
}

/// The ratchet verdict for one run.
#[derive(Clone, Debug, Default)]
pub struct Ratchet {
    /// Cells whose count grew (or appeared): each is a CI failure.
    pub new: Vec<RatchetRow>,
    /// Cells whose count shrank (or vanished): the baseline is stale
    /// and can be regenerated tighter.
    pub fixed: Vec<RatchetRow>,
    /// Set when the walk scanned fewer files than the baseline floor:
    /// (current, floor).
    pub floor_breach: Option<(usize, usize)>,
    /// Files scanned beyond the recorded floor (advisory only).
    pub floor_slack: usize,
}

impl Ratchet {
    /// Whether the run holds the ratchet (no new findings, floor held).
    pub fn passes(&self) -> bool {
        self.new.is_empty() && self.floor_breach.is_none()
    }
}

/// Diffs one lint run against the committed baseline.
pub fn ratchet(baseline: &Baseline, outcome: &LintOutcome) -> Ratchet {
    let current = Baseline::from_outcome(outcome);
    let mut r = Ratchet::default();
    for ((file, rule), &count) in &current.counts {
        let base = baseline.counts.get(&(file.clone(), rule.clone())).copied().unwrap_or(0);
        if count > base {
            r.new.push(RatchetRow {
                file: file.clone(),
                rule: rule.clone(),
                baselined: base,
                current: count,
            });
        }
    }
    for ((file, rule), &base) in &baseline.counts {
        let count = current.counts.get(&(file.clone(), rule.clone())).copied().unwrap_or(0);
        if count < base {
            r.fixed.push(RatchetRow {
                file: file.clone(),
                rule: rule.clone(),
                baselined: base,
                current: count,
            });
        }
    }
    if outcome.files_scanned < baseline.files_scanned {
        r.floor_breach = Some((outcome.files_scanned, baseline.files_scanned));
    } else {
        r.floor_slack = outcome.files_scanned - baseline.files_scanned;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Violation;
    use std::path::PathBuf;

    fn outcome(files: usize, findings: &[(&str, &'static str)]) -> LintOutcome {
        LintOutcome {
            files_scanned: files,
            suppressed: 0,
            violations: findings
                .iter()
                .map(|&(file, rule)| Violation {
                    file: PathBuf::from(file),
                    line: 1,
                    rule,
                    excerpt: String::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let o =
            outcome(90, &[("a.rs", "no-unwrap"), ("a.rs", "no-unwrap"), ("b.rs", "determinism")]);
        let b = Baseline::from_outcome(&o);
        let parsed = Baseline::parse(&b.render()).expect("own output parses");
        assert_eq!(parsed, b);
        assert_eq!(parsed.counts[&("a.rs".to_string(), "no-unwrap".to_string())], 2);
        // The empty baseline roundtrips too.
        let empty = Baseline::from_outcome(&outcome(88, &[]));
        assert_eq!(Baseline::parse(&empty.render()).expect("parses"), empty);
    }

    #[test]
    fn new_findings_fail_the_ratchet() {
        let base = Baseline::from_outcome(&outcome(88, &[("a.rs", "no-unwrap")]));
        // Same count: passes. One more: fails with the delta.
        assert!(ratchet(&base, &outcome(88, &[("a.rs", "no-unwrap")])).passes());
        let grown = ratchet(&base, &outcome(88, &[("a.rs", "no-unwrap"), ("a.rs", "no-unwrap")]));
        assert!(!grown.passes());
        assert_eq!(grown.new.len(), 1);
        assert_eq!((grown.new[0].baselined, grown.new[0].current), (1, 2));
        // A finding in a fresh file fails too.
        assert!(!ratchet(&base, &outcome(88, &[("z.rs", "no-seqcst")])).passes());
    }

    #[test]
    fn fixes_are_reported_but_pass() {
        let base = Baseline::from_outcome(&outcome(88, &[("a.rs", "no-unwrap")]));
        let r = ratchet(&base, &outcome(89, &[]));
        assert!(r.passes());
        assert_eq!(r.fixed.len(), 1);
        assert_eq!(r.floor_slack, 1);
    }

    #[test]
    fn file_floor_never_decreases() {
        let base = Baseline::from_outcome(&outcome(88, &[]));
        let r = ratchet(&base, &outcome(87, &[]));
        assert!(!r.passes());
        assert_eq!(r.floor_breach, Some((87, 88)));
        assert!(ratchet(&base, &outcome(88, &[])).passes());
        assert!(ratchet(&base, &outcome(120, &[])).passes(), "growth is fine");
    }
}
