//! `lint` — the workspace static-analysis pass, as a CI-runnable binary.
//!
//! ```text
//! cargo run -p locus-analysis --bin lint [WORKSPACE_ROOT] \
//!     [--json FILE] [--baseline FILE] [--write-baseline] [--rules]
//! ```
//!
//! Tokenizes every library source file, runs the rule registry
//! documented in [`locus_analysis::rules`], and ratchets the result
//! against the committed baseline (`lint-baseline.json` at the
//! workspace root): the run fails on any finding beyond the baseline,
//! on any unused suppression, or when fewer files were scanned than the
//! baseline floor records.
//!
//! * `--json FILE` writes the machine-readable findings artifact.
//! * `--baseline FILE` reads the baseline from a different path.
//! * `--write-baseline` regenerates the baseline from this run and
//!   exits successfully (use after deliberately accepting findings).
//! * `--rules` lists the registered rules and exits.
//!
//! With no root argument the workspace root is discovered by walking up
//! from the current directory to the first `Cargo.toml` containing a
//! `[workspace]` table, falling back to the compile-time crate path.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use locus_analysis::baseline::{ratchet, Baseline};
use locus_analysis::lint::lint_workspace;
use locus_analysis::report::lint_findings_json;
use locus_analysis::rules::registry;

fn discover_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf()
}

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: None, json: None, baseline: None, write_baseline: false, list_rules: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--rules" => args.list_rules = true,
            other if !other.starts_with('-') && args.root.is_none() => {
                args.root = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in registry() {
            println!("{:22} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    let root = args.root.unwrap_or_else(discover_root);
    let outcome = match lint_workspace(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = args.baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
    if args.write_baseline {
        let text = Baseline::from_outcome(&outcome).render();
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "lint: baseline written to {} ({} files, {} baselined finding(s))",
            baseline_path.display(),
            outcome.files_scanned,
            outcome.violations.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => {
            eprintln!(
                "lint: no baseline at {} — ratcheting against empty",
                baseline_path.display()
            );
            Baseline::default()
        }
    };
    let verdict = ratchet(&baseline, &outcome);

    if let Some(json_path) = &args.json {
        let json = lint_findings_json(&outcome, &verdict);
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("lint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    for v in &outcome.violations {
        eprintln!("{v}");
    }
    for row in &verdict.new {
        eprintln!(
            "lint: NEW {}: [{}] {} finding(s), {} baselined",
            row.file, row.rule, row.current, row.baselined
        );
    }
    for row in &verdict.fixed {
        eprintln!(
            "lint: fixed {}: [{}] {} -> {} — regenerate with --write-baseline to ratchet down",
            row.file, row.rule, row.baselined, row.current
        );
    }
    if let Some((current, floor)) = verdict.floor_breach {
        eprintln!(
            "lint: file floor breached: scanned {current}, baseline floor {floor} — \
             the workspace walk lost files"
        );
    }
    let status = if verdict.passes() { "ok" } else { "FAIL" };
    println!(
        "static analysis: {} files scanned under {}, {} finding(s) ({} suppressed) — {status}",
        outcome.files_scanned,
        root.display(),
        outcome.violations.len(),
        outcome.suppressed
    );
    if verdict.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
