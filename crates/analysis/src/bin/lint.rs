//! `lint` — the workspace concurrency lint, as a CI-runnable binary.
//!
//! ```text
//! cargo run -p locus-analysis --bin lint [WORKSPACE_ROOT]
//! ```
//!
//! Scans every library source file for the rules documented in
//! [`locus_analysis::lint`] and exits nonzero on any violation. With no
//! argument the workspace root is discovered by walking up from the
//! current directory to the first `Cargo.toml` containing a
//! `[workspace]` table, falling back to the compile-time crate path.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use locus_analysis::lint::lint_workspace;

fn discover_root() -> PathBuf {
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(discover_root);
    let outcome = match lint_workspace(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if outcome.is_clean() {
        println!(
            "concurrency lint: {} files scanned under {}, 0 violations",
            outcome.files_scanned,
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        for v in &outcome.violations {
            eprintln!("{v}");
        }
        eprintln!(
            "concurrency lint: {} violation(s) in {} files",
            outcome.violations.len(),
            outcome.files_scanned
        );
        ExitCode::FAILURE
    }
}
