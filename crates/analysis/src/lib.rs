//! # locus-analysis
//!
//! Race-and-staleness analysis for the routing engines, plus the
//! workspace concurrency lint. Three pillars:
//!
//! * **Race detection** ([`race`], [`vclock`]) — a FastTrack-style
//!   vector-clock detector replayed over the Tango reference traces the
//!   shared-memory engines record ([`locus_coherence::Trace`]). The
//!   routers' only synchronization is the inter-iteration barrier, so
//!   every cross-processor conflicting access pair inside one barrier
//!   epoch is a data race — exactly the races the paper *chooses* to
//!   admit by leaving the cost array unlocked (§3).
//! * **Race classification** ([`classify`]) — each detected pair is
//!   replayed: write/write pairs are checked for commuting increments,
//!   read/write pairs re-run the reading wire's two-bend evaluation
//!   under both access orders. Races that cannot change a routing
//!   decision are *benign*; the rest are *quality-affecting* — the
//!   mechanism behind the paper's "slightly stale data" quality loss.
//! * **Replica staleness** ([`staleness`]) — the message-passing
//!   engines' analogue: periodic audits diff each node's replica
//!   against ground truth ([`locus_msgpass::ReplicaSnapshot`]) and fold
//!   into cells × age staleness histograms.
//!
//! [`harness`] ties the pillars to named engines (`sequential`,
//! `shmem-emul`, `shmem-threads`, `msgpass-*`), and [`report`]
//! serializes hand-rolled JSON for CI artifacts.
//!
//! The fourth pillar is the **workspace static-analysis pass** (`cargo
//! run -p locus-analysis --bin lint`): a hand-rolled Rust lexer
//! ([`lexer`]) feeds token streams to a rule registry ([`rules`]) whose
//! confinement rules key on real module identity resolved from the
//! `mod` tree ([`modtree`]), with inline suppressions ([`suppress`])
//! and a committed ratchet baseline ([`baseline`]). [`lint`] is the
//! orchestrating pass.

pub mod baseline;
pub mod classify;
pub mod harness;
pub mod lexer;
pub mod lint;
pub mod modtree;
pub mod race;
pub mod report;
pub mod rules;
pub mod staleness;
pub mod suppress;
pub mod vclock;

pub use baseline::{ratchet, Baseline, Ratchet};
pub use classify::{addr_cell, classify_races, ClassifiedRace, RaceClass};
pub use harness::{
    analyze_engine, audit_staleness, emit_race_events, trace_sequential, AnalysisReport,
    SequentialTrace,
};
pub use lexer::{lex, LexError, Tok, TokKind, Tokens};
pub use lint::{lint_workspace, scan_source, FileScan, LintOutcome, Violation};
pub use modtree::{map_workspace, ModInfo, ModTree};
pub use race::{detect, DetectionResult, RaceKind, RacePair};
pub use report::{lint_findings_json, race_report_json, staleness_report_json};
pub use rules::{registry, Rule};
pub use staleness::StalenessReport;
pub use vclock::VectorClock;
