//! # locus-analysis
//!
//! Race-and-staleness analysis for the routing engines, plus the
//! workspace concurrency lint. Three pillars:
//!
//! * **Race detection** ([`race`], [`vclock`]) — a FastTrack-style
//!   vector-clock detector replayed over the Tango reference traces the
//!   shared-memory engines record ([`locus_coherence::Trace`]). The
//!   routers' only synchronization is the inter-iteration barrier, so
//!   every cross-processor conflicting access pair inside one barrier
//!   epoch is a data race — exactly the races the paper *chooses* to
//!   admit by leaving the cost array unlocked (§3).
//! * **Race classification** ([`classify`]) — each detected pair is
//!   replayed: write/write pairs are checked for commuting increments,
//!   read/write pairs re-run the reading wire's two-bend evaluation
//!   under both access orders. Races that cannot change a routing
//!   decision are *benign*; the rest are *quality-affecting* — the
//!   mechanism behind the paper's "slightly stale data" quality loss.
//! * **Replica staleness** ([`staleness`]) — the message-passing
//!   engines' analogue: periodic audits diff each node's replica
//!   against ground truth ([`locus_msgpass::ReplicaSnapshot`]) and fold
//!   into cells × age staleness histograms.
//!
//! [`harness`] ties the pillars to named engines (`sequential`,
//! `shmem-emul`, `shmem-threads`, `msgpass-*`), [`report`] serializes
//! hand-rolled JSON for CI artifacts, and [`lint`] enforces the
//! workspace concurrency discipline (`cargo run -p locus-analysis
//! --bin lint`).

pub mod classify;
pub mod harness;
pub mod lint;
pub mod race;
pub mod report;
pub mod staleness;
pub mod vclock;

pub use classify::{addr_cell, classify_races, ClassifiedRace, RaceClass};
pub use harness::{
    analyze_engine, audit_staleness, emit_race_events, trace_sequential, AnalysisReport,
    SequentialTrace,
};
pub use lint::{lint_workspace, LintOutcome, Violation};
pub use race::{detect, DetectionResult, RaceKind, RacePair};
pub use report::{race_report_json, staleness_report_json};
pub use staleness::StalenessReport;
pub use vclock::VectorClock;
