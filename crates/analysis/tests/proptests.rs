//! Property-based tests for the race detector.
//!
//! The load-bearing property: producer traces merge per-processor
//! streams with `Trace::sort_by_time`, so references sharing a
//! timestamp have no canonical cross-processor order. Race verdicts
//! must therefore be invariant under any *stable* reordering of
//! same-time references (one that preserves each processor's program
//! order) — otherwise the analysis would report different races for
//! the same execution depending on merge luck.

use locus_analysis::race::{detect, RaceKey};
use locus_coherence::{MemRef, RefKind, Trace};
use proptest::prelude::*;

const PROCS: usize = 4;

/// Raw material for one reference: processor, cell slot, write?, epoch,
/// and a coarse time offset within the epoch (coarse so timestamps
/// collide often).
fn arb_refs() -> impl Strategy<Value = Vec<(u32, u32, bool, u32, u64)>> {
    proptest::collection::vec((0..PROCS as u32, 0..12u32, any::<bool>(), 0..3u32, 0..8u64), 0..120)
}

/// Builds a well-formed trace: epochs occupy disjoint time bands, so
/// after time sorting every processor's epochs are nondecreasing in
/// program order (the barrier invariant producers guarantee).
fn build_trace(raw: &[(u32, u32, bool, u32, u64)]) -> Trace {
    let mut t: Trace = raw
        .iter()
        .map(|&(proc, slot, is_write, epoch, offset)| {
            let kind = if is_write { RefKind::Write } else { RefKind::Read };
            let delta = if is_write {
                if slot % 3 == 0 {
                    -1
                } else {
                    1
                }
            } else {
                0
            };
            MemRef::new(epoch as u64 * 1_000 + offset, proc, slot * 2, kind)
                .with_epoch(epoch)
                .with_wire(slot % 5)
                .with_delta(delta)
        })
        .collect();
    t.sort_by_time();
    t
}

/// Stable reordering of same-time references: within every equal-time
/// group, reorders across processors by a permutation while preserving
/// each processor's own order (stable sort on the permuted proc id).
fn reorder_same_times(trace: &Trace, perm: &[usize; PROCS]) -> Trace {
    let mut refs: Vec<MemRef> = trace.refs().to_vec();
    refs.sort_by_key(|r| (r.time, perm[r.proc as usize % PROCS]));
    refs.into_iter().collect()
}

fn race_keys(trace: &Trace) -> Vec<RaceKey> {
    let mut keys: Vec<RaceKey> = detect(trace).races.iter().map(|r| r.key()).collect();
    keys.sort();
    keys
}

/// The 24 permutations of 4 processors, indexed densely (Lehmer code).
fn nth_perm(n: usize) -> [usize; PROCS] {
    let mut pool = vec![0, 1, 2, 3];
    let digits = [(n / 6) % 4, (n % 6) / 2, n % 2, 0];
    let mut out = [0usize; PROCS];
    for (slot, d) in out.iter_mut().zip(digits) {
        *slot = pool.remove(d.min(pool.len() - 1));
    }
    out
}

proptest! {
    #[test]
    fn race_verdicts_invariant_under_stable_same_time_reorderings(
        raw in arb_refs(),
        perm_idx in 0usize..24,
    ) {
        let original = build_trace(&raw);
        let perm = nth_perm(perm_idx);
        let reordered = reorder_same_times(&original, &perm);
        prop_assert!(reordered.is_sorted());
        prop_assert_eq!(reordered.len(), original.len());
        prop_assert_eq!(
            race_keys(&original),
            race_keys(&reordered),
            "race set changed under a stable same-time reordering (perm {:?})",
            perm
        );
    }

    #[test]
    fn single_processor_traces_never_race(raw in arb_refs()) {
        let single: Trace = build_trace(&raw)
            .refs()
            .iter()
            .map(|r| MemRef { proc: 0, ..*r })
            .collect();
        let d = detect(&single);
        prop_assert!(d.races.is_empty());
        prop_assert_eq!(d.synchronized_pairs, 0);
    }

    #[test]
    fn cross_epoch_only_traces_are_race_free(raw in arb_refs()) {
        // Give each processor its own epoch: every cross-proc pair is
        // separated by at least one barrier.
        let mut t: Trace = build_trace(&raw)
            .refs()
            .iter()
            .map(|r| MemRef { time: r.proc as u64 * 1_000 + r.time % 1_000, epoch: r.proc, ..*r })
            .collect();
        t.sort_by_time();
        prop_assert!(detect(&t).races.is_empty());
    }
}
