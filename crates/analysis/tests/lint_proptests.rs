//! Property-based tests for the lexer and the token-level rules.
//!
//! The load-bearing property: rule verdicts are a function of the
//! *token stream*, not the raw text. Injecting comments and string
//! literals whose contents spell out rule-triggering patterns
//! (`Ordering::SeqCst`, `.unwrap()`, `HashMap`, ...) into a clean
//! source file must neither break the lexer nor change the (empty)
//! finding set — the exact failure mode of the old line-scanning lint,
//! which matched substrings anywhere on a line.

use locus_analysis::lexer::lex;
use locus_analysis::lint::scan_source;
use proptest::prelude::*;
use std::path::Path;

/// A clean library source template with slots between items where
/// injected text can land without creating real violations.
const TEMPLATE_LINES: &[&str] = &[
    "pub struct Grid { cells: Vec<u32> }",
    "impl Grid {",
    "    pub fn cost(&self, i: usize) -> u32 { self.cells[i] }",
    "    pub fn bump(&mut self, i: usize) { self.cells[i] += 1; }",
    "}",
    "pub fn widen(g: &Grid) -> u32 { g.cost(0).saturating_add(3) }",
    "pub const LANES: usize = 4;",
];

/// Every keyword the rules key on, as payloads to smuggle into inert
/// positions. None of these may trip anything when quoted or commented.
const PAYLOADS: &[&str] = &[
    "Ordering::SeqCst",
    "std::sync::atomic::AtomicU32::new(0)",
    ".unwrap()",
    "thread::spawn(move || {})",
    "HashMap<u32, u32> and HashSet too",
    "Instant::now() and SystemTime::now()",
    "std::env::var(\\\"HOME\\\")",
    "panic!(\"boom\") unreachable!() todo!()",
    "unsafe { transmute }",
    "#[cfg(test)] mod tests",
];

/// The inert wrappers: line comment, block comment, doc comment, plain
/// string, raw string (which even survives embedded quotes).
fn wrap(payload: &str, mode: usize) -> String {
    match mode % 5 {
        0 => format!("// {payload}"),
        1 => format!("/* {payload} */"),
        2 => format!("/// docs: {payload}"),
        3 => format!("pub const SNIPPET: &str = \"{payload}\";"),
        _ => format!("pub const RAW: &str = r#\"{} \"quoted\" \"#;", payload.replace("\\\"", "\"")),
    }
}

/// Assembles a source file with each (slot, payload, mode) injection
/// applied. Consts injected twice would collide, so each injected const
/// gets a unique suffix.
fn assemble(injections: &[(usize, usize, usize)]) -> String {
    let mut lines: Vec<String> = TEMPLATE_LINES.iter().map(|s| s.to_string()).collect();
    // Inject at top level only (after the impl block: slots 0, 5, 6, 7
    // map to line boundaries outside braces).
    let slots = [0usize, 5, 6, 7];
    let mut by_slot: Vec<Vec<String>> = vec![Vec::new(); slots.len()];
    for (k, &(slot, payload, mode)) in injections.iter().enumerate() {
        let text = wrap(PAYLOADS[payload % PAYLOADS.len()], mode)
            .replace("SNIPPET", &format!("SNIPPET_{k}"))
            .replace("RAW", &format!("RAW_{k}"));
        by_slot[slot % slots.len()].push(text);
    }
    for (i, slot_line) in slots.iter().enumerate().rev() {
        for text in by_slot[i].iter().rev() {
            lines.insert(*slot_line, text.clone());
        }
    }
    lines.join("\n") + "\n"
}

proptest! {
    #[test]
    fn quoted_and_commented_keywords_never_trip_rules(
        injections in proptest::collection::vec(
            (0usize..4, 0usize..10, 0usize..5),
            0..12,
        )
    ) {
        let src = assemble(&injections);
        let toks = lex(&src);
        prop_assert!(toks.is_ok(), "lexer failed on:\n{src}");
        let scan = scan_source(Path::new("crates/demo/src/lib.rs"), &src);
        prop_assert!(
            scan.violations.is_empty(),
            "injected inert text produced findings {:?} in:\n{src}",
            scan.violations
        );
        prop_assert_eq!(scan.suppressed, 0);
    }

    #[test]
    fn lexing_is_stable_under_comment_insertion(
        injections in proptest::collection::vec(
            (0usize..4, 0usize..10, 0usize..3),  // comment wrappers only
            1..8,
        )
    ) {
        // Comments never change the code-token sequence: the stream of
        // non-comment token texts must match the clean template's.
        let clean = TEMPLATE_LINES.join("\n") + "\n";
        let noisy = assemble(&injections);
        let code_texts = |src: &str| -> Vec<String> {
            let toks = lex(src).expect("template lexes");
            toks.toks()
                .iter()
                .filter(|t| !matches!(
                    t.kind,
                    locus_analysis::lexer::TokKind::LineComment
                        | locus_analysis::lexer::TokKind::BlockComment
                ))
                .map(|t| toks.text(t).to_string())
                .collect()
        };
        prop_assert_eq!(code_texts(&clean), code_texts(&noisy), "in:\n{}", noisy);
    }
}
