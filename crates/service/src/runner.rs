//! Executing one routing job and pricing it in virtual time.
//!
//! The server separates *what a job costs* from *when it runs*: a
//! [`JobRunner`] routes the job's circuit and returns a deterministic
//! virtual service time, and the admission simulation (see
//! [`server`](crate::server)) decides when that service occupies a
//! simulated worker. Keeping the cost model free of wall clocks is what
//! makes two runs of the same seed byte-identical regardless of host
//! speed or pool size.

use locus_router::engine::{EngineCtx, RoutingEngine};

use crate::workload::JobSpec;

/// The deterministic result of routing one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobExecution {
    /// Virtual milliseconds of service the job consumes on a worker.
    pub service_ms: u64,
    /// Final circuit height of the routed result (quality signal).
    pub circuit_height: u64,
    /// Wires routed (including re-routes across iterations).
    pub wires_routed: u64,
    /// True when the engine run finished degraded (watchdog or recovery
    /// intervention). Health policies treat degraded runs as retryable.
    pub degraded: bool,
}

/// Routes one job. Implementations must be deterministic functions of
/// the job spec for the service's reports to reproduce.
pub trait JobRunner: Sync {
    /// Routes `job`, returning its execution or an error string (e.g. an
    /// unknown engine name).
    fn run(&self, job: &JobSpec) -> Result<JobExecution, String>;
}

/// Builds a routing engine from its registry name. The facade crate's
/// `engines::build_engine` has exactly this signature; the service takes
/// it as a value to avoid depending on the facade.
pub type EngineFactory = fn(&str) -> Result<Box<dyn RoutingEngine>, String>;

/// Virtual cost-model rate for engines without a clock: cost-array cells
/// examined per virtual millisecond. The sequential router examines a
/// few hundred cells per wire, so at 150 cells/ms the tiny preset costs
/// ~20 virtual ms and the bnrE stand-in several virtual seconds — a
/// spread wide enough to make queueing behaviour interesting.
pub const DEFAULT_CELLS_PER_MS: u64 = 150;

/// The production [`JobRunner`]: instantiates the job's circuit family,
/// builds the named engine, routes, and prices the run in virtual ms —
/// the engine's own simulated seconds when it has a clock, else the
/// cells-examined work model.
pub struct EngineRunner {
    factory: EngineFactory,
    /// Cells examined per virtual ms for clockless engines.
    pub cells_per_ms: u64,
}

impl EngineRunner {
    /// A runner resolving engine names through `factory` with the
    /// default cost model.
    pub fn new(factory: EngineFactory) -> Self {
        EngineRunner { factory, cells_per_ms: DEFAULT_CELLS_PER_MS }
    }

    /// Returns `self` with a different clockless cost-model rate.
    pub fn with_cells_per_ms(mut self, cells_per_ms: u64) -> Self {
        self.cells_per_ms = cells_per_ms.max(1);
        self
    }
}

impl JobRunner for EngineRunner {
    fn run(&self, job: &JobSpec) -> Result<JobExecution, String> {
        let engine = (self.factory)(job.class.engine)?;
        let circuit = job.class.family.instantiate(job.circuit_seed);
        let run = engine.route(&circuit, &job.class.params, &EngineCtx::new(job.class.procs));
        let service_ms = match run.time_secs {
            Some(t) => (t * 1_000.0).ceil() as u64,
            None => run.outcome.work.cells_examined / self.cells_per_ms,
        }
        .max(1);
        Ok(JobExecution {
            service_ms,
            circuit_height: run.outcome.quality.circuit_height,
            wires_routed: run.outcome.work.wires_routed,
            degraded: run.degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CircuitFamily, JobClass};
    use locus_router::SequentialEngine;

    fn seq_only(name: &str) -> Result<Box<dyn RoutingEngine>, String> {
        match name {
            "sequential" => Ok(Box::new(SequentialEngine)),
            other => Err(format!("unknown engine '{other}'")),
        }
    }

    fn job(family: CircuitFamily) -> JobSpec {
        JobSpec {
            id: 0,
            arrival_ms: 0,
            class: JobClass::new(family, "sequential", 1),
            circuit_seed: 42,
        }
    }

    #[test]
    fn engine_runner_is_deterministic_and_sized_by_circuit() {
        let runner = EngineRunner::new(seq_only);
        let tiny = runner.run(&job(CircuitFamily::Tiny)).expect("tiny routes");
        let small = runner.run(&job(CircuitFamily::Small)).expect("small routes");
        assert_eq!(tiny, runner.run(&job(CircuitFamily::Tiny)).expect("tiny routes again"));
        assert!(small.service_ms > tiny.service_ms, "{small:?} vs {tiny:?}");
        assert!(tiny.service_ms >= 1);
        assert!(tiny.circuit_height > 0);
    }

    #[test]
    fn unknown_engines_error_instead_of_panicking() {
        let runner = EngineRunner::new(seq_only);
        let mut j = job(CircuitFamily::Tiny);
        j.class.engine = "nonesuch";
        assert!(runner.run(&j).is_err());
    }
}
