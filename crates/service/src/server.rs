//! The routing job server: bounded admission queue, backpressure, and a
//! deterministic virtual-time dispatch simulation.
//!
//! A run has two phases. **Execute**: every job in the arrival trace is
//! routed on the scoped-thread [`WorkerPool`](crate::pool::WorkerPool)
//! through a [`JobRunner`], producing a deterministic virtual service
//! time per job (real threads, virtual prices — see
//! [`runner`](crate::runner)). **Simulate**: a sequential discrete-event
//! replay walks the arrival trace on the virtual ms clock, admits jobs
//! through the bounded queue under the configured [`Backpressure`]
//! policy, dispatches them to `workers` simulated servers, and stamps
//! every job's enqueue/dispatch/complete times. Because phase 2 depends
//! only on the trace and the virtual service times, the whole outcome is
//! byte-identical across runs, hosts, and pool sizes.
//!
//! Jobs that end up shed or rejected were still routed in phase 1 —
//! speculative work the report's `wasted` ratio makes visible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use locus_obs::{Event, EventKind, Histogram, SharedSink, Sink};

use crate::pool::WorkerPool;
use crate::runner::{JobExecution, JobRunner};
use crate::workload::JobSpec;

/// What the server does when a job arrives at a full queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backpressure {
    /// The arrival waits outside the queue (the submitting client
    /// blocks) and enters as soon as a slot frees. Nothing is lost;
    /// queueing delay absorbs the overload.
    Block,
    /// The oldest *queued* job is dropped to admit the newcomer —
    /// freshest-work-wins, bounding staleness under overload.
    ShedOldest,
    /// The newcomer is turned away with a retry hint estimating when the
    /// backlog will drain.
    Reject,
}

impl Backpressure {
    /// Short stable name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            Backpressure::Block => "block",
            Backpressure::ShedOldest => "shed-oldest",
            Backpressure::Reject => "reject",
        }
    }
}

/// Server shape: simulated worker count, queue bound, and policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Simulated routing servers draining the queue.
    pub workers: usize,
    /// Waiting-job bound of the admission queue (≥ 1).
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub policy: Backpressure,
    /// Health management (retries, quarantine, circuit breaker); `None`
    /// leaves the legacy dispatch byte-identical.
    pub health: Option<HealthPolicy>,
}

impl ServiceConfig {
    /// A server with `workers` servers, a queue of `queue_capacity`, and
    /// the given policy. Health management starts disabled.
    pub fn new(workers: usize, queue_capacity: usize, policy: Backpressure) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            queue_capacity: queue_capacity.max(1),
            policy,
            health: None,
        }
    }

    /// Returns `self` with health management enabled under `policy`.
    pub fn with_health(mut self, policy: HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }
}

/// Thresholds for service health management. Everything is measured on
/// the virtual clock, so enabling a policy keeps replay byte-identical
/// across hosts and pool sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// A completed job slower than this (virtual ms) counts as a
    /// deadline miss against the worker that served it.
    pub deadline_ms: u64,
    /// Retry budget per job for failed or degraded runs.
    pub max_retries: u32,
    /// Base of the exponential retry backoff: retry `k` waits
    /// `base · 2^(k−1)` plus a deterministic jitter in `[0, base)`.
    pub backoff_base_ms: u64,
    /// Virtual ms a quarantined worker sits out (also how long a tripped
    /// breaker stays open).
    pub quarantine_ms: u64,
    /// Consecutive bad jobs (failed, degraded, or deadline-missed) that
    /// quarantine a worker.
    pub failure_quarantine: u32,
    /// Rolling attempt window over which each job class's failure rate
    /// is judged.
    pub breaker_window: u32,
    /// Percentage of bad attempts in a full window that trips the
    /// class's circuit breaker.
    pub breaker_threshold_pct: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            deadline_ms: 1_000,
            max_retries: 2,
            backoff_base_ms: 50,
            quarantine_ms: 500,
            failure_quarantine: 3,
            breaker_window: 8,
            breaker_threshold_pct: 50,
        }
    }
}

/// A worker's health as the policy sees it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WorkerState {
    /// No recent bad jobs.
    #[default]
    Healthy,
    /// At least one recent bad job; still serving.
    Degraded,
    /// Sitting out a quarantine window; receives no work.
    Quarantined,
}

/// Deterministic jitter for retry backoff: a splitmix64-style hash of
/// (job id, attempt), so the schedule reproduces on any host.
fn jitter(job: u32, attempt: u32) -> u64 {
    let mut z = (((job as u64) << 32) | attempt as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mutable health-management state for one simulate() pass.
struct HealthRt {
    policy: HealthPolicy,
    /// Retry attempts used per job (0 = first run only).
    attempts: Vec<u32>,
    /// Consecutive bad jobs per worker (index 0 = frontend, unused).
    consec_bad: Vec<u32>,
    /// Current state per worker (index 0 = frontend, unused).
    state: Vec<WorkerState>,
    /// Job index → class id (dense, discovered in trace order).
    class_of: Vec<u32>,
    /// Rolling attempt-outcome window per class (`true` = bad).
    window: Vec<VecDeque<bool>>,
    /// Virtual ms until which each class's breaker stays open.
    open_until: Vec<u64>,
}

impl HealthRt {
    /// True when `class`'s breaker is open at `now`.
    fn breaker_open(&self, class: u32, now: u64) -> bool {
        now < self.open_until[class as usize]
    }

    /// Feeds one attempt outcome into `class`'s window; returns true
    /// when this attempt trips the breaker.
    fn feed_breaker(&mut self, class: u32, bad: bool, now: u64) -> bool {
        let w = &mut self.window[class as usize];
        w.push_back(bad);
        if w.len() > self.policy.breaker_window as usize {
            w.pop_front();
        }
        if w.len() < self.policy.breaker_window as usize {
            return false;
        }
        let bad_count = w.iter().filter(|&&b| b).count() as u32;
        if bad_count * 100 >= self.policy.breaker_threshold_pct * self.policy.breaker_window {
            self.open_until[class as usize] = now + self.policy.quarantine_ms;
            self.window[class as usize].clear();
            true
        } else {
            false
        }
    }
}

/// How one job's pass through the server ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Dispatched and served to completion.
    Completed {
        /// Virtual ms the job left the queue for a worker.
        dispatch_ms: u64,
        /// Virtual ms service finished.
        complete_ms: u64,
        /// Service duration (== `complete_ms - dispatch_ms`).
        service_ms: u64,
    },
    /// Dropped from the queue by [`Backpressure::ShedOldest`].
    Shed {
        /// Virtual ms the shed happened (a newer arrival's timestamp).
        at_ms: u64,
    },
    /// Turned away at arrival by [`Backpressure::Reject`].
    Rejected {
        /// Suggested client back-off before resubmitting (virtual ms).
        retry_hint_ms: u64,
    },
    /// The runner could not route the job (e.g. unknown engine name).
    Failed {
        /// The runner's error.
        error: String,
    },
}

/// One job's record: identity, arrival, and how it ended.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Trace job id.
    pub id: u32,
    /// Virtual arrival time (ms).
    pub arrival_ms: u64,
    /// How the pass ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Queueing delay for completed jobs (arrival → dispatch).
    pub fn queue_wait_ms(&self) -> Option<u64> {
        match self.outcome {
            JobOutcome::Completed { dispatch_ms, .. } => Some(dispatch_ms - self.arrival_ms),
            _ => None,
        }
    }
}

/// The server's own tally, kept independently of obs so the two can be
/// cross-checked (see `tests/service.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs in the arrival trace.
    pub submitted: u64,
    /// Jobs that entered the queue (including via the block vestibule).
    pub enqueued: u64,
    /// Jobs handed to a worker.
    pub dispatched: u64,
    /// Jobs served to completion.
    pub completed: u64,
    /// Jobs dropped by shed-oldest.
    pub shed: u64,
    /// Jobs turned away by reject.
    pub rejected: u64,
    /// Jobs whose runner errored.
    pub failed: u64,
    /// Total busy worker·ms across the run.
    pub busy_ms: u64,
    /// Retry attempts scheduled by the health policy.
    pub retried: u64,
    /// Completed jobs that overran the policy deadline.
    pub deadline_misses: u64,
    /// Times a worker entered quarantine.
    pub quarantines: u64,
    /// Times a class's circuit breaker tripped.
    pub breaker_trips: u64,
    /// Jobs failed fast at dispatch because their class's breaker was
    /// open.
    pub breaker_fast_fails: u64,
    /// Jobs that completed but whose engine run was degraded.
    pub degraded_completions: u64,
}

/// Everything a server run produces.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Per-job records in trace order.
    pub records: Vec<JobRecord>,
    /// The server's own tally.
    pub stats: ServiceStats,
    /// Queueing-delay histogram (dispatched jobs, virtual ms).
    pub queue_wait: Histogram,
    /// Service-latency histogram (completed jobs, virtual ms).
    pub service: Histogram,
    /// Virtual ms from trace start to the last completion.
    pub makespan_ms: u64,
    /// Busy worker·ms over offered worker·ms (0..=1).
    pub utilization: f64,
    /// Completed jobs per virtual second.
    pub throughput_jps: f64,
    /// Final health state per worker (index 0 = frontend, always
    /// healthy); all-healthy when no policy is set.
    pub worker_health: Vec<WorkerState>,
}

/// The routing job server; see the [module docs](self).
pub struct JobServer {
    cfg: ServiceConfig,
}

/// Fallback mean service estimate (virtual ms) for retry hints before
/// any job has been dispatched.
const RETRY_BOOTSTRAP_MS: u64 = 10;

impl JobServer {
    /// A server with the given shape.
    pub fn new(cfg: ServiceConfig) -> Self {
        JobServer { cfg }
    }

    /// Runs the full trace: executes every job on `pool` via `runner`,
    /// then replays admission and dispatch on the virtual clock,
    /// emitting service events into `sink` when given.
    ///
    /// `jobs` must be sorted by `arrival_ms` (as
    /// [`workload::generate`](crate::workload::generate) produces them).
    pub fn run(
        &self,
        jobs: &[JobSpec],
        runner: &dyn JobRunner,
        pool: &WorkerPool,
        sink: Option<SharedSink>,
    ) -> ServiceOutcome {
        let executions = pool.map(jobs.to_vec(), |job| runner.run(&job));
        self.simulate(jobs, &executions, sink)
    }

    /// Phase 2 alone: replays admission/dispatch for pre-computed
    /// executions. Exposed so tests can drive the policies with
    /// hand-built service times.
    pub fn simulate(
        &self,
        jobs: &[JobSpec],
        executions: &[Result<JobExecution, String>],
        sink: Option<SharedSink>,
    ) -> ServiceOutcome {
        assert_eq!(jobs.len(), executions.len(), "one execution per job");
        let mut sink = sink.map(|s| Box::new(s) as Box<dyn Sink>);
        // Virtual ms → event timestamp ns.
        let mut emit = |at_ms: u64, node: u32, kind: EventKind| {
            if let Some(s) = sink.as_mut() {
                s.record(Event { at_ns: at_ms.saturating_mul(1_000_000), node, kind });
            }
        };
        // Node 0 is the admission frontend; workers are nodes 1..=W.
        const FRONTEND: u32 = 0;

        let mut stats = ServiceStats { submitted: jobs.len() as u64, ..ServiceStats::default() };
        let mut records: Vec<Option<JobRecord>> = vec![None; jobs.len()];
        let mut queue_wait = Histogram::default();
        let mut service = Histogram::default();

        // Simulation state.
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut vestibule: VecDeque<usize> = VecDeque::new();
        let mut free_workers: BinaryHeap<Reverse<u32>> =
            (1..=self.cfg.workers as u32).map(Reverse).collect();
        // (complete_ms, worker, job index); Reverse for a min-heap, with
        // worker/job ids as deterministic tie-breaks.
        let mut completions: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
        // (retry_at_ms, job index): failed/degraded jobs waiting out
        // their backoff before re-entering the queue.
        let mut retries: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        // (release_at_ms, worker): quarantined workers waiting to
        // rejoin the free pool.
        let mut releases: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let mut makespan_ms = 0u64;
        let mut dispatched_service_sum = 0u64;

        // Health-management state; `None` leaves every legacy code path
        // untouched (the heaps above stay empty).
        let mut health_rt: Option<HealthRt> = self.cfg.health.map(|policy| {
            let mut classes: Vec<crate::workload::JobClass> = Vec::new();
            let class_of = jobs
                .iter()
                .map(|j| match classes.iter().position(|c| *c == j.class) {
                    Some(k) => k as u32,
                    None => {
                        classes.push(j.class);
                        (classes.len() - 1) as u32
                    }
                })
                .collect();
            HealthRt {
                policy,
                attempts: vec![0; jobs.len()],
                consec_bad: vec![0; self.cfg.workers + 1],
                state: vec![WorkerState::Healthy; self.cfg.workers + 1],
                class_of,
                window: vec![VecDeque::new(); classes.len()],
                open_until: vec![0; classes.len()],
            }
        });

        // Service time of job `i`; runner failures are recorded as Failed
        // and occupy a worker for 1 virtual ms (the error path is cheap
        // but not free).
        let service_ms = |i: usize| match &executions[i] {
            Ok(exec) => exec.service_ms.max(1),
            Err(_) => 1,
        };

        let mut idx = 0usize;
        loop {
            // Pick the earliest pending event. Ties are resolved by a
            // fixed priority — completion, quarantine release, retry,
            // arrival — so freed capacity is visible to whatever shares
            // its timestamp and replay stays deterministic.
            let next_arrival = jobs.get(idx).map(|j| j.arrival_ms);
            let next_completion = completions.peek().map(|Reverse((t, _, _))| *t);
            let next_release = releases.peek().map(|Reverse((t, _))| *t);
            let next_retry = retries.peek().map(|Reverse((t, _))| *t);
            let Some(best) = [next_completion, next_release, next_retry, next_arrival]
                .into_iter()
                .flatten()
                .min()
            else {
                break;
            };

            if next_completion == Some(best) {
                let Reverse((now, worker, job_i)) =
                    completions.pop().expect("peeked completion exists");
                let dispatch_ms = match &records[job_i] {
                    Some(JobRecord {
                        outcome: JobOutcome::Completed { dispatch_ms, .. }, ..
                    }) => *dispatch_ms,
                    _ => unreachable!("completion for undisp. job"),
                };
                let dur = now - dispatch_ms;
                stats.busy_ms += dur;
                makespan_ms = makespan_ms.max(now);

                // Health bookkeeping: classify the attempt, feed the
                // class breaker, maybe schedule a retry, maybe
                // quarantine the worker.
                let bad_run = match &executions[job_i] {
                    Ok(exec) => exec.degraded,
                    Err(_) => true,
                };
                let mut retried = false;
                let mut quarantined = false;
                if let Some(rt) = health_rt.as_mut() {
                    let class = rt.class_of[job_i];
                    if rt.feed_breaker(class, bad_run, now) {
                        stats.breaker_trips += 1;
                        emit(now, FRONTEND, EventKind::BreakerTripped { class });
                    }
                    if bad_run && rt.attempts[job_i] < rt.policy.max_retries {
                        rt.attempts[job_i] += 1;
                        let attempt = rt.attempts[job_i];
                        let base = rt.policy.backoff_base_ms.max(1);
                        let backoff = base.saturating_mul(1u64 << u64::from(attempt - 1).min(16));
                        let delay = backoff + jitter(jobs[job_i].id, attempt) % base;
                        retries.push(Reverse((now + delay, job_i)));
                        stats.retried += 1;
                        emit(now, worker, EventKind::JobRetried { job: jobs[job_i].id, attempt });
                        retried = true;
                    }
                    let deadline_miss = executions[job_i].is_ok() && dur > rt.policy.deadline_ms;
                    if deadline_miss {
                        stats.deadline_misses += 1;
                    }
                    let w = worker as usize;
                    if bad_run || deadline_miss {
                        rt.consec_bad[w] += 1;
                        if rt.consec_bad[w] >= rt.policy.failure_quarantine {
                            rt.state[w] = WorkerState::Quarantined;
                            rt.consec_bad[w] = 0;
                            stats.quarantines += 1;
                            releases.push(Reverse((now + rt.policy.quarantine_ms, worker)));
                            quarantined = true;
                        } else {
                            rt.state[w] = WorkerState::Degraded;
                        }
                    } else {
                        rt.consec_bad[w] = 0;
                        rt.state[w] = WorkerState::Healthy;
                    }
                }
                if !retried {
                    match &executions[job_i] {
                        Ok(exec) => {
                            stats.completed += 1;
                            if exec.degraded {
                                stats.degraded_completions += 1;
                            }
                            service.record(dur);
                            emit(
                                now,
                                worker,
                                EventKind::JobCompleted { job: jobs[job_i].id, service_ms: dur },
                            );
                        }
                        Err(e) => {
                            stats.failed += 1;
                            records[job_i] = Some(JobRecord {
                                id: jobs[job_i].id,
                                arrival_ms: jobs[job_i].arrival_ms,
                                outcome: JobOutcome::Failed { error: e.clone() },
                            });
                        }
                    }
                }
                if !quarantined {
                    free_workers.push(Reverse(worker));
                }
                // Dispatch frees queue slots, freed slots let blocked
                // arrivals in, and those may dispatch in turn — iterate
                // until neither step makes progress.
                loop {
                    self.drain(
                        now,
                        jobs,
                        &service_ms,
                        &mut queue,
                        &mut free_workers,
                        &mut completions,
                        &mut records,
                        &mut stats,
                        &mut queue_wait,
                        &mut dispatched_service_sum,
                        &mut health_rt,
                        &mut emit,
                    );
                    if queue.len() < self.cfg.queue_capacity && !vestibule.is_empty() {
                        let waiting = vestibule.pop_front().expect("vestibule non-empty");
                        self.admit(waiting, now, jobs, &mut queue, &mut stats, &mut emit);
                    } else {
                        break;
                    }
                }
                continue;
            }

            if next_release == Some(best) {
                // A quarantined worker rejoins the free pool, healthy.
                let Reverse((now, worker)) = releases.pop().expect("peeked release exists");
                if let Some(rt) = health_rt.as_mut() {
                    rt.state[worker as usize] = WorkerState::Healthy;
                }
                free_workers.push(Reverse(worker));
                loop {
                    self.drain(
                        now,
                        jobs,
                        &service_ms,
                        &mut queue,
                        &mut free_workers,
                        &mut completions,
                        &mut records,
                        &mut stats,
                        &mut queue_wait,
                        &mut dispatched_service_sum,
                        &mut health_rt,
                        &mut emit,
                    );
                    if queue.len() < self.cfg.queue_capacity && !vestibule.is_empty() {
                        let waiting = vestibule.pop_front().expect("vestibule non-empty");
                        self.admit(waiting, now, jobs, &mut queue, &mut stats, &mut emit);
                    } else {
                        break;
                    }
                }
                continue;
            }

            if next_retry == Some(best) {
                // A backed-off job re-enters the queue. Retries bypass
                // admission control: the breaker, not the queue bound,
                // is the overload valve for repeated failures.
                let Reverse((now, job_i)) = retries.pop().expect("peeked retry exists");
                self.admit(job_i, now, jobs, &mut queue, &mut stats, &mut emit);
                self.drain(
                    now,
                    jobs,
                    &service_ms,
                    &mut queue,
                    &mut free_workers,
                    &mut completions,
                    &mut records,
                    &mut stats,
                    &mut queue_wait,
                    &mut dispatched_service_sum,
                    &mut health_rt,
                    &mut emit,
                );
                continue;
            }

            // Arrival.
            let now = jobs[idx].arrival_ms;
            let job_i = idx;
            idx += 1;
            if queue.len() < self.cfg.queue_capacity {
                self.admit(job_i, now, jobs, &mut queue, &mut stats, &mut emit);
            } else {
                match self.cfg.policy {
                    Backpressure::Block => {
                        vestibule.push_back(job_i);
                    }
                    Backpressure::ShedOldest => {
                        let victim = queue.pop_front().expect("full queue has a head");
                        stats.shed += 1;
                        records[victim] = Some(JobRecord {
                            id: jobs[victim].id,
                            arrival_ms: jobs[victim].arrival_ms,
                            outcome: JobOutcome::Shed { at_ms: now },
                        });
                        emit(now, FRONTEND, EventKind::JobShed { job: jobs[victim].id });
                        self.admit(job_i, now, jobs, &mut queue, &mut stats, &mut emit);
                    }
                    Backpressure::Reject => {
                        // Estimate the backlog drain time from the mean
                        // dispatched service so far.
                        let mean = dispatched_service_sum
                            .checked_div(stats.dispatched)
                            .map_or(RETRY_BOOTSTRAP_MS, |m| m.max(1));
                        let backlog = queue.len() as u64 + self.cfg.workers as u64;
                        let hint = (backlog * mean / self.cfg.workers as u64).max(1);
                        stats.rejected += 1;
                        records[job_i] = Some(JobRecord {
                            id: jobs[job_i].id,
                            arrival_ms: now,
                            outcome: JobOutcome::Rejected { retry_hint_ms: hint },
                        });
                        emit(
                            now,
                            FRONTEND,
                            EventKind::JobRejected { job: jobs[job_i].id, retry_ms: hint },
                        );
                    }
                }
            }
            self.drain(
                now,
                jobs,
                &service_ms,
                &mut queue,
                &mut free_workers,
                &mut completions,
                &mut records,
                &mut stats,
                &mut queue_wait,
                &mut dispatched_service_sum,
                &mut health_rt,
                &mut emit,
            );
        }

        let records: Vec<JobRecord> =
            records.into_iter().map(|r| r.expect("every job reaches a terminal outcome")).collect();
        let offered = (self.cfg.workers as u64 * makespan_ms).max(1);
        let utilization = stats.busy_ms as f64 / offered as f64;
        let throughput_jps = if makespan_ms == 0 {
            0.0
        } else {
            stats.completed as f64 / (makespan_ms as f64 / 1_000.0)
        };
        let worker_health = match &health_rt {
            Some(rt) => rt.state.clone(),
            None => vec![WorkerState::Healthy; self.cfg.workers + 1],
        };
        ServiceOutcome {
            records,
            stats,
            queue_wait,
            service,
            makespan_ms,
            utilization,
            throughput_jps,
            worker_health,
        }
    }

    /// Puts `job_i` into the queue at `now`, counting and emitting.
    fn admit(
        &self,
        job_i: usize,
        now: u64,
        jobs: &[JobSpec],
        queue: &mut VecDeque<usize>,
        stats: &mut ServiceStats,
        emit: &mut impl FnMut(u64, u32, EventKind),
    ) {
        queue.push_back(job_i);
        stats.enqueued += 1;
        emit(
            now,
            0,
            EventKind::JobEnqueued { job: jobs[job_i].id, queue_depth: queue.len() as u32 },
        );
    }

    /// Hands queued jobs to free workers, lowest worker id first.
    #[allow(clippy::too_many_arguments)]
    fn drain(
        &self,
        now: u64,
        jobs: &[JobSpec],
        service_ms: &impl Fn(usize) -> u64,
        queue: &mut VecDeque<usize>,
        free_workers: &mut BinaryHeap<Reverse<u32>>,
        completions: &mut BinaryHeap<Reverse<(u64, u32, usize)>>,
        records: &mut [Option<JobRecord>],
        stats: &mut ServiceStats,
        queue_wait: &mut Histogram,
        dispatched_service_sum: &mut u64,
        health_rt: &mut Option<HealthRt>,
        emit: &mut impl FnMut(u64, u32, EventKind),
    ) {
        while !queue.is_empty() && !free_workers.is_empty() {
            let job_i = queue.pop_front().expect("queue non-empty");
            // A job whose class breaker is open fails fast without
            // occupying a worker.
            if let Some(rt) = health_rt.as_mut() {
                let class = rt.class_of[job_i];
                if rt.breaker_open(class, now) {
                    stats.failed += 1;
                    stats.breaker_fast_fails += 1;
                    records[job_i] = Some(JobRecord {
                        id: jobs[job_i].id,
                        arrival_ms: jobs[job_i].arrival_ms,
                        outcome: JobOutcome::Failed {
                            error: format!("circuit breaker open for class {class}"),
                        },
                    });
                    continue;
                }
            }
            let Reverse(worker) = free_workers.pop().expect("worker available");
            let waited = now - jobs[job_i].arrival_ms;
            let dur = service_ms(job_i);
            stats.dispatched += 1;
            *dispatched_service_sum += dur;
            queue_wait.record(waited);
            records[job_i] = Some(JobRecord {
                id: jobs[job_i].id,
                arrival_ms: jobs[job_i].arrival_ms,
                outcome: JobOutcome::Completed {
                    dispatch_ms: now,
                    complete_ms: now + dur,
                    service_ms: dur,
                },
            });
            emit(now, worker, EventKind::JobDispatched { job: jobs[job_i].id, queued_ms: waited });
            completions.push(Reverse((now + dur, worker, job_i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CircuitFamily, JobClass};

    /// A runner pricing every job at a fixed virtual cost.
    struct FixedRunner(u64);
    impl JobRunner for FixedRunner {
        fn run(&self, _job: &JobSpec) -> Result<JobExecution, String> {
            Ok(JobExecution {
                service_ms: self.0,
                circuit_height: 1,
                wires_routed: 1,
                degraded: false,
            })
        }
    }

    /// `n` arrivals every `gap_ms`, all of the same (irrelevant) class.
    fn trace(n: usize, gap_ms: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                id: i as u32,
                arrival_ms: i as u64 * gap_ms,
                class: JobClass::new(CircuitFamily::Tiny, "sequential", 1),
                circuit_seed: 0,
            })
            .collect()
    }

    /// Saturation fixture: service 100 ms, arrivals every 10 ms, one
    /// worker, queue of 2 — offered load 10× capacity.
    fn saturated(policy: Backpressure) -> ServiceOutcome {
        let server = JobServer::new(ServiceConfig::new(1, 2, policy));
        server.run(&trace(20, 10), &FixedRunner(100), &WorkerPool::serial(), None)
    }

    #[test]
    fn block_policy_loses_nothing_and_waits_grow() {
        let out = saturated(Backpressure::Block);
        assert_eq!(out.stats.completed, 20);
        assert_eq!(out.stats.shed, 0);
        assert_eq!(out.stats.rejected, 0);
        // Job k dispatches at k·100 ms but arrived at k·10 ms: the last
        // job waits ~19·90 ms. The queue itself never exceeds its bound,
        // so the wait shows up as queueing delay.
        let waits: Vec<u64> = out.records.iter().filter_map(JobRecord::queue_wait_ms).collect();
        assert_eq!(*waits.last().expect("jobs completed"), 19 * 100 - 19 * 10);
        assert!(waits.windows(2).all(|w| w[0] <= w[1]), "waits must be nondecreasing");
        assert_eq!(out.makespan_ms, 20 * 100);
    }

    #[test]
    fn shed_oldest_bounds_the_queue_and_drops_stale_work() {
        let out = saturated(Backpressure::ShedOldest);
        assert!(out.stats.shed > 10, "10x overload should shed most jobs: {:?}", out.stats);
        assert_eq!(out.stats.completed + out.stats.shed, 20);
        // Shed victims are the oldest waiters; the very first job is
        // already in service, so it completes.
        assert!(matches!(out.records[0].outcome, JobOutcome::Completed { .. }));
        assert!(matches!(out.records[1].outcome, JobOutcome::Shed { .. }));
        // Every completed wait is bounded by queue_capacity · service.
        for w in out.records.iter().filter_map(JobRecord::queue_wait_ms) {
            assert!(w <= 2 * 100, "wait {w} exceeds the shed bound");
        }
    }

    #[test]
    fn reject_policy_turns_arrivals_away_with_hints() {
        let out = saturated(Backpressure::Reject);
        assert!(out.stats.rejected > 10, "{:?}", out.stats);
        assert_eq!(out.stats.completed + out.stats.rejected, 20);
        for r in &out.records {
            if let JobOutcome::Rejected { retry_hint_ms } = r.outcome {
                assert!(retry_hint_ms >= 1);
            }
        }
        // Hints reflect the measured service time once jobs dispatch:
        // backlog (2 queued + 1 in service) · 100 ms mean.
        let hints: Vec<u64> = out
            .records
            .iter()
            .filter_map(|r| match r.outcome {
                JobOutcome::Rejected { retry_hint_ms } => Some(retry_hint_ms),
                _ => None,
            })
            .collect();
        assert!(hints.contains(&300), "expected a 300 ms hint, got {hints:?}");
    }

    #[test]
    fn underload_serves_everything_immediately() {
        let server = JobServer::new(ServiceConfig::new(2, 4, Backpressure::Reject));
        let out = server.run(&trace(10, 200), &FixedRunner(50), &WorkerPool::serial(), None);
        assert_eq!(out.stats.completed, 10);
        assert_eq!(out.queue_wait.max(), Some(0), "no waiting under light load");
        assert!(out.utilization < 0.5, "utilization {:.3}", out.utilization);
    }

    #[test]
    fn failures_are_recorded_not_panicked() {
        struct FailingRunner;
        impl JobRunner for FailingRunner {
            fn run(&self, job: &JobSpec) -> Result<JobExecution, String> {
                if job.id.is_multiple_of(2) {
                    Err("boom".to_string())
                } else {
                    Ok(JobExecution {
                        service_ms: 5,
                        circuit_height: 1,
                        wires_routed: 1,
                        degraded: false,
                    })
                }
            }
        }
        let server = JobServer::new(ServiceConfig::new(1, 4, Backpressure::Block));
        let out = server.run(&trace(6, 100), &FailingRunner, &WorkerPool::serial(), None);
        assert_eq!(out.stats.failed, 3);
        assert_eq!(out.stats.completed, 3);
        assert!(out
            .records
            .iter()
            .any(|r| matches!(&r.outcome, JobOutcome::Failed { error } if error == "boom")));
    }

    #[test]
    fn simulation_is_identical_across_pool_sizes() {
        let jobs = trace(30, 15);
        let server = JobServer::new(ServiceConfig::new(2, 3, Backpressure::ShedOldest));
        let serial = server.run(&jobs, &FixedRunner(40), &WorkerPool::serial(), None);
        for threads in [2, 8] {
            let par = server.run(&jobs, &FixedRunner(40), &WorkerPool::with_threads(threads), None);
            assert_eq!(serial.records, par.records, "threads={threads}");
            assert_eq!(serial.stats, par.stats);
        }
    }

    /// A runner whose even-id jobs come back degraded.
    struct DegradedRunner(u64);
    impl JobRunner for DegradedRunner {
        fn run(&self, job: &JobSpec) -> Result<JobExecution, String> {
            Ok(JobExecution {
                service_ms: self.0,
                circuit_height: 1,
                wires_routed: 1,
                degraded: job.id.is_multiple_of(2),
            })
        }
    }

    fn lenient_health() -> HealthPolicy {
        // Generous thresholds so individual tests can tighten exactly
        // the knob under study.
        HealthPolicy {
            deadline_ms: 1_000_000,
            max_retries: 2,
            backoff_base_ms: 20,
            quarantine_ms: 200,
            failure_quarantine: 1_000,
            breaker_window: 1_000,
            breaker_threshold_pct: 100,
        }
    }

    #[test]
    fn health_none_is_byte_identical_to_legacy() {
        // ServiceConfig::new leaves health off; the outcome must carry
        // the all-healthy placeholder and no health stats.
        let out = saturated(Backpressure::Block);
        assert_eq!(out.worker_health, vec![WorkerState::Healthy; 2]);
        assert_eq!(out.stats.retried, 0);
        assert_eq!(out.stats.quarantines, 0);
        assert_eq!(out.stats.breaker_trips, 0);
    }

    #[test]
    fn degraded_jobs_are_retried_with_backoff() {
        let policy = lenient_health();
        let server =
            JobServer::new(ServiceConfig::new(2, 8, Backpressure::Block).with_health(policy));
        let out = server.run(&trace(6, 100), &DegradedRunner(10), &WorkerPool::serial(), None);
        // Even ids (3 of them) are degraded and exhaust 2 retries each.
        assert_eq!(out.stats.retried, 6, "{:?}", out.stats);
        assert_eq!(out.stats.completed, 6);
        assert_eq!(out.stats.degraded_completions, 3);
        // Every job still ends Completed (degraded runs finish).
        assert!(out.records.iter().all(|r| matches!(r.outcome, JobOutcome::Completed { .. })));
        // Retried jobs complete later than their first attempt would:
        // arrival + service + backoff at minimum.
        for r in &out.records {
            if r.id % 2 == 0 {
                if let JobOutcome::Completed { complete_ms, .. } = r.outcome {
                    assert!(
                        complete_ms >= r.arrival_ms + 10 + policy.backoff_base_ms,
                        "job {} completed at {complete_ms} without visible backoff",
                        r.id
                    );
                }
            }
        }
    }

    #[test]
    fn deadline_misses_quarantine_a_worker() {
        let mut policy = lenient_health();
        policy.deadline_ms = 50; // every 100 ms job misses
        policy.failure_quarantine = 3;
        policy.quarantine_ms = 1_000;
        let server =
            JobServer::new(ServiceConfig::new(1, 20, Backpressure::Block).with_health(policy));
        let out = server.run(&trace(8, 10), &FixedRunner(100), &WorkerPool::serial(), None);
        assert!(out.stats.deadline_misses >= 8 - 2, "{:?}", out.stats);
        assert!(out.stats.quarantines >= 1, "{:?}", out.stats);
        // Quarantine pauses service, so the makespan stretches past the
        // no-policy 8·100 ms.
        assert!(out.makespan_ms > 800, "makespan {}", out.makespan_ms);
        // All jobs still complete once the worker is released.
        assert_eq!(out.stats.completed, 8);
    }

    #[test]
    fn failing_class_trips_the_breaker_and_fails_fast() {
        struct AlwaysFails;
        impl JobRunner for AlwaysFails {
            fn run(&self, _job: &JobSpec) -> Result<JobExecution, String> {
                Err("boom".to_string())
            }
        }
        let mut policy = lenient_health();
        policy.max_retries = 0;
        policy.breaker_window = 4;
        policy.breaker_threshold_pct = 75;
        policy.quarantine_ms = 10_000; // breaker stays open to the end
        let server =
            JobServer::new(ServiceConfig::new(2, 20, Backpressure::Block).with_health(policy));
        let out = server.run(&trace(16, 5), &AlwaysFails, &WorkerPool::serial(), None);
        assert!(out.stats.breaker_trips >= 1, "{:?}", out.stats);
        assert!(out.stats.breaker_fast_fails >= 1, "{:?}", out.stats);
        assert_eq!(out.stats.completed, 0);
        assert_eq!(out.stats.failed, 16);
        assert!(out.records.iter().any(
            |r| matches!(&r.outcome, JobOutcome::Failed { error } if error.contains("breaker"))
        ));
    }

    #[test]
    fn health_simulation_is_identical_across_pool_sizes() {
        let mut policy = lenient_health();
        policy.deadline_ms = 30;
        policy.failure_quarantine = 2;
        policy.breaker_window = 6;
        policy.breaker_threshold_pct = 60;
        let jobs = trace(30, 15);
        let server =
            JobServer::new(ServiceConfig::new(2, 3, Backpressure::ShedOldest).with_health(policy));
        let serial = server.run(&jobs, &DegradedRunner(40), &WorkerPool::serial(), None);
        for threads in [2, 8] {
            let par =
                server.run(&jobs, &DegradedRunner(40), &WorkerPool::with_threads(threads), None);
            assert_eq!(serial.records, par.records, "threads={threads}");
            assert_eq!(serial.stats, par.stats);
            assert_eq!(serial.worker_health, par.worker_health);
        }
    }

    #[test]
    fn retry_jitter_is_deterministic_and_spread() {
        let a = jitter(1, 1);
        assert_eq!(a, jitter(1, 1));
        assert_ne!(jitter(1, 1), jitter(1, 2));
        assert_ne!(jitter(1, 1), jitter(2, 1));
    }
}
