//! The routing job server: bounded admission queue, backpressure, and a
//! deterministic virtual-time dispatch simulation.
//!
//! A run has two phases. **Execute**: every job in the arrival trace is
//! routed on the scoped-thread [`WorkerPool`](crate::pool::WorkerPool)
//! through a [`JobRunner`], producing a deterministic virtual service
//! time per job (real threads, virtual prices — see
//! [`runner`](crate::runner)). **Simulate**: a sequential discrete-event
//! replay walks the arrival trace on the virtual ms clock, admits jobs
//! through the bounded queue under the configured [`Backpressure`]
//! policy, dispatches them to `workers` simulated servers, and stamps
//! every job's enqueue/dispatch/complete times. Because phase 2 depends
//! only on the trace and the virtual service times, the whole outcome is
//! byte-identical across runs, hosts, and pool sizes.
//!
//! Jobs that end up shed or rejected were still routed in phase 1 —
//! speculative work the report's `wasted` ratio makes visible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use locus_obs::{Event, EventKind, Histogram, SharedSink, Sink};

use crate::pool::WorkerPool;
use crate::runner::{JobExecution, JobRunner};
use crate::workload::JobSpec;

/// What the server does when a job arrives at a full queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backpressure {
    /// The arrival waits outside the queue (the submitting client
    /// blocks) and enters as soon as a slot frees. Nothing is lost;
    /// queueing delay absorbs the overload.
    Block,
    /// The oldest *queued* job is dropped to admit the newcomer —
    /// freshest-work-wins, bounding staleness under overload.
    ShedOldest,
    /// The newcomer is turned away with a retry hint estimating when the
    /// backlog will drain.
    Reject,
}

impl Backpressure {
    /// Short stable name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            Backpressure::Block => "block",
            Backpressure::ShedOldest => "shed-oldest",
            Backpressure::Reject => "reject",
        }
    }
}

/// Server shape: simulated worker count, queue bound, and policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Simulated routing servers draining the queue.
    pub workers: usize,
    /// Waiting-job bound of the admission queue (≥ 1).
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub policy: Backpressure,
}

impl ServiceConfig {
    /// A server with `workers` servers, a queue of `queue_capacity`, and
    /// the given policy.
    pub fn new(workers: usize, queue_capacity: usize, policy: Backpressure) -> Self {
        ServiceConfig { workers: workers.max(1), queue_capacity: queue_capacity.max(1), policy }
    }
}

/// How one job's pass through the server ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Dispatched and served to completion.
    Completed {
        /// Virtual ms the job left the queue for a worker.
        dispatch_ms: u64,
        /// Virtual ms service finished.
        complete_ms: u64,
        /// Service duration (== `complete_ms - dispatch_ms`).
        service_ms: u64,
    },
    /// Dropped from the queue by [`Backpressure::ShedOldest`].
    Shed {
        /// Virtual ms the shed happened (a newer arrival's timestamp).
        at_ms: u64,
    },
    /// Turned away at arrival by [`Backpressure::Reject`].
    Rejected {
        /// Suggested client back-off before resubmitting (virtual ms).
        retry_hint_ms: u64,
    },
    /// The runner could not route the job (e.g. unknown engine name).
    Failed {
        /// The runner's error.
        error: String,
    },
}

/// One job's record: identity, arrival, and how it ended.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Trace job id.
    pub id: u32,
    /// Virtual arrival time (ms).
    pub arrival_ms: u64,
    /// How the pass ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Queueing delay for completed jobs (arrival → dispatch).
    pub fn queue_wait_ms(&self) -> Option<u64> {
        match self.outcome {
            JobOutcome::Completed { dispatch_ms, .. } => Some(dispatch_ms - self.arrival_ms),
            _ => None,
        }
    }
}

/// The server's own tally, kept independently of obs so the two can be
/// cross-checked (see `tests/service.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs in the arrival trace.
    pub submitted: u64,
    /// Jobs that entered the queue (including via the block vestibule).
    pub enqueued: u64,
    /// Jobs handed to a worker.
    pub dispatched: u64,
    /// Jobs served to completion.
    pub completed: u64,
    /// Jobs dropped by shed-oldest.
    pub shed: u64,
    /// Jobs turned away by reject.
    pub rejected: u64,
    /// Jobs whose runner errored.
    pub failed: u64,
    /// Total busy worker·ms across the run.
    pub busy_ms: u64,
}

/// Everything a server run produces.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Per-job records in trace order.
    pub records: Vec<JobRecord>,
    /// The server's own tally.
    pub stats: ServiceStats,
    /// Queueing-delay histogram (dispatched jobs, virtual ms).
    pub queue_wait: Histogram,
    /// Service-latency histogram (completed jobs, virtual ms).
    pub service: Histogram,
    /// Virtual ms from trace start to the last completion.
    pub makespan_ms: u64,
    /// Busy worker·ms over offered worker·ms (0..=1).
    pub utilization: f64,
    /// Completed jobs per virtual second.
    pub throughput_jps: f64,
}

/// The routing job server; see the [module docs](self).
pub struct JobServer {
    cfg: ServiceConfig,
}

/// Fallback mean service estimate (virtual ms) for retry hints before
/// any job has been dispatched.
const RETRY_BOOTSTRAP_MS: u64 = 10;

impl JobServer {
    /// A server with the given shape.
    pub fn new(cfg: ServiceConfig) -> Self {
        JobServer { cfg }
    }

    /// Runs the full trace: executes every job on `pool` via `runner`,
    /// then replays admission and dispatch on the virtual clock,
    /// emitting service events into `sink` when given.
    ///
    /// `jobs` must be sorted by `arrival_ms` (as
    /// [`workload::generate`](crate::workload::generate) produces them).
    pub fn run(
        &self,
        jobs: &[JobSpec],
        runner: &dyn JobRunner,
        pool: &WorkerPool,
        sink: Option<SharedSink>,
    ) -> ServiceOutcome {
        let executions = pool.map(jobs.to_vec(), |job| runner.run(&job));
        self.simulate(jobs, &executions, sink)
    }

    /// Phase 2 alone: replays admission/dispatch for pre-computed
    /// executions. Exposed so tests can drive the policies with
    /// hand-built service times.
    pub fn simulate(
        &self,
        jobs: &[JobSpec],
        executions: &[Result<JobExecution, String>],
        sink: Option<SharedSink>,
    ) -> ServiceOutcome {
        assert_eq!(jobs.len(), executions.len(), "one execution per job");
        let mut sink = sink.map(|s| Box::new(s) as Box<dyn Sink>);
        // Virtual ms → event timestamp ns.
        let mut emit = |at_ms: u64, node: u32, kind: EventKind| {
            if let Some(s) = sink.as_mut() {
                s.record(Event { at_ns: at_ms.saturating_mul(1_000_000), node, kind });
            }
        };
        // Node 0 is the admission frontend; workers are nodes 1..=W.
        const FRONTEND: u32 = 0;

        let mut stats = ServiceStats { submitted: jobs.len() as u64, ..ServiceStats::default() };
        let mut records: Vec<Option<JobRecord>> = vec![None; jobs.len()];
        let mut queue_wait = Histogram::default();
        let mut service = Histogram::default();

        // Simulation state.
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut vestibule: VecDeque<usize> = VecDeque::new();
        let mut free_workers: BinaryHeap<Reverse<u32>> =
            (1..=self.cfg.workers as u32).map(Reverse).collect();
        // (complete_ms, worker, job index); Reverse for a min-heap, with
        // worker/job ids as deterministic tie-breaks.
        let mut completions: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
        let mut makespan_ms = 0u64;
        let mut dispatched_service_sum = 0u64;

        // Service time of job `i`; runner failures are recorded as Failed
        // and occupy a worker for 1 virtual ms (the error path is cheap
        // but not free).
        let service_ms = |i: usize| match &executions[i] {
            Ok(exec) => exec.service_ms.max(1),
            Err(_) => 1,
        };

        let mut idx = 0usize;
        while idx < jobs.len() || !completions.is_empty() {
            // Next arrival vs. next completion; completions at the same
            // virtual ms are applied first so freed capacity is visible
            // to the arrival that shares its timestamp.
            let next_arrival = jobs.get(idx).map(|j| j.arrival_ms);
            let next_completion = completions.peek().map(|Reverse((t, _, _))| *t);
            let take_completion = match (next_arrival, next_completion) {
                (Some(a), Some(c)) => c <= a,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };

            if take_completion {
                let Reverse((now, worker, job_i)) =
                    completions.pop().expect("peeked completion exists");
                let dispatch_ms = match &records[job_i] {
                    Some(JobRecord {
                        outcome: JobOutcome::Completed { dispatch_ms, .. }, ..
                    }) => *dispatch_ms,
                    _ => unreachable!("completion for undisp. job"),
                };
                let dur = now - dispatch_ms;
                stats.busy_ms += dur;
                makespan_ms = makespan_ms.max(now);
                match &executions[job_i] {
                    Ok(_) => {
                        stats.completed += 1;
                        service.record(dur);
                        emit(
                            now,
                            worker,
                            EventKind::JobCompleted { job: jobs[job_i].id, service_ms: dur },
                        );
                    }
                    Err(e) => {
                        stats.failed += 1;
                        records[job_i] = Some(JobRecord {
                            id: jobs[job_i].id,
                            arrival_ms: jobs[job_i].arrival_ms,
                            outcome: JobOutcome::Failed { error: e.clone() },
                        });
                    }
                }
                free_workers.push(Reverse(worker));
                // Dispatch frees queue slots, freed slots let blocked
                // arrivals in, and those may dispatch in turn — iterate
                // until neither step makes progress.
                loop {
                    self.drain(
                        now,
                        jobs,
                        &service_ms,
                        &mut queue,
                        &mut free_workers,
                        &mut completions,
                        &mut records,
                        &mut stats,
                        &mut queue_wait,
                        &mut dispatched_service_sum,
                        &mut emit,
                    );
                    if queue.len() < self.cfg.queue_capacity && !vestibule.is_empty() {
                        let waiting = vestibule.pop_front().expect("vestibule non-empty");
                        self.admit(waiting, now, jobs, &mut queue, &mut stats, &mut emit);
                    } else {
                        break;
                    }
                }
                continue;
            }

            // Arrival.
            let now = jobs[idx].arrival_ms;
            let job_i = idx;
            idx += 1;
            if queue.len() < self.cfg.queue_capacity {
                self.admit(job_i, now, jobs, &mut queue, &mut stats, &mut emit);
            } else {
                match self.cfg.policy {
                    Backpressure::Block => {
                        vestibule.push_back(job_i);
                    }
                    Backpressure::ShedOldest => {
                        let victim = queue.pop_front().expect("full queue has a head");
                        stats.shed += 1;
                        records[victim] = Some(JobRecord {
                            id: jobs[victim].id,
                            arrival_ms: jobs[victim].arrival_ms,
                            outcome: JobOutcome::Shed { at_ms: now },
                        });
                        emit(now, FRONTEND, EventKind::JobShed { job: jobs[victim].id });
                        self.admit(job_i, now, jobs, &mut queue, &mut stats, &mut emit);
                    }
                    Backpressure::Reject => {
                        // Estimate the backlog drain time from the mean
                        // dispatched service so far.
                        let mean = dispatched_service_sum
                            .checked_div(stats.dispatched)
                            .map_or(RETRY_BOOTSTRAP_MS, |m| m.max(1));
                        let backlog = queue.len() as u64 + self.cfg.workers as u64;
                        let hint = (backlog * mean / self.cfg.workers as u64).max(1);
                        stats.rejected += 1;
                        records[job_i] = Some(JobRecord {
                            id: jobs[job_i].id,
                            arrival_ms: now,
                            outcome: JobOutcome::Rejected { retry_hint_ms: hint },
                        });
                        emit(
                            now,
                            FRONTEND,
                            EventKind::JobRejected { job: jobs[job_i].id, retry_ms: hint },
                        );
                    }
                }
            }
            self.drain(
                now,
                jobs,
                &service_ms,
                &mut queue,
                &mut free_workers,
                &mut completions,
                &mut records,
                &mut stats,
                &mut queue_wait,
                &mut dispatched_service_sum,
                &mut emit,
            );
        }

        let records: Vec<JobRecord> =
            records.into_iter().map(|r| r.expect("every job reaches a terminal outcome")).collect();
        let offered = (self.cfg.workers as u64 * makespan_ms).max(1);
        let utilization = stats.busy_ms as f64 / offered as f64;
        let throughput_jps = if makespan_ms == 0 {
            0.0
        } else {
            stats.completed as f64 / (makespan_ms as f64 / 1_000.0)
        };
        ServiceOutcome {
            records,
            stats,
            queue_wait,
            service,
            makespan_ms,
            utilization,
            throughput_jps,
        }
    }

    /// Puts `job_i` into the queue at `now`, counting and emitting.
    fn admit(
        &self,
        job_i: usize,
        now: u64,
        jobs: &[JobSpec],
        queue: &mut VecDeque<usize>,
        stats: &mut ServiceStats,
        emit: &mut impl FnMut(u64, u32, EventKind),
    ) {
        queue.push_back(job_i);
        stats.enqueued += 1;
        emit(
            now,
            0,
            EventKind::JobEnqueued { job: jobs[job_i].id, queue_depth: queue.len() as u32 },
        );
    }

    /// Hands queued jobs to free workers, lowest worker id first.
    #[allow(clippy::too_many_arguments)]
    fn drain(
        &self,
        now: u64,
        jobs: &[JobSpec],
        service_ms: &impl Fn(usize) -> u64,
        queue: &mut VecDeque<usize>,
        free_workers: &mut BinaryHeap<Reverse<u32>>,
        completions: &mut BinaryHeap<Reverse<(u64, u32, usize)>>,
        records: &mut [Option<JobRecord>],
        stats: &mut ServiceStats,
        queue_wait: &mut Histogram,
        dispatched_service_sum: &mut u64,
        emit: &mut impl FnMut(u64, u32, EventKind),
    ) {
        while !queue.is_empty() && !free_workers.is_empty() {
            let job_i = queue.pop_front().expect("queue non-empty");
            let Reverse(worker) = free_workers.pop().expect("worker available");
            let waited = now - jobs[job_i].arrival_ms;
            let dur = service_ms(job_i);
            stats.dispatched += 1;
            *dispatched_service_sum += dur;
            queue_wait.record(waited);
            records[job_i] = Some(JobRecord {
                id: jobs[job_i].id,
                arrival_ms: jobs[job_i].arrival_ms,
                outcome: JobOutcome::Completed {
                    dispatch_ms: now,
                    complete_ms: now + dur,
                    service_ms: dur,
                },
            });
            emit(now, worker, EventKind::JobDispatched { job: jobs[job_i].id, queued_ms: waited });
            completions.push(Reverse((now + dur, worker, job_i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CircuitFamily, JobClass};

    /// A runner pricing every job at a fixed virtual cost.
    struct FixedRunner(u64);
    impl JobRunner for FixedRunner {
        fn run(&self, _job: &JobSpec) -> Result<JobExecution, String> {
            Ok(JobExecution { service_ms: self.0, circuit_height: 1, wires_routed: 1 })
        }
    }

    /// `n` arrivals every `gap_ms`, all of the same (irrelevant) class.
    fn trace(n: usize, gap_ms: u64) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                id: i as u32,
                arrival_ms: i as u64 * gap_ms,
                class: JobClass::new(CircuitFamily::Tiny, "sequential", 1),
                circuit_seed: 0,
            })
            .collect()
    }

    /// Saturation fixture: service 100 ms, arrivals every 10 ms, one
    /// worker, queue of 2 — offered load 10× capacity.
    fn saturated(policy: Backpressure) -> ServiceOutcome {
        let server = JobServer::new(ServiceConfig::new(1, 2, policy));
        server.run(&trace(20, 10), &FixedRunner(100), &WorkerPool::serial(), None)
    }

    #[test]
    fn block_policy_loses_nothing_and_waits_grow() {
        let out = saturated(Backpressure::Block);
        assert_eq!(out.stats.completed, 20);
        assert_eq!(out.stats.shed, 0);
        assert_eq!(out.stats.rejected, 0);
        // Job k dispatches at k·100 ms but arrived at k·10 ms: the last
        // job waits ~19·90 ms. The queue itself never exceeds its bound,
        // so the wait shows up as queueing delay.
        let waits: Vec<u64> = out.records.iter().filter_map(JobRecord::queue_wait_ms).collect();
        assert_eq!(*waits.last().expect("jobs completed"), 19 * 100 - 19 * 10);
        assert!(waits.windows(2).all(|w| w[0] <= w[1]), "waits must be nondecreasing");
        assert_eq!(out.makespan_ms, 20 * 100);
    }

    #[test]
    fn shed_oldest_bounds_the_queue_and_drops_stale_work() {
        let out = saturated(Backpressure::ShedOldest);
        assert!(out.stats.shed > 10, "10x overload should shed most jobs: {:?}", out.stats);
        assert_eq!(out.stats.completed + out.stats.shed, 20);
        // Shed victims are the oldest waiters; the very first job is
        // already in service, so it completes.
        assert!(matches!(out.records[0].outcome, JobOutcome::Completed { .. }));
        assert!(matches!(out.records[1].outcome, JobOutcome::Shed { .. }));
        // Every completed wait is bounded by queue_capacity · service.
        for w in out.records.iter().filter_map(JobRecord::queue_wait_ms) {
            assert!(w <= 2 * 100, "wait {w} exceeds the shed bound");
        }
    }

    #[test]
    fn reject_policy_turns_arrivals_away_with_hints() {
        let out = saturated(Backpressure::Reject);
        assert!(out.stats.rejected > 10, "{:?}", out.stats);
        assert_eq!(out.stats.completed + out.stats.rejected, 20);
        for r in &out.records {
            if let JobOutcome::Rejected { retry_hint_ms } = r.outcome {
                assert!(retry_hint_ms >= 1);
            }
        }
        // Hints reflect the measured service time once jobs dispatch:
        // backlog (2 queued + 1 in service) · 100 ms mean.
        let hints: Vec<u64> = out
            .records
            .iter()
            .filter_map(|r| match r.outcome {
                JobOutcome::Rejected { retry_hint_ms } => Some(retry_hint_ms),
                _ => None,
            })
            .collect();
        assert!(hints.iter().any(|&h| h == 300), "expected a 300 ms hint, got {hints:?}");
    }

    #[test]
    fn underload_serves_everything_immediately() {
        let server = JobServer::new(ServiceConfig::new(2, 4, Backpressure::Reject));
        let out = server.run(&trace(10, 200), &FixedRunner(50), &WorkerPool::serial(), None);
        assert_eq!(out.stats.completed, 10);
        assert_eq!(out.queue_wait.max(), Some(0), "no waiting under light load");
        assert!(out.utilization < 0.5, "utilization {:.3}", out.utilization);
    }

    #[test]
    fn failures_are_recorded_not_panicked() {
        struct FailingRunner;
        impl JobRunner for FailingRunner {
            fn run(&self, job: &JobSpec) -> Result<JobExecution, String> {
                if job.id % 2 == 0 {
                    Err("boom".to_string())
                } else {
                    Ok(JobExecution { service_ms: 5, circuit_height: 1, wires_routed: 1 })
                }
            }
        }
        let server = JobServer::new(ServiceConfig::new(1, 4, Backpressure::Block));
        let out = server.run(&trace(6, 100), &FailingRunner, &WorkerPool::serial(), None);
        assert_eq!(out.stats.failed, 3);
        assert_eq!(out.stats.completed, 3);
        assert!(out
            .records
            .iter()
            .any(|r| matches!(&r.outcome, JobOutcome::Failed { error } if error == "boom")));
    }

    #[test]
    fn simulation_is_identical_across_pool_sizes() {
        let jobs = trace(30, 15);
        let server = JobServer::new(ServiceConfig::new(2, 3, Backpressure::ShedOldest));
        let serial = server.run(&jobs, &FixedRunner(40), &WorkerPool::serial(), None);
        for threads in [2, 8] {
            let par = server.run(&jobs, &FixedRunner(40), &WorkerPool::with_threads(threads), None);
            assert_eq!(serial.records, par.records, "threads={threads}");
            assert_eq!(serial.stats, par.stats);
        }
    }
}
