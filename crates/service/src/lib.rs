//! # locus-service
//!
//! Routing as a service for the `locusroute-rs` reproduction of
//! Martonosi & Gupta (ICPP 1989): a traffic-driven job server over the
//! workspace's [`RoutingEngine`](locus_router::RoutingEngine) registry.
//!
//! The paper studies one circuit at a time; this crate studies the
//! *serving* problem layered on top — what happens when routing jobs
//! arrive as traffic. A run wires four pieces together:
//!
//! 1. [`workload`] — a seeded discrete-event arrival-trace generator on
//!    a virtual millisecond clock: exponential inter-arrivals shaped by
//!    rush-hour burst windows, job classes mixing circuit families
//!    (paper presets plus the scale-free power-law family) × engines ×
//!    processor counts.
//! 2. [`pool`] — a scoped-thread worker pool (the workspace's third
//!    audited spawn site) that routes every job in the trace, claiming
//!    work off a shared counter and reassembling results in input order.
//! 3. [`runner`] — the deterministic cost model pricing each routed job
//!    in virtual ms (the engine's simulated clock when it has one, a
//!    cells-examined work model otherwise).
//! 4. [`server`] — a bounded admission queue with configurable
//!    backpressure (block / shed-oldest / reject-with-retry-hint) and a
//!    virtual-time dispatch simulation over `workers` simulated servers,
//!    stamping every job's enqueue/dispatch/complete times.
//!
//! Because arrival times and service prices are both virtual, the whole
//! pipeline is a closed deterministic simulation: same seed ⇒ same
//! trace ⇒ same admission/shed decisions ⇒ byte-identical reports,
//! independent of the host and of the execution pool's thread count.
//! Queueing delays, service latencies, throughput, shed/reject counts,
//! and utilization flow out both as [`locus_obs`] events/counters and
//! in the server's own [`ServiceStats`] (cross-checked in tests).

pub mod pool;
pub mod runner;
pub mod server;
pub mod workload;

pub use pool::WorkerPool;
pub use runner::{EngineFactory, EngineRunner, JobExecution, JobRunner, DEFAULT_CELLS_PER_MS};
pub use server::{
    Backpressure, HealthPolicy, JobOutcome, JobRecord, JobServer, ServiceConfig, ServiceOutcome,
    ServiceStats, WorkerState,
};
pub use workload::{generate, Burst, CircuitFamily, JobClass, JobSpec, WorkloadConfig};
