//! The service's scoped-thread worker pool.
//!
//! This is the third audited raw-spawn site in the workspace (after
//! `locus_bench::sweep` and `locus_shmem::parallel`, see the concurrency
//! lint) and follows the same discipline as the sweep harness: workers
//! claim jobs off a shared relaxed counter — the routers' own
//! distributed-loop scheduling — and results are reassembled in input
//! order, so the pool's output is independent of the worker count and of
//! OS scheduling. That independence is what lets the server run its
//! admission simulation on virtual time while the actual routing work
//! executes on however many threads the host offers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound on worker threads; each job is a full routing run, so a
/// small pool saturates quickly.
const MAX_THREADS: usize = 8;

/// A job executor: inline (one worker) or a scoped pool pulling jobs off
/// a shared counter.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Runs every job inline on the calling thread.
    pub fn serial() -> Self {
        WorkerPool { threads: 1 }
    }

    /// Sizes the pool to the host's available parallelism (capped at 8).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        WorkerPool { threads: n.min(MAX_THREADS) }
    }

    /// A pool of exactly `threads` workers (clamped to `1..=8`).
    pub fn with_threads(threads: usize) -> Self {
        WorkerPool { threads: threads.clamp(1, MAX_THREADS) }
    }

    /// Worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, preserving input order in the output.
    ///
    /// `f` must be deterministic for the output to be independent of the
    /// worker count; every routing engine the service dispatches through
    /// this pool satisfies that (the registry's wall-clock engine is the
    /// documented exception and is not part of any default workload).
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let n = items.len();
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let next = AtomicUsize::new(0);
        let done: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = slots[idx]
                        .lock()
                        .expect("job slot mutex poisoned")
                        .take()
                        .expect("each job claimed once");
                    *done[idx].lock().expect("result mutex poisoned") = Some(f(item));
                });
            }
        });
        done.into_iter()
            .map(|m| m.into_inner().expect("result mutex poisoned").expect("every job computed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_independent_of_worker_count() {
        let items: Vec<u64> = (0..53).collect();
        let serial = WorkerPool::serial().map(items.clone(), |x| x.wrapping_mul(x) + 1);
        for threads in [2, 4, 8] {
            let parallel =
                WorkerPool::with_threads(threads).map(items.clone(), |x| x.wrapping_mul(x) + 1);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn thread_counts_are_clamped() {
        assert_eq!(WorkerPool::with_threads(0).threads(), 1);
        assert_eq!(WorkerPool::with_threads(64).threads(), MAX_THREADS);
        assert!(WorkerPool::auto().threads() >= 1);
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let p = WorkerPool::with_threads(4);
        assert_eq!(p.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(p.map(vec![9u32], |x| x * 2), vec![18]);
    }
}
