//! Seeded discrete-event workload generation.
//!
//! A workload is an *arrival trace*: a list of routing jobs, each
//! stamped with a virtual-millisecond arrival time and a job class
//! (circuit family × engine × processor count × router parameters).
//! Inter-arrival gaps are exponential with a time-of-day rate profile —
//! rush-hour windows multiply the base rate, mirroring the demand curve
//! of any real request-serving system — and the whole trace is a pure
//! function of [`WorkloadConfig::seed`]: same seed, same trace, same
//! admission decisions downstream.

use locus_circuit::{presets, Circuit, CircuitGenerator, GeneratorConfig};
use locus_router::RouterParams;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which synthetic circuit population a job routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitFamily {
    /// 4×24 surface, 12 wires ([`presets::tiny_config`]).
    Tiny,
    /// 8×128 surface, 120 wires ([`presets::small_config`]).
    Small,
    /// The bnrE stand-in: 10×341, 420 wires ([`presets::bnr_e_config`]).
    BnrE,
    /// The MDC stand-in: 12×386, 573 wires ([`presets::mdc_config`]).
    Mdc,
    /// Scale-free Pareto spans: 9×288, 360 wires
    /// ([`presets::power_law_config`]).
    PowerLaw,
}

impl CircuitFamily {
    /// Short stable name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            CircuitFamily::Tiny => "tiny",
            CircuitFamily::Small => "small",
            CircuitFamily::BnrE => "bnrE",
            CircuitFamily::Mdc => "mdc",
            CircuitFamily::PowerLaw => "powerlaw",
        }
    }

    /// The family's generator configuration reseeded with `seed`, so two
    /// jobs of the same family still route distinct circuit instances.
    pub fn config(&self, seed: u64) -> GeneratorConfig {
        let mut cfg = match self {
            CircuitFamily::Tiny => presets::tiny_config(),
            CircuitFamily::Small => presets::small_config(),
            CircuitFamily::BnrE => presets::bnr_e_config(),
            CircuitFamily::Mdc => presets::mdc_config(),
            CircuitFamily::PowerLaw => presets::power_law_config(),
        };
        cfg.seed = seed;
        cfg
    }

    /// Generates the circuit instance for `seed`.
    pub fn instantiate(&self, seed: u64) -> Circuit {
        CircuitGenerator::new(self.config(seed)).generate()
    }
}

/// One kind of routing job the workload mix can draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobClass {
    /// Circuit population routed by jobs of this class.
    pub family: CircuitFamily,
    /// Engine registry name (resolved by the server's engine factory).
    pub engine: &'static str,
    /// Processor count handed to the engine.
    pub procs: usize,
    /// Router parameters for the run.
    pub params: RouterParams,
}

impl JobClass {
    /// A class routing `family` on `engine` with `procs` processors and
    /// default router parameters.
    pub fn new(family: CircuitFamily, engine: &'static str, procs: usize) -> Self {
        JobClass { family, engine, procs, params: RouterParams::default() }
    }
}

/// One routing job in the arrival trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// Trace-unique id, dense from 0 in arrival order.
    pub id: u32,
    /// Virtual arrival time (ms since trace start).
    pub arrival_ms: u64,
    /// What to route, with what.
    pub class: JobClass,
    /// Seed for this job's circuit instance.
    pub circuit_seed: u64,
}

/// A rate-multiplier window inside the simulated day.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Burst {
    /// Window start, ms into the day.
    pub start_ms: u64,
    /// Window end (exclusive), ms into the day.
    pub end_ms: u64,
    /// Arrival-rate multiplier while inside the window.
    pub factor: f64,
}

/// Parameters of the seeded arrival-trace generator.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Trace seed; equal seeds produce identical traces.
    pub seed: u64,
    /// Trace length in virtual ms.
    pub duration_ms: u64,
    /// Mean inter-arrival gap (ms) at `load = 1.0`, off-peak.
    pub mean_interarrival_ms: f64,
    /// Offered-load multiplier: 2.0 doubles the arrival rate everywhere.
    pub load: f64,
    /// Length of the simulated day the burst windows repeat over.
    pub day_ms: u64,
    /// Rush-hour windows (positions within the day).
    pub bursts: Vec<Burst>,
    /// Weighted job classes the mix draws from. Must be non-empty with a
    /// positive total weight.
    pub mix: Vec<(JobClass, u32)>,
}

impl WorkloadConfig {
    /// A demand curve with morning and evening rush hours over a
    /// compressed day, and a mix of small shared-memory jobs — a
    /// reasonable default for service studies. `duration_ms` of one
    /// `day_ms` (86_400 virtual ms ≙ 24 "hours" of 3.6 s each) covers
    /// both rush windows.
    pub fn rush_hour(seed: u64, duration_ms: u64, mean_interarrival_ms: f64) -> Self {
        let hour = 3_600;
        WorkloadConfig {
            seed,
            duration_ms,
            mean_interarrival_ms,
            load: 1.0,
            day_ms: 24 * hour,
            bursts: vec![
                Burst { start_ms: 7 * hour, end_ms: 9 * hour, factor: 2.5 },
                Burst { start_ms: 17 * hour, end_ms: 19 * hour, factor: 3.0 },
            ],
            mix: vec![
                (JobClass::new(CircuitFamily::Tiny, "sequential", 1), 4),
                (JobClass::new(CircuitFamily::Small, "sequential", 1), 3),
                (JobClass::new(CircuitFamily::PowerLaw, "sequential", 1), 2),
                (JobClass::new(CircuitFamily::Small, "shmem-emul", 4), 1),
            ],
        }
    }

    /// Instantaneous rate multiplier at virtual time `t_ms`.
    fn rate_factor(&self, t_ms: u64) -> f64 {
        let day = self.day_ms.max(1);
        let tod = t_ms % day;
        self.bursts
            .iter()
            .find(|b| (b.start_ms..b.end_ms).contains(&tod))
            .map(|b| b.factor)
            .unwrap_or(1.0)
    }
}

/// Generates the arrival trace for `cfg`. Deterministic: the trace is a
/// pure function of the configuration.
///
/// # Panics
/// Panics if the mix is empty or has zero total weight.
pub fn generate(cfg: &WorkloadConfig) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total_weight: u64 = cfg.mix.iter().map(|&(_, w)| w as u64).sum();
    assert!(total_weight > 0, "workload mix needs positive weight");

    let mut jobs = Vec::new();
    let mut t = 0.0f64;
    loop {
        let factor = cfg.rate_factor(t as u64) * cfg.load.max(1e-6);
        let mean = (cfg.mean_interarrival_ms / factor).max(1e-3);
        // Exponential gap via inverse CDF; guard u = 0.
        let u: f64 = rng.random();
        t += -u.max(f64::MIN_POSITIVE).ln() * mean;
        if t >= cfg.duration_ms as f64 {
            break;
        }
        // Weighted class draw.
        let mut pick = rng.random_range(0..total_weight);
        let mut class = cfg.mix[0].0;
        for &(c, w) in &cfg.mix {
            let w = w as u64;
            if pick < w {
                class = c;
                break;
            }
            pick -= w;
        }
        let circuit_seed: u64 = rng.random();
        jobs.push(JobSpec { id: jobs.len() as u32, arrival_ms: t as u64, class, circuit_seed });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> WorkloadConfig {
        WorkloadConfig::rush_hour(seed, 20_000, 100.0)
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        assert_eq!(generate(&quick_cfg(5)), generate(&quick_cfg(5)));
        assert_ne!(generate(&quick_cfg(5)), generate(&quick_cfg(6)));
    }

    #[test]
    fn arrivals_are_ordered_and_inside_the_window() {
        let jobs = generate(&quick_cfg(1));
        assert!(jobs.len() > 50, "expected a real trace, got {}", jobs.len());
        for pair in jobs.windows(2) {
            assert!(pair[0].arrival_ms <= pair[1].arrival_ms);
        }
        assert!(jobs.iter().all(|j| j.arrival_ms < 20_000));
        assert!(jobs.iter().enumerate().all(|(i, j)| j.id as usize == i));
    }

    #[test]
    fn load_scales_the_arrival_count() {
        let base = generate(&quick_cfg(2)).len() as f64;
        let mut heavy = quick_cfg(2);
        heavy.load = 3.0;
        let heavy = generate(&heavy).len() as f64;
        assert!(heavy > 2.0 * base, "load 3x should roughly triple arrivals: {base} -> {heavy}");
    }

    #[test]
    fn rush_windows_concentrate_arrivals() {
        // A trace covering one full day: the 17–19h window (factor 3.0)
        // must be busier per-ms than the 0–7h off-peak stretch.
        let cfg = WorkloadConfig::rush_hour(3, 86_400, 200.0);
        let jobs = generate(&cfg);
        let in_window = |lo: u64, hi: u64| {
            jobs.iter().filter(|j| (lo..hi).contains(&j.arrival_ms)).count() as f64
                / (hi - lo) as f64
        };
        let rush = in_window(17 * 3_600, 19 * 3_600);
        let calm = in_window(0, 7 * 3_600);
        assert!(rush > 1.8 * calm, "rush density {rush:.4} vs calm {calm:.4}");
    }

    #[test]
    fn mix_draws_every_family_with_weight() {
        let jobs = generate(&WorkloadConfig::rush_hour(4, 60_000, 50.0));
        let count = |f: CircuitFamily| jobs.iter().filter(|j| j.class.family == f).count();
        assert!(count(CircuitFamily::Tiny) > count(CircuitFamily::PowerLaw));
        assert!(count(CircuitFamily::PowerLaw) > 0);
        assert!(jobs.iter().any(|j| j.class.engine == "shmem-emul"));
    }

    #[test]
    fn families_instantiate_valid_circuits() {
        for f in [
            CircuitFamily::Tiny,
            CircuitFamily::Small,
            CircuitFamily::BnrE,
            CircuitFamily::Mdc,
            CircuitFamily::PowerLaw,
        ] {
            let c = f.instantiate(77);
            c.validate().expect("family circuit is valid");
            assert!(c.wire_count() > 0);
            // Reseeding changes the instance but keeps the surface shape.
            let d = f.instantiate(78);
            assert_eq!((c.channels, c.grids), (d.channels, d.grids));
            assert_ne!(c.wires, d.wires);
        }
    }
}
