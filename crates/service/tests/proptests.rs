//! Determinism properties of the service layer.
//!
//! The headline guarantee: a workload seed fully determines the arrival
//! trace, every admission/shed/reject decision, and the latency
//! histograms — and none of it depends on how many real threads the
//! execution pool uses.

use locus_service::{
    generate, Backpressure, JobExecution, JobRunner, JobServer, JobSpec, ServiceConfig, WorkerPool,
    WorkloadConfig,
};
use proptest::prelude::*;

/// A deterministic stand-in cost model: prices a job purely from its
/// spec, with enough spread (1..=128 virtual ms) to exercise queueing.
struct HashRunner;

impl JobRunner for HashRunner {
    fn run(&self, job: &JobSpec) -> Result<JobExecution, String> {
        let mut x = job.circuit_seed ^ (job.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        Ok(JobExecution {
            service_ms: (x % 128) + 1,
            circuit_height: 1,
            wires_routed: 1,
            degraded: false,
        })
    }
}

fn workload(seed: u64, load: f64) -> Vec<JobSpec> {
    let mut cfg = WorkloadConfig::rush_hour(seed, 15_000, 120.0);
    cfg.load = load;
    generate(&cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ same arrival trace, byte for byte.
    #[test]
    fn identical_seeds_give_identical_traces(seed in 0u64..1_000_000, load in 1u32..6) {
        let a = workload(seed, load as f64);
        let b = workload(seed, load as f64);
        prop_assert_eq!(a, b);
    }

    /// Same seed ⇒ same admission decisions, stats, and latency
    /// histograms — regardless of the execution pool's thread count.
    #[test]
    fn outcomes_are_identical_across_worker_counts(
        seed in 0u64..1_000_000,
        load in 1u32..8,
        policy_ix in 0usize..3,
        workers in 1usize..4,
    ) {
        let policy = [Backpressure::Block, Backpressure::ShedOldest, Backpressure::Reject]
            [policy_ix];
        let jobs = workload(seed, load as f64);
        let server = JobServer::new(ServiceConfig::new(workers, 4, policy));
        let reference = server.run(&jobs, &HashRunner, &WorkerPool::serial(), None);
        for threads in [2usize, 8] {
            let out = server.run(&jobs, &HashRunner, &WorkerPool::with_threads(threads), None);
            prop_assert_eq!(&reference.records, &out.records, "threads={}", threads);
            prop_assert_eq!(&reference.stats, &out.stats);
            prop_assert_eq!(&reference.queue_wait, &out.queue_wait);
            prop_assert_eq!(&reference.service, &out.service);
            prop_assert_eq!(reference.makespan_ms, out.makespan_ms);
        }
    }

    /// Conservation: every submitted job reaches exactly one terminal
    /// state, and the busy time never exceeds what the workers offer.
    #[test]
    fn jobs_are_conserved_under_every_policy(
        seed in 0u64..1_000_000,
        load in 1u32..10,
        policy_ix in 0usize..3,
    ) {
        let policy = [Backpressure::Block, Backpressure::ShedOldest, Backpressure::Reject]
            [policy_ix];
        let jobs = workload(seed, load as f64);
        let server = JobServer::new(ServiceConfig::new(2, 3, policy));
        let out = server.run(&jobs, &HashRunner, &WorkerPool::serial(), None);
        let s = out.stats;
        prop_assert_eq!(s.submitted, jobs.len() as u64);
        prop_assert_eq!(s.completed + s.shed + s.rejected + s.failed, s.submitted);
        prop_assert_eq!(s.completed, out.service.count());
        prop_assert!(s.busy_ms <= 2 * out.makespan_ms);
        prop_assert!(out.utilization <= 1.0 + 1e-9);
        match policy {
            Backpressure::Block => prop_assert_eq!(s.shed + s.rejected, 0),
            Backpressure::ShedOldest => prop_assert_eq!(s.rejected, 0),
            Backpressure::Reject => prop_assert_eq!(s.shed, 0),
        }
    }
}
