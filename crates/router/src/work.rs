//! Work accounting shared by all router implementations.
//!
//! Both simulators (mesh and shared-memory) convert routing work into
//! modelled execution time. The unit of work is *cost-array cells
//! examined* during candidate evaluation, which tracks the real router's
//! inner loop the same way the paper's Encore/CBS measurements track
//! instruction counts.

use std::ops::AddAssign;

/// Counters describing how much routing work was performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Wires routed (counting each re-route in later iterations).
    pub wires_routed: u64,
    /// Two-pin connections evaluated.
    pub connections: u64,
    /// Candidate routes examined.
    pub candidates: u64,
    /// Cost-array cells examined over all candidates — the primary work
    /// unit for the execution-time models.
    pub cells_examined: u64,
    /// Cells written (route increments plus rip-up decrements).
    pub cells_written: u64,
}

impl AddAssign for WorkStats {
    fn add_assign(&mut self, rhs: WorkStats) {
        self.wires_routed += rhs.wires_routed;
        self.connections += rhs.connections;
        self.candidates += rhs.candidates;
        self.cells_examined += rhs.cells_examined;
        self.cells_written += rhs.cells_written;
    }
}

impl WorkStats {
    /// Merges counters from a per-wire evaluation.
    pub fn record_connection(&mut self, candidates: usize, cells_examined: u64) {
        self.connections += 1;
        self.candidates += candidates as u64;
        self.cells_examined += cells_examined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = WorkStats {
            wires_routed: 1,
            connections: 2,
            candidates: 3,
            cells_examined: 4,
            cells_written: 5,
        };
        a += WorkStats {
            wires_routed: 10,
            connections: 20,
            candidates: 30,
            cells_examined: 40,
            cells_written: 50,
        };
        assert_eq!(a.wires_routed, 11);
        assert_eq!(a.connections, 22);
        assert_eq!(a.candidates, 33);
        assert_eq!(a.cells_examined, 44);
        assert_eq!(a.cells_written, 55);
    }

    #[test]
    fn record_connection_accumulates() {
        let mut w = WorkStats::default();
        w.record_connection(7, 100);
        w.record_connection(3, 50);
        assert_eq!(w.connections, 2);
        assert_eq!(w.candidates, 10);
        assert_eq!(w.cells_examined, 150);
    }
}
