//! Two-bend ("locus") candidate route enumeration and evaluation.
//!
//! For a two-pin connection LocusRoute evaluates the family of routes with
//! at most two bends and picks the one with the minimal sum of cost-array
//! entries (§3). For pins `(c1,x1)` and `(c2,x2)` the candidates are:
//!
//! * **HVH** — run along channel `c1` to an intermediate column `xm`,
//!   feed through vertically to channel `c2`, run to `x2`; one candidate
//!   per `xm` in the pin bounding box.
//! * **VHV** — feed through at `x1` to an intermediate channel `cm`, run
//!   horizontally to `x2`, feed through to `c2`; one candidate per `cm` in
//!   the bounding box, optionally widened by
//!   [`RouterParams::channel_overshoot`](crate::RouterParams) channels so
//!   a wire can dodge a congested channel.
//!
//! Ties are broken toward the earliest-enumerated candidate (HVH sweep by
//! ascending `xm`, then VHV by ascending `cm`), making routing fully
//! deterministic for a given cost-array state.
//!
//! # The evaluation kernel
//!
//! [`best_route_into`] never materializes candidate routes. Each candidate
//! is decomposed into *disjoint* row/column spans covering exactly its
//! deduplicated cell set, costed through [`CostView::horizontal_cost`] /
//! [`CostView::vertical_cost`]; only the winner is rebuilt as segments at
//! the end. The spans are emitted in the candidate's sorted-cell order, so
//! against a view using the per-cell default span implementations (e.g.
//! the shmem emulator's traced view) the cell-read sequence — and hence
//! the reference trace and `cells_examined` — is byte-identical to the
//! historical cell-list evaluator, retained here as
//! [`best_route_reference`]. When the view advertises
//! [`CostView::fast_spans`], the HVH jog sweep additionally turns
//! incremental: adjacent jog columns share all but one cell of each
//! horizontal run, so the whole sweep is O(W) span arithmetic.

use locus_circuit::GridCell;

use crate::cost_array::CostView;
use crate::route::{Route, Segment};
use crate::segment::Connection;

/// Result of evaluating the candidate set for one connection.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The minimal-cost route.
    pub route: Route,
    /// Its cost (sum of cost-array entries over its cells) at evaluation
    /// time, *excluding* the wire itself.
    pub cost: u64,
    /// Number of candidate routes examined.
    pub candidates: usize,
    /// Total cells examined over all candidates — the work measure that
    /// drives the execution-time model of the simulators.
    pub cells_examined: u64,
}

/// The numbers of a winning candidate, without the route itself.
#[derive(Clone, Copy, Debug)]
pub struct EvalCore {
    /// Cost of the winning route at evaluation time.
    pub cost: u64,
    /// Number of candidate routes examined.
    pub candidates: usize,
    /// Total (deduplicated, per candidate) cells examined.
    pub cells_examined: u64,
}

/// Identity of a winning candidate; enough to rebuild its segments.
#[derive(Clone, Copy, Debug)]
enum Winner {
    /// Same channel: the direct horizontal run.
    DirectH,
    /// Same column, different channels: the direct feedthrough.
    DirectV,
    /// HVH with jog column `xm`.
    Hvh { xm: u16 },
    /// VHV with crossing channel `cm`.
    Vhv { cm: u16 },
}

/// Cells covered by an inclusive span.
#[inline]
fn span(lo: u16, hi: u16) -> u64 {
    (hi - lo) as u64 + 1
}

/// Evaluates all two-bend candidates for `conn` against `view`, appends
/// the winning candidate's segments to `out` (which is *not* cleared:
/// [`crate::router::route_wire_scratch`] accumulates a whole wire into
/// one buffer), and returns the evaluation numbers.
///
/// Performs no allocations beyond what `out` may need to grow.
pub fn best_route_into<V: CostView + ?Sized>(
    view: &V,
    conn: Connection,
    channel_overshoot: u16,
    out: &mut Vec<Segment>,
) -> EvalCore {
    let (c1, x1) = (conn.from.channel, conn.from.x);
    let (c2, x2) = (conn.to.channel, conn.to.x);

    let mut best_cost = 0u64;
    let mut winner: Option<Winner> = None;
    let mut candidates = 0usize;
    let mut cells_examined = 0u64;

    let mut consider = |cost: u64, cells: u64, w: Winner| {
        cells_examined += cells;
        candidates += 1;
        if winner.is_none() || cost < best_cost {
            best_cost = cost;
            winner = Some(w);
        }
    };

    if c1 == c2 {
        // Direct horizontal run (all HVH candidates coincide).
        let (lo, hi) = (x1.min(x2), x1.max(x2));
        consider(view.horizontal_cost(c1, lo, hi), span(lo, hi), Winner::DirectH);
    } else {
        // HVH: one candidate per jog column in the bounding box. Reads per
        // candidate, in sorted (channel, x) order: the lower channel's run,
        // the feedthrough's interior channels, the upper channel's run.
        let (x_lo, x_hi) = (x1.min(x2), x1.max(x2));
        let (ca, xa, cb, xb) = if c1 < c2 { (c1, x1, c2, x2) } else { (c2, x2, c1, x1) };
        let interior = (cb - ca) as u64 - 1;
        if view.fast_spans() {
            // Incremental sweep: moving the jog from `xm-1` to `xm`
            // changes each horizontal run by exactly one cell (shrinks it
            // while left of the pin, grows it once past).
            let mut run_a = view.horizontal_cost(ca, x_lo, xa);
            let mut run_b = view.horizontal_cost(cb, x_lo, xb);
            for xm in x_lo..=x_hi {
                if xm > x_lo {
                    run_a = hstep(view, ca, xa, xm, run_a);
                    run_b = hstep(view, cb, xb, xm, run_b);
                }
                let mut cost = run_a + run_b;
                if interior > 0 {
                    cost += view.vertical_cost(xm, ca + 1, cb - 1);
                }
                let cells = span(xa.min(xm), xa.max(xm)) + interior + span(xb.min(xm), xb.max(xm));
                consider(cost, cells, Winner::Hvh { xm });
            }
        } else {
            for xm in x_lo..=x_hi {
                let mut cost = view.horizontal_cost(ca, xa.min(xm), xa.max(xm));
                if interior > 0 {
                    cost += view.vertical_cost(xm, ca + 1, cb - 1);
                }
                cost += view.horizontal_cost(cb, xb.min(xm), xb.max(xm));
                let cells = span(xa.min(xm), xa.max(xm)) + interior + span(xb.min(xm), xb.max(xm));
                consider(cost, cells, Winner::Hvh { xm });
            }
        }
    }

    if x1 != x2 {
        // VHV: one candidate per crossing channel, widened by overshoot.
        let (c_lo, c_hi) = (c1.min(c2), c1.max(c2));
        let cm_lo = c_lo.saturating_sub(channel_overshoot);
        let cm_hi = c_hi.saturating_add(channel_overshoot).min(view.channels() - 1);
        for cm in cm_lo..=cm_hi {
            if c1 == c2 && cm == c1 {
                // Duplicate of the direct horizontal candidate already
                // considered above.
                continue;
            }
            let (cost, cells) = vhv_cost(view, c1, x1, c2, x2, cm);
            consider(cost, cells, Winner::Vhv { cm });
        }
    } else if c1 != c2 {
        // Same column, different channels: direct feedthrough.
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        consider(view.vertical_cost(x1, lo, hi), span(lo, hi), Winner::DirectV);
    }

    let winner = winner.expect("at least one candidate is always generated");
    push_winner_segments(c1, x1, c2, x2, winner, out);
    EvalCore { cost: best_cost, candidates, cells_examined }
}

/// Advances a horizontal run `pin..=xm-1`-vs-`xm` by one jog column:
/// the run covers `min(x_pin, xm)..=max(x_pin, xm)`, so stepping the jog
/// right either drops the old left end (jog still left of the pin) or
/// appends the new right end (jog past the pin).
#[inline]
fn hstep<V: CostView + ?Sized>(view: &V, channel: u16, x_pin: u16, xm: u16, run: u64) -> u64 {
    if xm <= x_pin {
        run - view.cost_at(GridCell::new(channel, xm - 1)) as u64
    } else {
        run + view.cost_at(GridCell::new(channel, xm)) as u64
    }
}

/// Costs one VHV candidate (crossing channel `cm`) as disjoint spans over
/// its deduplicated cell set, reading in sorted (channel, x) order.
///
/// The cell set is: the feedthrough from each pin toward `cm` (exclusive
/// of row `cm`), plus the full row `cm` between the pin columns. Where the
/// two feedthroughs run side by side (both pins on the same side of `cm`,
/// beyond the nearer pin's channel), sorted order interleaves the two
/// columns per channel, so that band is read cell by cell.
fn vhv_cost<V: CostView + ?Sized>(
    view: &V,
    c1: u16,
    x1: u16,
    c2: u16,
    x2: u16,
    cm: u16,
) -> (u64, u64) {
    let (xl, xr) = (x1.min(x2), x1.max(x2));
    let mut cost = 0u64;
    let mut cells = 0u64;

    // Below row cm.
    let (b1, b2) = (c1 < cm, c2 < cm);
    if b1 && b2 {
        // Both feedthroughs approach from below: the lower pin's column is
        // alone until the higher pin's channel, then both columns run.
        let (c_near, x_near, c_far) = if c1 <= c2 { (c1, x1, c2) } else { (c2, x2, c1) };
        if c_near < c_far {
            cost += view.vertical_cost(x_near, c_near, c_far - 1);
            cells += (c_far - c_near) as u64;
        }
        for c in c_far..cm {
            cost += view.cost_at(GridCell::new(c, xl)) as u64;
            cost += view.cost_at(GridCell::new(c, xr)) as u64;
            cells += 2;
        }
    } else if b1 {
        cost += view.vertical_cost(x1, c1, cm - 1);
        cells += (cm - c1) as u64;
    } else if b2 {
        cost += view.vertical_cost(x2, c2, cm - 1);
        cells += (cm - c2) as u64;
    }

    // Row cm itself, spanning the pin columns.
    cost += view.horizontal_cost(cm, xl, xr);
    cells += span(xl, xr);

    // Above row cm (mirror of the below case).
    let (a1, a2) = (c1 > cm, c2 > cm);
    if a1 && a2 {
        let (c_near, c_far, x_far) = if c1 <= c2 { (c1, c2, x2) } else { (c2, c1, x1) };
        for c in cm + 1..=c_near {
            cost += view.cost_at(GridCell::new(c, xl)) as u64;
            cost += view.cost_at(GridCell::new(c, xr)) as u64;
            cells += 2;
        }
        if c_far > c_near {
            cost += view.vertical_cost(x_far, c_near + 1, c_far);
            cells += (c_far - c_near) as u64;
        }
    } else if a1 {
        cost += view.vertical_cost(x1, cm + 1, c1);
        cells += (c1 - cm) as u64;
    } else if a2 {
        cost += view.vertical_cost(x2, cm + 1, c2);
        cells += (c2 - cm) as u64;
    }

    (cost, cells)
}

/// Rebuilds the winning candidate's segments exactly as the historical
/// enumeration constructed them (same conditionals, same constructors), so
/// the resulting [`Route`] is identical.
fn push_winner_segments(c1: u16, x1: u16, c2: u16, x2: u16, w: Winner, out: &mut Vec<Segment>) {
    match w {
        Winner::DirectH => out.push(Segment::horizontal(c1, x1, x2)),
        Winner::DirectV => out.push(Segment::vertical(x1, c1, c2)),
        Winner::Hvh { xm } => {
            if xm != x1 {
                out.push(Segment::horizontal(c1, x1, xm));
            }
            out.push(Segment::vertical(xm, c1, c2));
            if xm != x2 {
                out.push(Segment::horizontal(c2, xm, x2));
            }
        }
        Winner::Vhv { cm } => {
            if cm != c1 {
                out.push(Segment::vertical(x1, c1, cm));
            }
            out.push(Segment::horizontal(cm, x1, x2));
            if cm != c2 {
                out.push(Segment::vertical(x2, cm, c2));
            }
        }
    }
}

/// Evaluates all two-bend candidates for `conn` against `view` and returns
/// the best.
pub fn best_route<V: CostView + ?Sized>(
    view: &V,
    conn: Connection,
    channel_overshoot: u16,
) -> Evaluation {
    let mut segments = Vec::with_capacity(3);
    let core = best_route_into(view, conn, channel_overshoot, &mut segments);
    Evaluation {
        route: Route::from_segments(segments),
        cost: core.cost,
        candidates: core.candidates,
        cells_examined: core.cells_examined,
    }
}

/// The historical cell-list evaluator: materializes every candidate as a
/// [`Route`] and costs it cell by cell.
///
/// Retained as the executable specification of [`best_route`] — the
/// equivalence proptests and `locus_experiments --quality-check` assert
/// the optimized kernel matches it bit for bit on
/// `(route, cost, candidates, cells_examined)`.
pub fn best_route_reference<V: CostView + ?Sized>(
    view: &V,
    conn: Connection,
    channel_overshoot: u16,
) -> Evaluation {
    let (c1, x1) = (conn.from.channel, conn.from.x);
    let (c2, x2) = (conn.to.channel, conn.to.x);

    let mut best: Option<(u64, Route)> = None;
    let mut candidates = 0usize;
    let mut cells_examined = 0u64;

    let mut consider = |route: Route| {
        cells_examined += route.len() as u64;
        candidates += 1;
        let cost = view.route_cost(&route);
        match &best {
            Some((best_cost, _)) if *best_cost <= cost => {}
            _ => best = Some((cost, route)),
        }
    };

    if c1 == c2 {
        // Direct horizontal run (all HVH candidates coincide).
        consider(Route::from_segments(vec![Segment::horizontal(c1, x1, x2)]));
    } else {
        // HVH: one candidate per jog column in the bounding box.
        let (x_lo, x_hi) = (x1.min(x2), x1.max(x2));
        for xm in x_lo..=x_hi {
            let mut segs = Vec::with_capacity(3);
            if xm != x1 {
                segs.push(Segment::horizontal(c1, x1, xm));
            }
            segs.push(Segment::vertical(xm, c1, c2));
            if xm != x2 {
                segs.push(Segment::horizontal(c2, xm, x2));
            }
            consider(Route::from_segments(segs));
        }
    }

    if x1 != x2 {
        // VHV: one candidate per crossing channel, widened by overshoot.
        let (c_lo, c_hi) = (c1.min(c2), c1.max(c2));
        let cm_lo = c_lo.saturating_sub(channel_overshoot);
        let cm_hi = c_hi.saturating_add(channel_overshoot).min(view.channels() - 1);
        for cm in cm_lo..=cm_hi {
            if c1 == c2 && cm == c1 {
                // Duplicate of the direct horizontal candidate already
                // considered in the HVH sweep.
                continue;
            }
            let mut segs = Vec::with_capacity(3);
            if cm != c1 {
                segs.push(Segment::vertical(x1, c1, cm));
            }
            segs.push(Segment::horizontal(cm, x1, x2));
            if cm != c2 {
                segs.push(Segment::vertical(x2, cm, c2));
            }
            consider(Route::from_segments(segs));
        }
    } else if c1 != c2 {
        // Same column, different channels: direct feedthrough.
        consider(Route::from_segments(vec![Segment::vertical(x1, c1, c2)]));
    }

    let (cost, route) = best.expect("at least one candidate is always generated");
    Evaluation { route, cost, candidates, cells_examined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_array::CostArray;
    use locus_circuit::{GridCell, Pin};

    fn conn(c1: u16, x1: u16, c2: u16, x2: u16) -> Connection {
        Connection { from: Pin::new(c1, x1), to: Pin::new(c2, x2) }
    }

    #[test]
    fn degenerate_connection_single_cell() {
        let a = CostArray::new(4, 10);
        let e = best_route(&a, conn(2, 3, 2, 3), 1);
        assert_eq!(e.route.cells(), &[GridCell::new(2, 3)]);
        assert_eq!(e.cost, 0);
    }

    #[test]
    fn same_channel_routes_directly_on_empty_array() {
        let a = CostArray::new(4, 10);
        let e = best_route(&a, conn(1, 2, 1, 7), 0);
        assert_eq!(e.route.segments(), &[Segment::horizontal(1, 2, 7)]);
        assert_eq!(e.cost, 0);
        assert_eq!(e.candidates, 1);
    }

    #[test]
    fn same_channel_with_overshoot_can_detour() {
        let mut a = CostArray::new(4, 10);
        // Make channel 1 very expensive between the pins.
        for x in 3..=6 {
            a.set(GridCell::new(1, x), 50);
        }
        let e = best_route(&a, conn(1, 2, 1, 7), 1);
        // Cheaper to feed through to channel 0 or 2 and run there.
        let uses_other_channel = e
            .route
            .segments()
            .iter()
            .any(|s| matches!(s, Segment::Horizontal { channel, .. } if *channel != 1));
        assert!(uses_other_channel, "route should detour: {:?}", e.route.segments());
        assert!(e.cost < 50);
    }

    #[test]
    fn same_column_routes_vertically() {
        let a = CostArray::new(4, 10);
        let e = best_route(&a, conn(0, 5, 3, 5), 1);
        assert_eq!(e.route.segments(), &[Segment::vertical(5, 0, 3)]);
        assert_eq!(e.route.len(), 4);
    }

    #[test]
    fn candidate_count_matches_enumeration() {
        let a = CostArray::new(6, 20);
        // Pins at (1,3) and (4,9): bounding box 7 columns, 4 channels.
        // HVH: 7 candidates. VHV with overshoot 1: channels 0..=5 -> 6.
        let e = best_route(&a, conn(1, 3, 4, 9), 1);
        assert_eq!(e.candidates, 7 + 6);
        // Without overshoot: 7 + 4.
        let e0 = best_route(&a, conn(1, 3, 4, 9), 0);
        assert_eq!(e0.candidates, 7 + 4);
    }

    #[test]
    fn router_avoids_congested_column() {
        let mut a = CostArray::new(4, 10);
        // A wall of cost on column 5, channels 0..=3, except we go from
        // (0,2) to (3,8): vertical crossings at column 5 are expensive.
        for c in 0..4 {
            a.set(GridCell::new(c, 5), 10);
        }
        let e = best_route(&a, conn(0, 2, 3, 8), 0);
        // The chosen route's vertical segment must not be at column 5.
        for s in e.route.segments() {
            if let Segment::Vertical { x, .. } = s {
                assert_ne!(*x, 5, "route crossed the congested column");
            }
        }
    }

    #[test]
    fn cost_excludes_the_wire_itself() {
        let a = CostArray::new(2, 4);
        let e = best_route(&a, conn(0, 0, 1, 3), 0);
        assert_eq!(e.cost, 0, "empty array means zero cost regardless of route length");
        assert!(e.route.len() >= 5);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a = CostArray::new(4, 10);
        let e1 = best_route(&a, conn(0, 2, 3, 8), 1);
        let e2 = best_route(&a, conn(0, 2, 3, 8), 1);
        assert_eq!(e1.route, e2.route);
    }

    #[test]
    fn cells_examined_counts_all_candidates() {
        let a = CostArray::new(4, 10);
        let e = best_route(&a, conn(0, 2, 3, 8), 0);
        // Every candidate covers at least the bounding-box "L" length.
        assert!(e.cells_examined >= e.candidates as u64 * 5);
    }

    /// Exhaustive pin-pair equivalence against the reference evaluator on
    /// a patterned surface — both through the prefix-sum fast path
    /// (`CostArray` directly) and through the per-cell default path.
    #[test]
    fn matches_reference_evaluator_exhaustively() {
        struct SlowView<'a>(&'a CostArray);
        impl CostView for SlowView<'_> {
            fn channels(&self) -> u16 {
                CostView::channels(self.0)
            }
            fn grids(&self) -> u16 {
                CostView::grids(self.0)
            }
            fn cost_at(&self, cell: GridCell) -> u32 {
                self.0.cost_at(cell)
            }
        }

        let mut a = CostArray::new(5, 9);
        for c in 0..5u16 {
            for x in 0..9u16 {
                a.set(GridCell::new(c, x), (c * 13 + x * 5) % 7);
            }
        }
        let slow = SlowView(&a);
        for c1 in 0..5u16 {
            for x1 in (0..9u16).step_by(2) {
                for c2 in 0..5u16 {
                    for x2 in 0..9u16 {
                        for overshoot in [0u16, 1, 3] {
                            let k = conn(c1, x1, c2, x2);
                            let r = best_route_reference(&a, k, overshoot);
                            for e in [best_route(&a, k, overshoot), best_route(&slow, k, overshoot)]
                            {
                                assert_eq!(e.route, r.route, "{k:?} overshoot {overshoot}");
                                assert_eq!(e.cost, r.cost, "{k:?} overshoot {overshoot}");
                                assert_eq!(e.candidates, r.candidates, "{k:?}");
                                assert_eq!(e.cells_examined, r.cells_examined, "{k:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    /// The span decomposition must read cells in exactly the order the
    /// reference evaluator does (sorted dedup order per candidate) — the
    /// shmem emulator's reference trace depends on it.
    #[test]
    fn read_sequence_identical_to_reference() {
        use std::cell::RefCell;

        struct Recorder<'a> {
            inner: &'a CostArray,
            reads: RefCell<Vec<GridCell>>,
        }
        impl CostView for Recorder<'_> {
            fn channels(&self) -> u16 {
                CostView::channels(self.inner)
            }
            fn grids(&self) -> u16 {
                CostView::grids(self.inner)
            }
            fn cost_at(&self, cell: GridCell) -> u32 {
                self.reads.borrow_mut().push(cell);
                self.inner.cost_at(cell)
            }
        }

        let mut a = CostArray::new(6, 11);
        for c in 0..6u16 {
            for x in 0..11u16 {
                a.set(GridCell::new(c, x), (c * 3 + x) % 5);
            }
        }
        for (k, overshoot) in [
            (conn(1, 3, 4, 9), 2),  // generic HVH+VHV
            (conn(4, 9, 1, 3), 2),  // reversed pins
            (conn(2, 5, 2, 9), 3),  // same channel, overshoot detours
            (conn(0, 4, 5, 4), 1),  // same column
            (conn(3, 0, 3, 0), 4),  // degenerate
            (conn(1, 2, 1, 8), 5),  // overshoot clipped at both edges
            (conn(5, 1, 0, 10), 0), // full diagonal, no overshoot
        ] {
            let rec = Recorder { inner: &a, reads: RefCell::new(Vec::new()) };
            let e = best_route(&rec, k, overshoot);
            let optimized = rec.reads.take();
            let rec = Recorder { inner: &a, reads: RefCell::new(Vec::new()) };
            let r = best_route_reference(&rec, k, overshoot);
            let reference = rec.reads.take();
            assert_eq!(optimized, reference, "{k:?} overshoot {overshoot}");
            assert_eq!(e.route, r.route);
            assert_eq!(e.cells_examined, r.cells_examined);
        }
    }

    #[test]
    fn best_route_into_appends_without_clearing() {
        let a = CostArray::new(4, 10);
        let mut segs = vec![Segment::horizontal(0, 0, 1)];
        let core = best_route_into(&a, conn(1, 2, 1, 7), 0, &mut segs);
        assert_eq!(segs.len(), 2, "existing contents preserved");
        assert_eq!(segs[1], Segment::horizontal(1, 2, 7));
        assert_eq!(core.candidates, 1);
    }
}
