//! Two-bend ("locus") candidate route enumeration and evaluation.
//!
//! For a two-pin connection LocusRoute evaluates the family of routes with
//! at most two bends and picks the one with the minimal sum of cost-array
//! entries (§3). For pins `(c1,x1)` and `(c2,x2)` the candidates are:
//!
//! * **HVH** — run along channel `c1` to an intermediate column `xm`,
//!   feed through vertically to channel `c2`, run to `x2`; one candidate
//!   per `xm` in the pin bounding box.
//! * **VHV** — feed through at `x1` to an intermediate channel `cm`, run
//!   horizontally to `x2`, feed through to `c2`; one candidate per `cm` in
//!   the bounding box, optionally widened by
//!   [`RouterParams::channel_overshoot`](crate::RouterParams) channels so
//!   a wire can dodge a congested channel.
//!
//! Ties are broken toward the earliest-enumerated candidate (HVH sweep by
//! ascending `xm`, then VHV by ascending `cm`), making routing fully
//! deterministic for a given cost-array state.

use crate::cost_array::CostView;
use crate::route::{Route, Segment};
use crate::segment::Connection;

/// Result of evaluating the candidate set for one connection.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The minimal-cost route.
    pub route: Route,
    /// Its cost (sum of cost-array entries over its cells) at evaluation
    /// time, *excluding* the wire itself.
    pub cost: u64,
    /// Number of candidate routes examined.
    pub candidates: usize,
    /// Total cells examined over all candidates — the work measure that
    /// drives the execution-time model of the simulators.
    pub cells_examined: u64,
}

/// Evaluates all two-bend candidates for `conn` against `view` and returns
/// the best.
pub fn best_route<V: CostView + ?Sized>(
    view: &V,
    conn: Connection,
    channel_overshoot: u16,
) -> Evaluation {
    let (c1, x1) = (conn.from.channel, conn.from.x);
    let (c2, x2) = (conn.to.channel, conn.to.x);

    let mut best: Option<(u64, Route)> = None;
    let mut candidates = 0usize;
    let mut cells_examined = 0u64;

    let mut consider = |route: Route, view: &V| {
        cells_examined += route.len() as u64;
        candidates += 1;
        let cost = view.route_cost(&route);
        match &best {
            Some((best_cost, _)) if *best_cost <= cost => {}
            _ => best = Some((cost, route)),
        }
    };

    if c1 == c2 {
        // Direct horizontal run (all HVH candidates coincide).
        consider(Route::from_segments(vec![Segment::horizontal(c1, x1, x2)]), view);
    } else {
        // HVH: one candidate per jog column in the bounding box.
        let (x_lo, x_hi) = (x1.min(x2), x1.max(x2));
        for xm in x_lo..=x_hi {
            let mut segs = Vec::with_capacity(3);
            if xm != x1 {
                segs.push(Segment::horizontal(c1, x1, xm));
            }
            segs.push(Segment::vertical(xm, c1, c2));
            if xm != x2 {
                segs.push(Segment::horizontal(c2, xm, x2));
            }
            consider(Route::from_segments(segs), view);
        }
    }

    if x1 != x2 {
        // VHV: one candidate per crossing channel, widened by overshoot.
        let (c_lo, c_hi) = (c1.min(c2), c1.max(c2));
        let cm_lo = c_lo.saturating_sub(channel_overshoot);
        let cm_hi = c_hi.saturating_add(channel_overshoot).min(view.channels() - 1);
        for cm in cm_lo..=cm_hi {
            if c1 == c2 && cm == c1 {
                // Duplicate of the direct horizontal candidate already
                // considered in the HVH sweep.
                continue;
            }
            let mut segs = Vec::with_capacity(3);
            if cm != c1 {
                segs.push(Segment::vertical(x1, c1, cm));
            }
            segs.push(Segment::horizontal(cm, x1, x2));
            if cm != c2 {
                segs.push(Segment::vertical(x2, cm, c2));
            }
            consider(Route::from_segments(segs), view);
        }
    } else if c1 != c2 {
        // Same column, different channels: direct feedthrough.
        consider(Route::from_segments(vec![Segment::vertical(x1, c1, c2)]), view);
    }

    let (cost, route) = best.expect("at least one candidate is always generated");
    Evaluation { route, cost, candidates, cells_examined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_array::CostArray;
    use locus_circuit::{GridCell, Pin};

    fn conn(c1: u16, x1: u16, c2: u16, x2: u16) -> Connection {
        Connection { from: Pin::new(c1, x1), to: Pin::new(c2, x2) }
    }

    #[test]
    fn degenerate_connection_single_cell() {
        let a = CostArray::new(4, 10);
        let e = best_route(&a, conn(2, 3, 2, 3), 1);
        assert_eq!(e.route.cells(), &[GridCell::new(2, 3)]);
        assert_eq!(e.cost, 0);
    }

    #[test]
    fn same_channel_routes_directly_on_empty_array() {
        let a = CostArray::new(4, 10);
        let e = best_route(&a, conn(1, 2, 1, 7), 0);
        assert_eq!(e.route.segments(), &[Segment::horizontal(1, 2, 7)]);
        assert_eq!(e.cost, 0);
        assert_eq!(e.candidates, 1);
    }

    #[test]
    fn same_channel_with_overshoot_can_detour() {
        let mut a = CostArray::new(4, 10);
        // Make channel 1 very expensive between the pins.
        for x in 3..=6 {
            a.set(GridCell::new(1, x), 50);
        }
        let e = best_route(&a, conn(1, 2, 1, 7), 1);
        // Cheaper to feed through to channel 0 or 2 and run there.
        let uses_other_channel = e
            .route
            .segments()
            .iter()
            .any(|s| matches!(s, Segment::Horizontal { channel, .. } if *channel != 1));
        assert!(uses_other_channel, "route should detour: {:?}", e.route.segments());
        assert!(e.cost < 50);
    }

    #[test]
    fn same_column_routes_vertically() {
        let a = CostArray::new(4, 10);
        let e = best_route(&a, conn(0, 5, 3, 5), 1);
        assert_eq!(e.route.segments(), &[Segment::vertical(5, 0, 3)]);
        assert_eq!(e.route.len(), 4);
    }

    #[test]
    fn candidate_count_matches_enumeration() {
        let a = CostArray::new(6, 20);
        // Pins at (1,3) and (4,9): bounding box 7 columns, 4 channels.
        // HVH: 7 candidates. VHV with overshoot 1: channels 0..=5 -> 6.
        let e = best_route(&a, conn(1, 3, 4, 9), 1);
        assert_eq!(e.candidates, 7 + 6);
        // Without overshoot: 7 + 4.
        let e0 = best_route(&a, conn(1, 3, 4, 9), 0);
        assert_eq!(e0.candidates, 7 + 4);
    }

    #[test]
    fn router_avoids_congested_column() {
        let mut a = CostArray::new(4, 10);
        // A wall of cost on column 5, channels 0..=3, except we go from
        // (0,2) to (3,8): vertical crossings at column 5 are expensive.
        for c in 0..4 {
            a.set(GridCell::new(c, 5), 10);
        }
        let e = best_route(&a, conn(0, 2, 3, 8), 0);
        // The chosen route's vertical segment must not be at column 5.
        for s in e.route.segments() {
            if let Segment::Vertical { x, .. } = s {
                assert_ne!(*x, 5, "route crossed the congested column");
            }
        }
    }

    #[test]
    fn cost_excludes_the_wire_itself() {
        let a = CostArray::new(2, 4);
        let e = best_route(&a, conn(0, 0, 1, 3), 0);
        assert_eq!(e.cost, 0, "empty array means zero cost regardless of route length");
        assert!(e.route.len() >= 5);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let a = CostArray::new(4, 10);
        let e1 = best_route(&a, conn(0, 2, 3, 8), 1);
        let e2 = best_route(&a, conn(0, 2, 3, 8), 1);
        assert_eq!(e1.route, e2.route);
    }

    #[test]
    fn cells_examined_counts_all_candidates() {
        let a = CostArray::new(4, 10);
        let e = best_route(&a, conn(0, 2, 3, 8), 0);
        // Every candidate covers at least the bounding-box "L" length.
        assert!(e.cells_examined >= e.candidates as u64 * 5);
    }
}
