//! The reference sequential router and the shared per-wire routing step.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use locus_circuit::{Circuit, Pin, Wire};
use locus_obs::{NullSink, Sink};

use crate::cost_array::{CostArray, CostView};
use crate::engine::{IterationDriver, ObsEmitter, Stamp};
use crate::params::RouterParams;
use crate::quality::QualityMetrics;
use crate::route::{Route, Segment};
use crate::segment::{decompose_into, Connection};
use crate::twobend::best_route_into;
use crate::work::WorkStats;

/// Result of evaluating one wire against a cost view (without mutating it).
#[derive(Clone, Debug)]
pub struct WireEvaluation {
    /// The union route over all of the wire's two-pin connections.
    pub route: Route,
    /// Sum of the connections' path costs at evaluation time — the wire's
    /// contribution to the occupancy factor.
    pub cost: u64,
    /// Candidate routes examined.
    pub candidates: u64,
    /// Cost-array cells examined.
    pub cells_examined: u64,
    /// Number of two-pin connections.
    pub connections: u64,
    /// Connections evaluated through the per-cell span fallback (the view
    /// lacked [`CostView::fast_spans`]); 0 on the optimized kernel path.
    pub percell_evals: u64,
}

/// Routes `wire` against `view`: decomposes it into two-pin connections,
/// picks the best two-bend route for each, and merges them into one
/// deduplicated route.
///
/// The caller is responsible for applying the result to whatever array it
/// owns — the sequential router to the global array, a message-passing
/// node to its replica and delta array, the shared-memory emulator to the
/// (instrumented) shared array.
pub fn route_wire<V: CostView + ?Sized>(view: &V, wire: &Wire, overshoot: u16) -> WireEvaluation {
    let mut scratch = PooledScratch::take();
    route_wire_scratch(view, wire, overshoot, &mut scratch)
}

/// Reusable buffers for the routing kernel. Hold one per routing thread
/// (or per message-passing node) and pass it to [`route_wire_scratch`]:
/// after the first few wires the buffers reach steady-state capacity and
/// the evaluation loop performs no allocations besides the winning
/// [`Route`] itself. [`PooledScratch`] hands out warm instances from a
/// thread-local free list for callers without a natural place to park one.
#[derive(Default)]
pub struct EvalScratch {
    pins: Vec<Pin>,
    connections: Vec<Connection>,
    segments: Vec<Segment>,
}

thread_local! {
    /// Per-thread free list of warmed-up [`EvalScratch`] buffers.
    static SCRATCH_POOL: RefCell<Vec<EvalScratch>> = const { RefCell::new(Vec::new()) };
}

/// How many idle scratch buffers a thread keeps; beyond this, returned
/// buffers are dropped (one per concurrent evaluation depth is plenty).
const SCRATCH_POOL_CAP: usize = 8;

/// A pooled [`EvalScratch`]: taken from the current thread's free list on
/// [`PooledScratch::take`] and returned to it on drop, so repeated
/// [`route_wire`] calls on one thread reuse steady-state buffers instead
/// of reallocating them per call.
pub struct PooledScratch {
    inner: Option<EvalScratch>,
}

impl PooledScratch {
    /// A warm scratch from this thread's pool (or a fresh one).
    pub fn take() -> Self {
        let inner = SCRATCH_POOL.with(|pool| pool.borrow_mut().pop()).unwrap_or_default();
        PooledScratch { inner: Some(inner) }
    }
}

impl Drop for PooledScratch {
    fn drop(&mut self) {
        if let Some(scratch) = self.inner.take() {
            SCRATCH_POOL.with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < SCRATCH_POOL_CAP {
                    pool.push(scratch);
                }
            });
        }
    }
}

impl Deref for PooledScratch {
    type Target = EvalScratch;
    fn deref(&self) -> &EvalScratch {
        self.inner.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for PooledScratch {
    fn deref_mut(&mut self) -> &mut EvalScratch {
        self.inner.as_mut().expect("scratch present until drop")
    }
}

/// [`route_wire`] with caller-provided scratch buffers; see
/// [`EvalScratch`]. Candidate evaluation allocates nothing — only the
/// single winning route per wire is materialized.
pub fn route_wire_scratch<V: CostView + ?Sized>(
    view: &V,
    wire: &Wire,
    overshoot: u16,
    scratch: &mut EvalScratch,
) -> WireEvaluation {
    let EvalScratch { pins, connections, segments } = scratch;
    decompose_into(wire, pins, connections);
    segments.clear();
    let mut cost = 0u64;
    let mut candidates = 0u64;
    let mut cells_examined = 0u64;
    for &conn in connections.iter() {
        let core = best_route_into(view, conn, overshoot, segments);
        cost += core.cost;
        candidates += core.candidates as u64;
        cells_examined += core.cells_examined;
    }
    let n_connections = connections.len() as u64;
    WireEvaluation {
        route: Route::from_segments(segments.clone()),
        cost,
        candidates,
        cells_examined,
        connections: n_connections,
        // fast_spans is a per-view constant, so either every connection
        // took the optimized span kernel or every one fell back.
        percell_evals: if view.fast_spans() { 0 } else { n_connections },
    }
}

/// Outcome of a complete routing run.
#[derive(Clone, Debug)]
pub struct RouteOutcome {
    /// Final quality measures.
    pub quality: QualityMetrics,
    /// Work performed.
    pub work: WorkStats,
    /// The final route of every wire (indexed by wire id).
    pub routes: Vec<Route>,
    /// Final cost-array state.
    pub cost: CostArray,
    /// Occupancy factor accumulated in each iteration (the last entry is
    /// the reported occupancy factor).
    pub occupancy_by_iteration: Vec<u64>,
}

/// Single-processor LocusRoute: the algorithm of §3 with no concurrency.
///
/// Serves as the quality baseline (equivalent to a 1-processor run of
/// either parallel version, which see the cost array with perfect
/// consistency) and as the reference implementation the parallel versions
/// are tested against.
pub struct SequentialRouter<'a> {
    circuit: &'a Circuit,
    params: RouterParams,
    sink: Box<dyn Sink>,
}

impl<'a> SequentialRouter<'a> {
    /// Creates a router over `circuit`.
    pub fn new(circuit: &'a Circuit, params: RouterParams) -> Self {
        SequentialRouter { circuit, params, sink: Box::new(NullSink) }
    }

    /// Routes routing events (wire commits, rip-ups, iteration phases)
    /// into `sink`. There is no clock in the sequential algorithm, so
    /// events are stamped with cumulative cells examined — a
    /// deterministic pseudo-time proportional to work done.
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.sink = sink;
        self
    }

    /// Runs all iterations and returns the outcome.
    pub fn run(self) -> RouteOutcome {
        let SequentialRouter { circuit, params, sink } = self;
        let mut cost = CostArray::new(circuit.channels, circuit.grids);
        let mut driver = IterationDriver::new(circuit.wire_count()).with_obs(ObsEmitter::new(sink));
        let mut scratch = PooledScratch::take();

        for _iteration in 0..params.iterations {
            driver.phase_begin(Stamp::WorkCells);
            for wire in &circuit.wires {
                // Rip up the previous route before re-routing (§3).
                if let Some(old) = driver.rip_up(wire.id, wire.id, Stamp::WorkCells) {
                    cost.remove_route(&old);
                }
                let eval = route_wire_scratch(&cost, wire, params.channel_overshoot, &mut scratch);
                // Occupancy: the merged route's cost at routing time (§3).
                // Using the merged route (not the per-connection sum)
                // counts overlap cells once, matching the parallel
                // engines' definition exactly.
                let at_decision = cost.route_cost(&eval.route);
                cost.add_route(&eval.route);
                driver.commit(wire.id, wire.id, eval, at_decision, Stamp::WorkCells);
            }
            driver.phase_end(Stamp::WorkCells);
            driver.close_iteration();
        }
        // KernelStats is stamped before the quality computation so the
        // prefix counters reflect routing work only.
        let prefix = cost.prefix_stats();
        driver.kernel_stats(Stamp::WorkCells, prefix);
        driver.finish(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;

    #[test]
    fn routes_every_wire_and_conserves_coverage() {
        let c = presets::tiny();
        let out = SequentialRouter::new(&c, RouterParams::default()).run();
        assert_eq!(out.routes.len(), c.wire_count());
        let coverage: u64 = out.routes.iter().map(|r| r.len() as u64).sum();
        assert_eq!(out.cost.total(), coverage, "cost array must equal sum of final routes");
    }

    #[test]
    fn deterministic_across_runs() {
        let c = presets::small();
        let a = SequentialRouter::new(&c, RouterParams::default()).run();
        let b = SequentialRouter::new(&c, RouterParams::default()).run();
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.routes, b.routes);
    }

    #[test]
    fn iterations_do_not_hurt_quality_much() {
        let c = presets::small();
        let one = SequentialRouter::new(&c, RouterParams::default().with_iterations(1)).run();
        let four = SequentialRouter::new(&c, RouterParams::default().with_iterations(4)).run();
        // Re-routing against a populated array should improve (or at worst
        // roughly preserve) circuit height — §3's motivation for iterating.
        assert!(
            four.quality.circuit_height <= one.quality.circuit_height,
            "4 iters {} vs 1 iter {}",
            four.quality.circuit_height,
            one.quality.circuit_height
        );
    }

    #[test]
    fn ripup_restores_empty_array() {
        let c = presets::tiny();
        let out = SequentialRouter::new(&c, RouterParams::default()).run();
        let mut cost = out.cost.clone();
        for r in &out.routes {
            cost.remove_route(r);
        }
        assert!(cost.is_zero(), "removing every final route must zero the array");
    }

    #[test]
    fn work_counters_are_plausible() {
        let c = presets::tiny();
        let params = RouterParams::default();
        let out = SequentialRouter::new(&c, params).run();
        assert_eq!(out.work.wires_routed, (c.wire_count() * params.iterations) as u64);
        assert!(out.work.connections >= out.work.wires_routed);
        assert!(out.work.candidates >= out.work.connections);
        assert!(out.work.cells_examined >= out.work.candidates);
    }

    #[test]
    fn occupancy_recorded_per_iteration() {
        let c = presets::tiny();
        let out = SequentialRouter::new(&c, RouterParams::default().with_iterations(3)).run();
        assert_eq!(out.occupancy_by_iteration.len(), 3);
        assert_eq!(out.quality.occupancy_factor, out.occupancy_by_iteration[2]);
        // First iteration routes onto a progressively filling array; the
        // occupancy is positive for any non-trivial circuit.
        assert!(out.occupancy_by_iteration[0] > 0);
    }

    #[test]
    fn bnr_e_scale_run_completes() {
        let c = presets::bnr_e();
        let out = SequentialRouter::new(&c, RouterParams::default()).run();
        assert!(out.quality.circuit_height > 0);
        assert!(out.quality.occupancy_factor > 0);
    }
}
