//! Division of the cost array into per-processor owned regions (§4.1).
//!
//! "The cost array is divided into sections, and each processor is the
//! owner of one section. However, each processor has a view of the whole
//! cost array." The processors themselves sit on a 2-D mesh; regions are
//! assigned so that mesh-adjacent processors own adjacent regions
//! (Figure 2), which is what makes the *send only to N/S/E/W neighbours*
//! optimization of `SendLocData` meaningful.

use locus_circuit::{GridCell, Rect};

/// Processor identifier, `0..n_procs`, row-major over the processor mesh.
pub type ProcId = usize;

/// Chooses the processor-mesh shape for `p` processors: the factoring
/// `rows × cols = p` with `rows ≤ cols` and `rows` as close to `√p` as
/// possible (16 → 4×4, 9 → 3×3, 4 → 2×2, 2 → 1×2, 6 → 2×3).
pub fn mesh_dims(p: usize) -> (usize, usize) {
    assert!(p >= 1, "need at least one processor");
    let mut rows = (p as f64).sqrt() as usize;
    while rows > 1 && !p.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), p / rows.max(1))
}

/// The partition of a `channels × grids` cost array among a
/// `proc_rows × proc_cols` processor mesh.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionMap {
    channels: u16,
    grids: u16,
    proc_rows: usize,
    proc_cols: usize,
    /// `channel_starts[i]` is the first channel of processor-row `i`;
    /// one extra sentinel entry equal to `channels`.
    channel_starts: Vec<u16>,
    /// Likewise for grid columns.
    grid_starts: Vec<u16>,
}

impl RegionMap {
    /// Partitions a surface among `n_procs` processors using
    /// [`mesh_dims`].
    ///
    /// # Panics
    /// Panics if the surface is smaller than the processor mesh in either
    /// dimension (a processor would own an empty region).
    pub fn new(channels: u16, grids: u16, n_procs: usize) -> Self {
        let (proc_rows, proc_cols) = mesh_dims(n_procs);
        assert!(
            channels as usize >= proc_rows && grids as usize >= proc_cols,
            "surface {channels}x{grids} too small for a {proc_rows}x{proc_cols} processor mesh"
        );
        let channel_starts = even_splits(channels, proc_rows);
        let grid_starts = even_splits(grids, proc_cols);
        RegionMap { channels, grids, proc_rows, proc_cols, channel_starts, grid_starts }
    }

    /// Number of processors.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.proc_rows * self.proc_cols
    }

    /// Processor mesh shape `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.proc_rows, self.proc_cols)
    }

    /// Mesh coordinates of processor `p`.
    #[inline]
    pub fn coords(&self, p: ProcId) -> (usize, usize) {
        debug_assert!(p < self.n_procs());
        (p / self.proc_cols, p % self.proc_cols)
    }

    /// Processor at mesh coordinates `(row, col)`.
    #[inline]
    pub fn proc_at(&self, row: usize, col: usize) -> ProcId {
        debug_assert!(row < self.proc_rows && col < self.proc_cols);
        row * self.proc_cols + col
    }

    /// Manhattan distance between two processors on the mesh — the hop
    /// count used by the locality measure (§5.3.3).
    pub fn mesh_distance(&self, a: ProcId, b: ProcId) -> u32 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        (ar.abs_diff(br) + ac.abs_diff(bc)) as u32
    }

    /// The owned region of processor `p`.
    pub fn region(&self, p: ProcId) -> Rect {
        let (row, col) = self.coords(p);
        Rect::new(
            self.channel_starts[row],
            self.channel_starts[row + 1] - 1,
            self.grid_starts[col],
            self.grid_starts[col + 1] - 1,
        )
    }

    /// The processor owning `cell`.
    pub fn owner_of(&self, cell: GridCell) -> ProcId {
        debug_assert!(cell.channel < self.channels && cell.x < self.grids);
        let row = self.channel_starts[1..].partition_point(|&s| s <= cell.channel);
        let col = self.grid_starts[1..].partition_point(|&s| s <= cell.x);
        self.proc_at(row, col)
    }

    /// The N/S/E/W mesh neighbours of `p` (2–4 entries).
    ///
    /// `SendLocData` packets are sent only to these processors (§4.3.2).
    pub fn neighbors(&self, p: ProcId) -> Vec<ProcId> {
        let (row, col) = self.coords(p);
        let mut out = Vec::with_capacity(4);
        if row > 0 {
            out.push(self.proc_at(row - 1, col));
        }
        if row + 1 < self.proc_rows {
            out.push(self.proc_at(row + 1, col));
        }
        if col > 0 {
            out.push(self.proc_at(row, col - 1));
        }
        if col + 1 < self.proc_cols {
            out.push(self.proc_at(row, col + 1));
        }
        out
    }

    /// Every processor whose owned region intersects `rect`, ascending.
    ///
    /// The regions tile the surface, so the intersecting owners form a
    /// contiguous sub-grid of the processor mesh: binary-search its corner
    /// rows/columns instead of testing all P regions. This sits on the
    /// per-wire update path of the message-passing router.
    pub fn owners_intersecting(&self, rect: Rect) -> Vec<ProcId> {
        if rect.c_lo >= self.channels || rect.x_lo >= self.grids {
            return Vec::new();
        }
        let row_lo = self.channel_starts[1..].partition_point(|&s| s <= rect.c_lo);
        let row_hi =
            self.channel_starts[1..].partition_point(|&s| s <= rect.c_hi.min(self.channels - 1));
        let col_lo = self.grid_starts[1..].partition_point(|&s| s <= rect.x_lo);
        let col_hi = self.grid_starts[1..].partition_point(|&s| s <= rect.x_hi.min(self.grids - 1));
        let mut out = Vec::with_capacity((row_hi + 1 - row_lo) * (col_hi + 1 - col_lo));
        for row in row_lo..=row_hi {
            for col in col_lo..=col_hi {
                out.push(self.proc_at(row, col));
            }
        }
        out
    }

    /// Surface dimensions `(channels, grids)`.
    pub fn surface(&self) -> (u16, u16) {
        (self.channels, self.grids)
    }
}

/// `parts + 1` boundaries splitting `0..total` as evenly as possible.
fn even_splits(total: u16, parts: usize) -> Vec<u16> {
    (0..=parts).map(|i| ((i as u64 * total as u64) / parts as u64) as u16).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_dims_match_paper_configs() {
        assert_eq!(mesh_dims(2), (1, 2));
        assert_eq!(mesh_dims(4), (2, 2));
        assert_eq!(mesh_dims(9), (3, 3));
        assert_eq!(mesh_dims(16), (4, 4));
        assert_eq!(mesh_dims(1), (1, 1));
        assert_eq!(mesh_dims(6), (2, 3));
        assert_eq!(mesh_dims(7), (1, 7));
    }

    #[test]
    fn regions_tile_the_surface_exactly() {
        let m = RegionMap::new(10, 341, 16);
        let mut covered = 0u64;
        for p in 0..m.n_procs() {
            covered += m.region(p).area();
        }
        assert_eq!(covered, 10 * 341);
        // Every cell is owned by exactly the region that contains it.
        for c in 0..10u16 {
            for x in 0..341u16 {
                let cell = GridCell::new(c, x);
                let owner = m.owner_of(cell);
                assert!(m.region(owner).contains(cell), "{cell} not in region of {owner}");
            }
        }
    }

    #[test]
    fn owner_lookup_matches_region_scan() {
        let m = RegionMap::new(12, 386, 9);
        for c in (0..12).step_by(3) {
            for x in (0..386).step_by(17) {
                let cell = GridCell::new(c, x);
                let by_lookup = m.owner_of(cell);
                let by_scan = (0..m.n_procs()).find(|&p| m.region(p).contains(cell)).unwrap();
                assert_eq!(by_lookup, by_scan);
            }
        }
    }

    #[test]
    fn coords_roundtrip() {
        let m = RegionMap::new(10, 341, 16);
        for p in 0..16 {
            let (r, c) = m.coords(p);
            assert_eq!(m.proc_at(r, c), p);
        }
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let m = RegionMap::new(10, 341, 16);
        // 4x4 mesh: proc 0 at (0,0), proc 15 at (3,3).
        assert_eq!(m.mesh_distance(0, 15), 6);
        assert_eq!(m.mesh_distance(5, 5), 0);
        assert_eq!(m.mesh_distance(0, 1), 1);
        assert_eq!(m.mesh_distance(0, 4), 1);
    }

    #[test]
    fn neighbors_are_adjacent_and_correct_count() {
        let m = RegionMap::new(10, 341, 16);
        assert_eq!(m.neighbors(0).len(), 2); // corner
        assert_eq!(m.neighbors(1).len(), 3); // edge
        assert_eq!(m.neighbors(5).len(), 4); // interior
        for p in 0..16 {
            for n in m.neighbors(p) {
                assert_eq!(m.mesh_distance(p, n), 1);
            }
        }
    }

    #[test]
    fn owners_intersecting_finds_spanning_rect() {
        let m = RegionMap::new(10, 340, 4); // 2x2 mesh
        let all = m.owners_intersecting(Rect::new(0, 9, 0, 339));
        assert_eq!(all, vec![0, 1, 2, 3]);
        let region0 = m.region(0);
        assert_eq!(m.owners_intersecting(region0), vec![0]);
    }

    #[test]
    fn owners_intersecting_matches_full_scan() {
        for n_procs in [1, 2, 4, 6, 9, 16] {
            let m = RegionMap::new(10, 97, n_procs);
            for c_lo in (0..10u16).step_by(3) {
                for c_hi in c_lo..10 {
                    for x_lo in (0..97u16).step_by(13) {
                        for x_hi in (x_lo..97).step_by(11) {
                            let rect = Rect::new(c_lo, c_hi, x_lo, x_hi);
                            let scan: Vec<ProcId> = (0..m.n_procs())
                                .filter(|&p| m.region(p).intersects(&rect))
                                .collect();
                            assert_eq!(m.owners_intersecting(rect), scan, "{rect} P={n_procs}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_surface_smaller_than_mesh() {
        let _ = RegionMap::new(2, 341, 16); // needs 4 channel bands
    }

    #[test]
    fn two_proc_split_is_horizontal() {
        // 1x2 mesh: the array splits into left/right halves.
        let m = RegionMap::new(10, 341, 2);
        assert_eq!(m.region(0), Rect::new(0, 9, 0, 169));
        assert_eq!(m.region(1), Rect::new(0, 9, 170, 340));
    }
}
