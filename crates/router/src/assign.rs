//! Wire-assignment strategies (§4.2).
//!
//! The paper contrasts a locality-oblivious **round robin** assignment
//! with a locality-based one: each wire is assigned to the owner processor
//! of its *leftmost pin*, except that wires whose length-based cost
//! measure exceeds **ThresholdCost** — long wires with little locality to
//! exploit anyway — are held back and assigned in a final pass purely to
//! balance the load. `ThresholdCost = ∞` is the extreme local assignment;
//! small values approach pure load balancing.

use locus_circuit::{Circuit, WireId};

use crate::region::{ProcId, RegionMap};

/// How wires are distributed among processors before routing begins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignmentStrategy {
    /// Wire `i` goes to processor `i mod P` — the extreme non-local case
    /// of Table 4/5.
    RoundRobin,
    /// Locality-based assignment with the ThresholdCost escape hatch;
    /// `threshold_cost: None` means ∞ (pure locality).
    Locality {
        /// Wires with `cost_measure() < threshold` follow their leftmost
        /// pin; longer ones are load-balanced. `None` = infinity.
        threshold_cost: Option<u32>,
    },
}

impl AssignmentStrategy {
    /// The four rows of Tables 4 and 5, in paper order.
    pub fn table45_rows() -> [(&'static str, AssignmentStrategy); 4] {
        [
            ("round robin", AssignmentStrategy::RoundRobin),
            ("ThresholdCost = 30", AssignmentStrategy::Locality { threshold_cost: Some(30) }),
            ("ThresholdCost = 1000", AssignmentStrategy::Locality { threshold_cost: Some(1000) }),
            ("ThresholdCost = inf.", AssignmentStrategy::Locality { threshold_cost: None }),
        ]
    }
}

/// The result of the static wire-assignment phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Wires owned by each processor, in routing order.
    pub wires_per_proc: Vec<Vec<WireId>>,
    /// Inverse map: the processor routing each wire.
    pub proc_of_wire: Vec<ProcId>,
}

impl Assignment {
    /// Per-processor load, measured as Σ (cost_measure + 1) so even
    /// zero-length wires carry weight.
    pub fn loads(&self, circuit: &Circuit) -> Vec<u64> {
        self.wires_per_proc
            .iter()
            .map(|ws| ws.iter().map(|&w| circuit.wire(w).cost_measure() as u64 + 1).sum())
            .collect()
    }

    /// Load imbalance: `max_load / mean_load` (1.0 = perfectly balanced).
    pub fn imbalance(&self, circuit: &Circuit) -> f64 {
        let loads = self.loads(circuit);
        let max = *loads.iter().max().unwrap_or(&0) as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Runs the static assignment phase.
pub fn assign(circuit: &Circuit, regions: &RegionMap, strategy: AssignmentStrategy) -> Assignment {
    let n_procs = regions.n_procs();
    let mut wires_per_proc: Vec<Vec<WireId>> = vec![Vec::new(); n_procs];
    let mut proc_of_wire = vec![0 as ProcId; circuit.wire_count()];

    match strategy {
        AssignmentStrategy::RoundRobin => {
            for wire in &circuit.wires {
                let p = wire.id % n_procs;
                wires_per_proc[p].push(wire.id);
                proc_of_wire[wire.id] = p;
            }
        }
        AssignmentStrategy::Locality { threshold_cost } => {
            // Phase 1: short wires follow their leftmost pin.
            let mut deferred: Vec<WireId> = Vec::new();
            for wire in &circuit.wires {
                let local = match threshold_cost {
                    None => true,
                    Some(t) => wire.cost_measure() < t,
                };
                if local {
                    let p = regions.owner_of(wire.leftmost_pin().cell());
                    wires_per_proc[p].push(wire.id);
                    proc_of_wire[wire.id] = p;
                } else {
                    deferred.push(wire.id);
                }
            }
            // Phase 2: long wires balance the load, ignoring locality
            // (§4.2). Longest-first greedy onto the least-loaded
            // processor — the classic LPT heuristic.
            deferred.sort_by_key(|&w| std::cmp::Reverse(circuit.wire(w).cost_measure()));
            let mut loads: Vec<u64> = wires_per_proc
                .iter()
                .map(|ws| ws.iter().map(|&w| circuit.wire(w).cost_measure() as u64 + 1).sum())
                .collect();
            for w in deferred {
                let p = loads
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &l)| l)
                    .map(|(p, _)| p)
                    .expect("at least one processor");
                wires_per_proc[p].push(w);
                proc_of_wire[w] = p;
                loads[p] += circuit.wire(w).cost_measure() as u64 + 1;
            }
            // Restore routing order (wire-id order) within each processor
            // so iteration order is independent of the assignment phases.
            for ws in &mut wires_per_proc {
                ws.sort_unstable();
            }
        }
    }

    Assignment { wires_per_proc, proc_of_wire }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;

    fn setup() -> (locus_circuit::Circuit, RegionMap) {
        let c = presets::bnr_e();
        let m = RegionMap::new(c.channels, c.grids, 16);
        (c, m)
    }

    #[test]
    fn round_robin_is_perfectly_spread() {
        let (c, m) = setup();
        let a = assign(&c, &m, AssignmentStrategy::RoundRobin);
        let counts: Vec<usize> = a.wires_per_proc.iter().map(|w| w.len()).collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1);
        for w in 0..c.wire_count() {
            assert_eq!(a.proc_of_wire[w], w % 16);
        }
    }

    #[test]
    fn every_wire_assigned_exactly_once() {
        let (c, m) = setup();
        for strategy in [
            AssignmentStrategy::RoundRobin,
            AssignmentStrategy::Locality { threshold_cost: Some(30) },
            AssignmentStrategy::Locality { threshold_cost: None },
        ] {
            let a = assign(&c, &m, strategy);
            let total: usize = a.wires_per_proc.iter().map(|w| w.len()).sum();
            assert_eq!(total, c.wire_count());
            let mut seen = vec![false; c.wire_count()];
            for (p, ws) in a.wires_per_proc.iter().enumerate() {
                for &w in ws {
                    assert!(!seen[w], "wire {w} assigned twice");
                    seen[w] = true;
                    assert_eq!(a.proc_of_wire[w], p);
                }
            }
        }
    }

    #[test]
    fn infinite_threshold_follows_leftmost_pin() {
        let (c, m) = setup();
        let a = assign(&c, &m, AssignmentStrategy::Locality { threshold_cost: None });
        for wire in &c.wires {
            assert_eq!(
                a.proc_of_wire[wire.id],
                m.owner_of(wire.leftmost_pin().cell()),
                "wire {} should follow its leftmost pin",
                wire.id
            );
        }
    }

    #[test]
    fn lower_threshold_improves_balance() {
        let (c, m) = setup();
        let inf = assign(&c, &m, AssignmentStrategy::Locality { threshold_cost: None });
        let t30 = assign(&c, &m, AssignmentStrategy::Locality { threshold_cost: Some(30) });
        assert!(
            t30.imbalance(&c) <= inf.imbalance(&c),
            "threshold 30 ({:.3}) should balance at least as well as infinity ({:.3})",
            t30.imbalance(&c),
            inf.imbalance(&c)
        );
    }

    #[test]
    fn threshold_splits_populations() {
        let (c, m) = setup();
        let t = 30u32;
        let a = assign(&c, &m, AssignmentStrategy::Locality { threshold_cost: Some(t) });
        // Every short wire must follow its leftmost pin.
        for wire in &c.wires {
            if wire.cost_measure() < t {
                assert_eq!(a.proc_of_wire[wire.id], m.owner_of(wire.leftmost_pin().cell()));
            }
        }
    }

    #[test]
    fn per_proc_lists_are_in_routing_order() {
        let (c, m) = setup();
        let a = assign(&c, &m, AssignmentStrategy::Locality { threshold_cost: Some(30) });
        for ws in &a.wires_per_proc {
            assert!(ws.windows(2).all(|w| w[0] < w[1]), "wire lists must be sorted");
        }
    }

    #[test]
    fn imbalance_of_round_robin_is_moderate() {
        let (c, m) = setup();
        let rr = assign(&c, &m, AssignmentStrategy::RoundRobin);
        let imb = rr.imbalance(&c);
        assert!(imb < 1.6, "round robin imbalance unexpectedly high: {imb}");
    }
}
