//! ASCII renderings of the paper's explanatory figures.
//!
//! * [`render_cost_array`] reproduces **Figure 1**: a cost array with one
//!   wire's chosen route highlighted.
//! * [`render_regions`] reproduces **Figure 2**: the division of the cost
//!   array among processors, owned regions labelled.
//!
//! These exist for documentation, examples and debugging; the experiment
//! harness prints them from `locus-experiments figure1|figure2`.

use locus_circuit::GridCell;

use crate::cost_array::CostArray;
use crate::region::RegionMap;
use crate::route::Route;

/// Renders the cost array as digit cells (values clamped to 9), with the
/// cells of `highlight` wrapped in `[ ]` — the Figure 1 view.
pub fn render_cost_array(cost: &CostArray, highlight: Option<&Route>) -> String {
    use crate::cost_array::CostView;
    let mut out = String::new();
    let on_route = |cell: GridCell| -> bool {
        highlight.is_some_and(|r| r.cells().binary_search(&cell).is_ok())
    };
    // Channel 0 is the bottom channel; print top-down like the figure.
    for c in (0..cost.channels()).rev() {
        out.push_str(&format!("ch{c:>2} |"));
        for x in 0..cost.grids() {
            let cell = GridCell::new(c, x);
            let v = cost.cost_at(cell).min(9);
            if on_route(cell) {
                out.push('[');
                out.push((b'0' + v as u8) as char);
                out.push(']');
            } else {
                out.push(' ');
                out.push((b'0' + v as u8) as char);
                out.push(' ');
            }
        }
        out.push_str("|\n");
    }
    out
}

/// Renders the owned-region division: each cell shows its owner processor
/// as a base-36 digit — the Figure 2 view.
pub fn render_regions(regions: &RegionMap) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let (channels, grids) = regions.surface();
    let mut out = String::new();
    for c in (0..channels).rev() {
        out.push_str(&format!("ch{c:>2} |"));
        for x in 0..grids {
            let p = regions.owner_of(GridCell::new(c, x));
            out.push(DIGITS[p % 36] as char);
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Segment;

    #[test]
    fn cost_render_has_one_line_per_channel() {
        let cost = CostArray::new(4, 8);
        let s = render_cost_array(&cost, None);
        assert_eq!(s.lines().count(), 4);
        assert!(s.starts_with("ch 3"));
    }

    #[test]
    fn highlighted_route_is_bracketed() {
        let mut cost = CostArray::new(4, 8);
        let r = Route::from_segments(vec![Segment::horizontal(1, 2, 4)]);
        cost.add_route(&r);
        let s = render_cost_array(&cost, Some(&r));
        assert!(s.contains("[1]"), "route cells should be bracketed:\n{s}");
    }

    #[test]
    fn region_render_labels_every_owner() {
        let m = RegionMap::new(4, 16, 4);
        let s = render_regions(&m);
        assert_eq!(s.lines().count(), 4);
        for d in ['0', '1', '2', '3'] {
            assert!(s.contains(d), "missing owner {d}:\n{s}");
        }
    }
}
