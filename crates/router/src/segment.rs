//! Multi-pin wire decomposition into two-pin connections.
//!
//! LocusRoute routes a multi-pin wire as a chain of two-pin connections.
//! We sort the pins left-to-right (ties by channel) and connect
//! consecutive pairs, which matches the left-to-right sweep implied by the
//! paper's "leftmost pin" assignment heuristic and keeps every connection
//! within the wire's bounding box.

use locus_circuit::{Pin, Wire};

/// An ordered two-pin connection to be routed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Connection {
    /// Source pin (left of, or equal-x to, `to`).
    pub from: Pin,
    /// Destination pin.
    pub to: Pin,
}

/// Decomposes `wire` into the chain of connections LocusRoute routes.
///
/// Duplicate pins (same cell) are collapsed first; a wire whose pins all
/// coincide yields a single degenerate connection so it still occupies its
/// cell in the cost array.
pub fn decompose(wire: &Wire) -> Vec<Connection> {
    let mut pins = Vec::new();
    let mut out = Vec::new();
    decompose_into(wire, &mut pins, &mut out);
    out
}

/// Allocation-free [`decompose`]: writes the connection chain into `out`
/// using `pins` as sort scratch. Both buffers are cleared first; at steady
/// state (buffers reused across wires, as in
/// [`crate::router::EvalScratch`]) no allocation occurs.
pub fn decompose_into(wire: &Wire, pins: &mut Vec<Pin>, out: &mut Vec<Connection>) {
    pins.clear();
    pins.extend_from_slice(&wire.pins);
    pins.sort_unstable_by_key(|p| (p.x, p.channel));
    pins.dedup();
    out.clear();
    if pins.len() == 1 {
        out.push(Connection { from: pins[0], to: pins[0] });
        return;
    }
    out.extend(pins.windows(2).map(|w| Connection { from: w[0], to: w[1] }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::Pin;

    fn wire(pins: &[(u16, u16)]) -> Wire {
        Wire::new(0, pins.iter().map(|&(c, x)| Pin::new(c, x)).collect())
    }

    #[test]
    fn two_pin_wire_single_connection() {
        let conns = decompose(&wire(&[(2, 9), (0, 1)]));
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].from, Pin::new(0, 1));
        assert_eq!(conns[0].to, Pin::new(2, 9));
    }

    #[test]
    fn multi_pin_wire_chains_left_to_right() {
        let conns = decompose(&wire(&[(1, 20), (3, 5), (0, 12)]));
        assert_eq!(conns.len(), 2);
        assert_eq!(conns[0].from, Pin::new(3, 5));
        assert_eq!(conns[0].to, Pin::new(0, 12));
        assert_eq!(conns[1].from, Pin::new(0, 12));
        assert_eq!(conns[1].to, Pin::new(1, 20));
    }

    #[test]
    fn equal_x_pins_ordered_by_channel() {
        let conns = decompose(&wire(&[(3, 5), (1, 5)]));
        assert_eq!(conns[0].from, Pin::new(1, 5));
        assert_eq!(conns[0].to, Pin::new(3, 5));
    }

    #[test]
    fn duplicate_pins_collapse() {
        let conns = decompose(&wire(&[(1, 5), (1, 5), (2, 8)]));
        assert_eq!(conns.len(), 1);
    }

    #[test]
    fn fully_coincident_wire_yields_degenerate_connection() {
        let conns = decompose(&wire(&[(1, 5), (1, 5)]));
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].from, conns[0].to);
    }

    #[test]
    fn connection_count_is_pins_minus_one() {
        let w = wire(&[(0, 1), (1, 4), (2, 9), (3, 15), (1, 30)]);
        assert_eq!(decompose(&w).len(), 4);
    }
}
