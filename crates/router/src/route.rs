//! Route representation: the cells a wire occupies.
//!
//! A route is a list of horizontal (within-channel) and vertical
//! (channel-crossing feedthrough) segments. Horizontal segments occupy the
//! cells of one channel row between two columns; vertical segments occupy
//! one cell in every channel they cross at a fixed column. The covered
//! cell set is deduplicated so a cell shared by a corner is counted — and
//! costed, and incremented — exactly once.

use locus_circuit::{GridCell, Rect};

/// One straight piece of a route.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Segment {
    /// A run along channel `channel` covering columns `x_lo..=x_hi`.
    Horizontal {
        /// Channel the run lies in.
        channel: u16,
        /// Leftmost covered column.
        x_lo: u16,
        /// Rightmost covered column (inclusive).
        x_hi: u16,
    },
    /// A feedthrough at column `x` covering channels `c_lo..=c_hi`.
    Vertical {
        /// Column the feedthrough occupies.
        x: u16,
        /// Lowest covered channel.
        c_lo: u16,
        /// Highest covered channel (inclusive).
        c_hi: u16,
    },
}

impl Segment {
    /// Horizontal segment; argument order of the columns is free.
    pub fn horizontal(channel: u16, xa: u16, xb: u16) -> Self {
        Segment::Horizontal { channel, x_lo: xa.min(xb), x_hi: xa.max(xb) }
    }

    /// Vertical segment; argument order of the channels is free.
    pub fn vertical(x: u16, ca: u16, cb: u16) -> Self {
        Segment::Vertical { x, c_lo: ca.min(cb), c_hi: ca.max(cb) }
    }

    /// Number of cells covered by the segment. Always at least one — the
    /// normalizing constructors make empty segments unrepresentable, so
    /// there is deliberately no `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u32 {
        match *self {
            Segment::Horizontal { x_lo, x_hi, .. } => (x_hi - x_lo) as u32 + 1,
            Segment::Vertical { c_lo, c_hi, .. } => (c_hi - c_lo) as u32 + 1,
        }
    }

    /// The cells covered by this segment, in order.
    pub fn cells(&self) -> Vec<GridCell> {
        match *self {
            Segment::Horizontal { channel, x_lo, x_hi } => {
                (x_lo..=x_hi).map(|x| GridCell::new(channel, x)).collect()
            }
            Segment::Vertical { x, c_lo, c_hi } => {
                (c_lo..=c_hi).map(|c| GridCell::new(c, x)).collect()
            }
        }
    }

    /// Bounding box of the segment.
    pub fn bounding_box(&self) -> Rect {
        match *self {
            Segment::Horizontal { channel, x_lo, x_hi } => Rect::new(channel, channel, x_lo, x_hi),
            Segment::Vertical { x, c_lo, c_hi } => Rect::new(c_lo, c_hi, x, x),
        }
    }
}

/// A complete route for one wire: its segments plus the deduplicated cell
/// cover, precomputed because every consumer (cost evaluation, cost-array
/// increments, delta recording, locality measurement) iterates it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    segments: Vec<Segment>,
    cells: Vec<GridCell>,
}

impl Route {
    /// Builds a route from segments, deduplicating corner cells.
    ///
    /// # Panics
    /// Panics if `segments` is empty.
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        assert!(!segments.is_empty(), "route must have at least one segment");
        let total: usize = segments.iter().map(|s| s.len() as usize).sum();
        let mut cells: Vec<GridCell> = Vec::with_capacity(total);
        for s in &segments {
            match *s {
                Segment::Horizontal { channel, x_lo, x_hi } => {
                    cells.extend((x_lo..=x_hi).map(|x| GridCell::new(channel, x)));
                }
                Segment::Vertical { x, c_lo, c_hi } => {
                    cells.extend((c_lo..=c_hi).map(|c| GridCell::new(c, x)));
                }
            }
        }
        cells.sort_unstable();
        cells.dedup();
        Route { segments, cells }
    }

    /// The deduplicated cells this route occupies (sorted).
    #[inline]
    pub fn cells(&self) -> &[GridCell] {
        &self.cells
    }

    /// The segments of the route.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of occupied cells. Always at least one —
    /// [`Route::from_segments`] rejects empty segment lists, so emptiness
    /// is unrepresentable and there is deliberately no `is_empty`.
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Bounding box of the whole route.
    pub fn bounding_box(&self) -> Rect {
        let mut r = self.segments[0].bounding_box();
        for s in &self.segments[1..] {
            let b = s.bounding_box();
            r = r.union(&b);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_normalizes_argument_order() {
        assert_eq!(
            Segment::horizontal(2, 9, 3),
            Segment::Horizontal { channel: 2, x_lo: 3, x_hi: 9 }
        );
        assert_eq!(Segment::vertical(5, 4, 1), Segment::Vertical { x: 5, c_lo: 1, c_hi: 4 });
    }

    #[test]
    fn segment_cells_and_len_agree() {
        let h = Segment::horizontal(1, 2, 5);
        assert_eq!(h.len(), 4);
        assert_eq!(h.cells().len(), 4);
        let v = Segment::vertical(7, 0, 3);
        assert_eq!(v.len(), 4);
        assert_eq!(
            v.cells(),
            vec![
                GridCell::new(0, 7),
                GridCell::new(1, 7),
                GridCell::new(2, 7),
                GridCell::new(3, 7),
            ]
        );
    }

    #[test]
    fn route_dedups_corner() {
        let r = Route::from_segments(vec![
            Segment::horizontal(0, 0, 3),
            Segment::vertical(3, 0, 2),
            Segment::horizontal(2, 3, 5),
        ]);
        // 4 + 3 + 3 cells, minus 2 shared corners.
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn route_bounding_box_spans_segments() {
        let r =
            Route::from_segments(vec![Segment::horizontal(1, 2, 6), Segment::vertical(6, 1, 3)]);
        assert_eq!(r.bounding_box(), Rect::new(1, 3, 2, 6));
    }

    #[test]
    fn single_cell_route() {
        let r = Route::from_segments(vec![Segment::horizontal(2, 4, 4)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.cells(), &[GridCell::new(2, 4)]);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn route_rejects_empty() {
        let _ = Route::from_segments(vec![]);
    }
}
