//! Router configuration.

/// Parameters shared by every router implementation (sequential,
/// shared-memory, message-passing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterParams {
    /// Number of routing iterations. "Performing several of these
    /// iterations, with all wires routed once per iteration, improves the
    /// final solution quality" (§3). Iteration 1 routes onto an empty
    /// array; later iterations rip up and re-route.
    pub iterations: usize,
    /// How many channels above/below the pin bounding box VHV candidates
    /// may detour through. `0` confines candidates to the bounding box;
    /// `1` (default) lets a wire escape one channel to dodge congestion.
    pub channel_overshoot: u16,
}

impl Default for RouterParams {
    fn default() -> Self {
        RouterParams { iterations: 2, channel_overshoot: 1 }
    }
}

impl RouterParams {
    /// Single-iteration parameters (used by tests and ablations).
    pub fn single_iteration() -> Self {
        RouterParams { iterations: 1, ..Self::default() }
    }

    /// Returns `self` with a different iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations >= 1, "at least one routing iteration is required");
        self.iterations = iterations;
        self
    }

    /// Returns `self` with a different channel overshoot.
    pub fn with_channel_overshoot(mut self, overshoot: u16) -> Self {
        self.channel_overshoot = overshoot;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_two_iterations_with_overshoot() {
        let p = RouterParams::default();
        assert_eq!(p.iterations, 2);
        assert_eq!(p.channel_overshoot, 1);
    }

    #[test]
    fn builders_apply() {
        let p = RouterParams::default().with_iterations(4).with_channel_overshoot(0);
        assert_eq!(p.iterations, 4);
        assert_eq!(p.channel_overshoot, 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_iterations_rejected() {
        let _ = RouterParams::default().with_iterations(0);
    }
}
