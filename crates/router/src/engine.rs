//! The shared execution core behind every routing engine.
//!
//! The paper's whole point is that message passing and shared memory are
//! two implementations of *one* router, so the loop that routes a wire —
//! rip up the previous route, evaluate candidates, commit the winner,
//! account the work, emit the observability events — must exist exactly
//! once. This module owns that loop's bookkeeping:
//!
//! * [`IterationDriver`] — per-engine (or per message-passing node)
//!   ledger of routes, work counters, per-iteration occupancy, and the
//!   `PhaseBegin`/`RipUp`/`WireRouted`/`PhaseEnd`/`KernelStats` event
//!   emission that used to be copy-pasted across the four engines;
//! * [`ObsEmitter`] — a sink handle with the cached `enabled()` branch
//!   every instrumented layer uses;
//! * [`WireFeed`] — one iteration's wire supply (the §3 distributed-loop
//!   shared counter or a §4.2 static assignment), shared by the
//!   shared-memory emulator and the real threaded executor;
//! * [`RoutingEngine`] / [`EngineCtx`] / [`EngineRun`] — the uniform
//!   interface the engine registry and the experiment harness consume,
//!   making engines interchangeable values.
//!
//! Engines keep what genuinely differs between paradigms — memory
//! semantics (global array, unlocked atomics, stale replicas), clocks,
//! and scheduling — and delegate everything else here.

use std::sync::atomic::{AtomicUsize, Ordering};

use locus_circuit::{Circuit, WireId};
use locus_obs::{Event, EventKind, NullSink, Sink};

use crate::cost_array::{CostArray, PrefixStats};
use crate::params::RouterParams;
use crate::quality::QualityMetrics;
use crate::route::Route;
use crate::router::{RouteOutcome, SequentialRouter, WireEvaluation};
use crate::work::WorkStats;

/// How an event is stamped.
///
/// Most engines have a clock (simulated or wall nanoseconds) and pass
/// [`Stamp::At`]. The sequential router has no clock; its deterministic
/// pseudo-time is cumulative cells examined, which [`Stamp::WorkCells`]
/// reads from the driver's own work ledger — *after* the commit being
/// stamped is accounted, preserving the historical stamp stream.
#[derive(Clone, Copy, Debug)]
pub enum Stamp {
    /// An explicit timestamp in the engine's time base (ns).
    At(u64),
    /// The driver's cumulative `cells_examined` at emission time.
    WorkCells,
}

/// A sink handle with the cached-`enabled()` contract every instrumented
/// layer follows: one predictable branch when observability is off, and
/// the event is only constructed when it is on.
pub struct ObsEmitter {
    sink: Box<dyn Sink>,
    enabled: bool,
    node: u32,
}

impl ObsEmitter {
    /// The disabled emitter (a [`NullSink`] behind one never-taken branch).
    pub fn disabled() -> Self {
        ObsEmitter { sink: Box::new(NullSink), enabled: false, node: 0 }
    }

    /// An emitter recording into `sink`, attributing events to node 0.
    pub fn new(sink: Box<dyn Sink>) -> Self {
        let enabled = sink.enabled();
        ObsEmitter { sink, enabled, node: 0 }
    }

    /// Returns `self` attributing events to `node`.
    pub fn for_node(mut self, node: u32) -> Self {
        self.node = node;
        self
    }

    /// Changes the node subsequent events are attributed to (for engines
    /// that multiplex several logical processors through one emitter).
    #[inline]
    pub fn set_node(&mut self, node: u32) {
        self.node = node;
    }

    /// Whether recording is on (cached once at construction).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records `kind` at `at_ns` on this emitter's node.
    #[inline]
    pub fn emit(&mut self, at_ns: u64, kind: EventKind) {
        if self.enabled {
            self.sink.record(Event { at_ns, node: self.node, kind });
        }
    }

    /// Records `kind` at `at_ns` on an explicit node (for engines that
    /// multiplex several logical processors through one emitter).
    #[inline]
    pub fn emit_on(&mut self, at_ns: u64, node: u32, kind: EventKind) {
        if self.enabled {
            self.sink.record(Event { at_ns, node, kind });
        }
    }
}

/// The shared route-wire / rip-up / per-iteration-metrics ledger.
///
/// One driver serves one stream of routing decisions: the whole run for
/// the sequential router and the shared-memory engines (slots indexed by
/// global wire id), or one processor's slice for a message-passing node
/// (slots indexed by position in its static wire list). The driver owns
/// the route slots, the [`WorkStats`] ledger, per-iteration occupancy
/// accounting, and all routing-event emission; the engine keeps memory
/// semantics, clocks, and scheduling.
pub struct IterationDriver {
    obs: ObsEmitter,
    routes: Vec<Option<Route>>,
    /// Routes committed outside the static slots (§4.2 dynamic wire
    /// distribution, where a node routes whatever it is granted).
    dynamic: Vec<(WireId, Route)>,
    work: WorkStats,
    occupancy_current: u64,
    occupancy_by_iteration: Vec<u64>,
    /// Connections evaluated through the per-cell span fallback (kept out
    /// of [`WorkStats`] so work ledgers stay comparable across engines
    /// whose span paths legitimately differ).
    percell_evals: u64,
    /// Whether the one-time `PercellFallback` event has been emitted.
    percell_flagged: bool,
}

impl IterationDriver {
    /// A driver with `slots` route slots and observability off.
    pub fn new(slots: usize) -> Self {
        IterationDriver {
            obs: ObsEmitter::disabled(),
            routes: vec![None; slots],
            dynamic: Vec::new(),
            work: WorkStats::default(),
            occupancy_current: 0,
            occupancy_by_iteration: Vec::new(),
            percell_evals: 0,
            percell_flagged: false,
        }
    }

    /// Returns `self` recording routing events into `emitter`.
    pub fn with_obs(mut self, emitter: ObsEmitter) -> Self {
        self.obs = emitter;
        self
    }

    /// Replaces the driver's emitter in place (for engines that wire the
    /// sink up after construction).
    pub fn set_obs(&mut self, emitter: ObsEmitter) {
        self.obs = emitter;
    }

    /// Whether event recording is on.
    #[inline]
    pub fn obs_on(&self) -> bool {
        self.obs.enabled()
    }

    /// Attributes subsequent events to `node` (multiplexing engines set
    /// this to the acting logical processor before each step).
    #[inline]
    pub fn on_node(&mut self, node: u32) {
        self.obs.set_node(node);
    }

    #[inline]
    fn resolve(&self, stamp: Stamp) -> u64 {
        match stamp {
            Stamp::At(t) => t,
            Stamp::WorkCells => self.work.cells_examined,
        }
    }

    /// Emits `PhaseBegin { "iteration" }`.
    pub fn phase_begin(&mut self, stamp: Stamp) {
        let at = self.resolve(stamp);
        self.obs.emit(at, EventKind::PhaseBegin { name: "iteration" });
    }

    /// Emits `PhaseEnd { "iteration" }`.
    pub fn phase_end(&mut self, stamp: Stamp) {
        let at = self.resolve(stamp);
        self.obs.emit(at, EventKind::PhaseEnd { name: "iteration" });
    }

    /// Seals the current iteration: records its accumulated occupancy
    /// factor and resets the accumulator for the next iteration.
    pub fn close_iteration(&mut self) {
        self.occupancy_by_iteration.push(self.occupancy_current);
        self.occupancy_current = 0;
    }

    /// Takes the previous route out of `slot` for re-routing, accounting
    /// the rip-up writes and emitting the `RipUp` event. The caller
    /// applies the decrements to whatever array it owns.
    pub fn rip_up(&mut self, slot: usize, wire: WireId, stamp: Stamp) -> Option<Route> {
        let old = self.routes[slot].take()?;
        self.rip_up_external(wire, &old, stamp);
        Some(old)
    }

    /// [`rip_up`](Self::rip_up) for a route stored outside the driver
    /// (engines whose slots are shared across threads): accounts the
    /// writes and emits the event for a route the caller already took.
    pub fn rip_up_external(&mut self, wire: WireId, old: &Route, stamp: Stamp) {
        self.work.cells_written += old.len() as u64;
        let at = self.resolve(stamp);
        self.obs.emit(at, EventKind::RipUp { wire: wire as u32, cells: old.len() as u32 });
    }

    fn account(&mut self, eval: &WireEvaluation, cost_at_decision: u64) {
        self.work.wires_routed += 1;
        self.work.connections += eval.connections;
        self.work.candidates += eval.candidates;
        self.work.cells_examined += eval.cells_examined;
        self.work.cells_written += eval.route.len() as u64;
        self.occupancy_current += cost_at_decision;
    }

    /// Commits `eval` into `slot`: accounts the work and occupancy,
    /// emits the `WireRouted` event, and stores the route. The caller
    /// has already applied the route to its array; `cost_at_decision` is
    /// the route's cost against the state the occupancy metric reads
    /// (§3 — each engine defines which state that is).
    pub fn commit(
        &mut self,
        slot: usize,
        wire: WireId,
        eval: WireEvaluation,
        cost_at_decision: u64,
        stamp: Stamp,
    ) {
        let route = self.commit_external(wire, eval, cost_at_decision, stamp);
        self.routes[slot] = Some(route);
    }

    /// [`commit`](Self::commit) for a dynamically granted wire with no
    /// static slot; the route is appended to the dynamic ledger.
    pub fn commit_dynamic(
        &mut self,
        wire: WireId,
        eval: WireEvaluation,
        cost_at_decision: u64,
        stamp: Stamp,
    ) {
        let route = self.commit_external(wire, eval, cost_at_decision, stamp);
        self.dynamic.push((wire, route));
    }

    /// [`commit`](Self::commit) for a route stored outside the driver:
    /// accounts the work and occupancy, emits the event, and hands the
    /// route back for the caller to store.
    pub fn commit_external(
        &mut self,
        wire: WireId,
        eval: WireEvaluation,
        cost_at_decision: u64,
        stamp: Stamp,
    ) -> Route {
        if eval.percell_evals > 0 {
            self.percell_evals += eval.percell_evals;
            if !self.percell_flagged {
                // One event per run: a traced/per-cell run announces itself
                // the first time an evaluation skips the span kernel.
                self.percell_flagged = true;
                let at = self.resolve(stamp);
                self.obs.emit(at, EventKind::PercellFallback { wire: wire as u32 });
            }
        }
        self.account(&eval, cost_at_decision);
        let at = self.resolve(stamp);
        self.obs
            .emit(at, EventKind::WireRouted { wire: wire as u32, cells: eval.route.len() as u32 });
        eval.route
    }

    /// Emits the end-of-run `KernelStats` event with this driver's
    /// candidate total and the given prefix-cache counters.
    pub fn kernel_stats(&mut self, stamp: Stamp, prefix: PrefixStats) {
        if self.obs.enabled() {
            let at = self.resolve(stamp);
            self.obs.emit(
                at,
                EventKind::KernelStats {
                    candidates: self.work.candidates,
                    prefix_hits: prefix.hits,
                    prefix_rebuilds: prefix.rebuilds,
                    prefix_patches: prefix.patches,
                    prefix_invalidations: prefix.invalidations,
                    prefix_fallbacks: prefix.fallbacks,
                    percell_evals: self.percell_evals,
                },
            );
        }
    }

    /// Emits an arbitrary engine-specific event (e.g. a replica audit)
    /// through this driver's emitter at `stamp`.
    pub fn emit_event(&mut self, stamp: Stamp, kind: EventKind) {
        if self.obs.enabled() {
            let at = self.resolve(stamp);
            self.obs.emit(at, kind);
        }
    }

    /// Work performed so far.
    pub fn work(&self) -> &WorkStats {
        &self.work
    }

    /// Connections evaluated through the per-cell span fallback so far.
    pub fn percell_evals(&self) -> u64 {
        self.percell_evals
    }

    /// Occupancy accumulated in the (still open) current iteration.
    pub fn occupancy_current(&self) -> u64 {
        self.occupancy_current
    }

    /// Occupancy factor of each sealed iteration.
    pub fn occupancy_by_iteration(&self) -> &[u64] {
        &self.occupancy_by_iteration
    }

    /// Occupancy factor of the last sealed iteration (the reported one).
    pub fn last_occupancy(&self) -> u64 {
        self.occupancy_by_iteration.last().copied().unwrap_or(0)
    }

    /// The static route slots.
    pub fn slots(&self) -> &[Option<Route>] {
        &self.routes
    }

    /// Routes committed through the dynamic (slotless) path.
    pub fn dynamic_routes(&self) -> &[(WireId, Route)] {
        &self.dynamic
    }

    /// Drains the driver into a [`RouteOutcome`] over `cost` (the
    /// engine's final array). Every slot must hold a route.
    ///
    /// The driver remains usable for [`kernel_stats`](Self::kernel_stats)
    /// afterwards — some engines stamp that event with counters that the
    /// quality computation itself advances.
    ///
    /// # Panics
    /// Panics if any slot is empty.
    pub fn finish(&mut self, cost: CostArray) -> RouteOutcome {
        let routes: Vec<Route> = std::mem::take(&mut self.routes)
            .into_iter()
            .map(|r| r.expect("every wire routed"))
            .collect();
        let occupancy_by_iteration = std::mem::take(&mut self.occupancy_by_iteration);
        let quality = QualityMetrics::from_final_state(
            &cost,
            occupancy_by_iteration.last().copied().unwrap_or(0),
        );
        RouteOutcome { quality, work: self.work, routes, cost, occupancy_by_iteration }
    }
}

/// One iteration's wire supply, shared by the shared-memory engines: the
/// §3 "distributed loop" (a shared counter handing the next wire to
/// whichever processor asks first) or a §4.2 static assignment walked by
/// a per-processor cursor. Thread-safe, so the emulator's multiplexed
/// logical processors and the threaded executor's OS threads use the
/// same supply.
pub struct WireFeed<'a> {
    next: AtomicUsize,
    n_wires: usize,
    lists: Option<&'a [Vec<WireId>]>,
}

impl<'a> WireFeed<'a> {
    /// A supply over `n_wires` wires; `lists` selects static assignment.
    pub fn new(n_wires: usize, lists: Option<&'a [Vec<WireId>]>) -> Self {
        WireFeed { next: AtomicUsize::new(0), n_wires, lists }
    }

    /// The next wire for `proc`, advancing its `cursor` (only used under
    /// static assignment); `None` when the supply is exhausted.
    pub fn next(&self, proc: usize, cursor: &mut usize) -> Option<WireId> {
        match self.lists {
            None => {
                let w = self.next.fetch_add(1, Ordering::Relaxed);
                (w < self.n_wires).then_some(w)
            }
            Some(lists) => {
                let w = lists[proc].get(*cursor).copied();
                if w.is_some() {
                    *cursor += 1;
                }
                w
            }
        }
    }
}

/// Everything an engine needs beyond the circuit and core parameters.
#[derive(Clone, Default)]
pub struct EngineCtx {
    /// Processor / thread count (ignored by the sequential engine).
    pub n_procs: usize,
    /// Observability sink; events flow into a clone per run.
    pub sink: Option<locus_obs::SharedSink>,
    /// Whether the engine should also measure its paradigm's traffic
    /// (bus MBytes for shared memory — requires trace collection — or
    /// payload MBytes for message passing).
    pub measure_traffic: bool,
}

impl EngineCtx {
    /// A context for `n_procs` processors, observability off.
    pub fn new(n_procs: usize) -> Self {
        EngineCtx { n_procs, sink: None, measure_traffic: false }
    }

    /// Returns `self` recording events into `sink`.
    pub fn with_sink(mut self, sink: locus_obs::SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Returns `self` with paradigm-traffic measurement enabled.
    pub fn with_traffic(mut self) -> Self {
        self.measure_traffic = true;
        self
    }
}

/// The uniform result of running any engine: the core routing outcome
/// plus the paradigm-level measures engines with a clock or a network
/// can report.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Routes, quality, work, and per-iteration occupancy.
    pub outcome: RouteOutcome,
    /// Paradigm traffic in megabytes, when measured (see
    /// [`EngineCtx::measure_traffic`]).
    pub mbytes: Option<f64>,
    /// Modelled (simulated) or wall-clock seconds, when the engine has a
    /// clock; the sequential engine has none.
    pub time_secs: Option<f64>,
    /// True when the run needed a watchdog or recovery intervention to
    /// finish (e.g. a message-passing deadlock break or node failover);
    /// the result is usable but earned under duress.
    pub degraded: bool,
}

/// A routing engine as an interchangeable value: one of the paper's two
/// paradigms (or the reference), runnable through one interface so the
/// experiment harness and registry can treat them uniformly.
pub trait RoutingEngine {
    /// Stable engine name (the registry key).
    fn id(&self) -> &'static str;

    /// Routes `circuit` under `params` in context `ctx`.
    fn route(&self, circuit: &Circuit, params: &RouterParams, ctx: &EngineCtx) -> EngineRun;
}

/// The reference single-processor engine (`id = "sequential"`).
pub struct SequentialEngine;

impl RoutingEngine for SequentialEngine {
    fn id(&self) -> &'static str {
        "sequential"
    }

    fn route(&self, circuit: &Circuit, params: &RouterParams, ctx: &EngineCtx) -> EngineRun {
        let mut router = SequentialRouter::new(circuit, *params);
        if let Some(sink) = &ctx.sink {
            router = router.with_sink(Box::new(sink.clone()));
        }
        EngineRun { outcome: router.run(), mbytes: None, time_secs: None, degraded: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_array::CostView;
    use locus_circuit::presets;
    use locus_obs::{names, SharedSink};

    #[test]
    fn driver_ledger_tracks_commits_and_ripups() {
        let c = presets::tiny();
        let mut cost = CostArray::new(c.channels, c.grids);
        let mut driver = IterationDriver::new(c.wire_count());
        let mut scratch = crate::router::EvalScratch::default();
        for iteration in 0..2 {
            driver.phase_begin(Stamp::WorkCells);
            for wire in &c.wires {
                if let Some(old) = driver.rip_up(wire.id, wire.id, Stamp::WorkCells) {
                    cost.remove_route(&old);
                }
                let eval = crate::router::route_wire_scratch(&cost, wire, 1, &mut scratch);
                let at_decision = cost.route_cost(&eval.route);
                cost.add_route(&eval.route);
                driver.commit(wire.id, wire.id, eval, at_decision, Stamp::WorkCells);
            }
            driver.phase_end(Stamp::WorkCells);
            driver.close_iteration();
            assert_eq!(driver.occupancy_by_iteration().len(), iteration + 1);
        }
        assert_eq!(driver.work().wires_routed, 2 * c.wire_count() as u64);
        let out = driver.finish(cost);
        assert_eq!(out.routes.len(), c.wire_count());
        assert_eq!(out.quality.occupancy_factor, out.occupancy_by_iteration[1]);
    }

    #[test]
    fn driver_emits_phase_and_wire_events() {
        let c = presets::tiny();
        let sink = SharedSink::new();
        let mut driver =
            IterationDriver::new(c.wire_count()).with_obs(ObsEmitter::new(Box::new(sink.clone())));
        assert!(driver.obs_on());
        driver.phase_begin(Stamp::At(0));
        let mut cost = CostArray::new(c.channels, c.grids);
        let mut scratch = crate::router::EvalScratch::default();
        let eval = crate::router::route_wire_scratch(&cost, &c.wires[0], 1, &mut scratch);
        cost.add_route(&eval.route);
        driver.commit(0, 0, eval, 0, Stamp::At(5));
        driver.phase_end(Stamp::At(10));
        driver.close_iteration();
        let m = sink.metrics_snapshot();
        assert_eq!(m.counter(names::PHASES_BEGUN), 1);
        assert_eq!(m.counter(names::PHASES_ENDED), 1);
        assert_eq!(m.counter(names::WIRES_ROUTED), 1);
    }

    #[test]
    fn wire_feed_distributed_loop_hands_each_wire_once() {
        let feed = WireFeed::new(5, None);
        let mut seen = Vec::new();
        let mut cursor = 0;
        while let Some(w) = feed.next(0, &mut cursor) {
            seen.push(w);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(feed.next(1, &mut cursor), None);
    }

    #[test]
    fn wire_feed_static_lists_walk_per_proc() {
        let lists = vec![vec![3usize, 1], vec![0, 2, 4]];
        let feed = WireFeed::new(5, Some(&lists));
        let mut c0 = 0;
        let mut c1 = 0;
        assert_eq!(feed.next(0, &mut c0), Some(3));
        assert_eq!(feed.next(1, &mut c1), Some(0));
        assert_eq!(feed.next(0, &mut c0), Some(1));
        assert_eq!(feed.next(0, &mut c0), None);
        assert_eq!(feed.next(1, &mut c1), Some(2));
        assert_eq!(feed.next(1, &mut c1), Some(4));
        assert_eq!(feed.next(1, &mut c1), None);
    }

    #[test]
    fn sequential_engine_matches_direct_router() {
        let c = presets::small();
        let params = RouterParams::default();
        let via_engine = SequentialEngine.route(&c, &params, &EngineCtx::new(1));
        let direct = SequentialRouter::new(&c, params).run();
        assert_eq!(via_engine.outcome.quality, direct.quality);
        assert_eq!(via_engine.outcome.routes, direct.routes);
        assert!(via_engine.time_secs.is_none());
        assert!(via_engine.mbytes.is_none());
    }
}
