//! # locus-router
//!
//! The LocusRoute routing core, re-implemented from the description in
//! Martonosi & Gupta (ICPP 1989) §3 and the LocusRoute references it
//! summarizes (Rose, DAC'88 / PPEALS'88).
//!
//! LocusRoute is a global router for standard cells. Its central data
//! structure is the **cost array**: one cell per `(channel, grid-column)`
//! recording how many wires currently run through that position. Each wire
//! is routed along the candidate path with the minimal sum of cost-array
//! entries, chosen from the *locus* of two-bend routes between its pins.
//! Several **iterations** are performed; before re-routing a wire, its
//! previous route is *ripped up* (cost array decremented along its path).
//!
//! The crate provides:
//!
//! * [`CostArray`] and the [`CostView`] abstraction (so the shared-memory
//!   crate can instrument reads and the message-passing crate can route
//!   against per-processor replicas),
//! * [`Route`]/[`twobend`] — two-bend candidate enumeration and evaluation,
//! * [`SequentialRouter`] — the reference single-processor router,
//! * [`engine`] — the shared execution core: the [`IterationDriver`]
//!   ledger every engine routes through, and the [`RoutingEngine`]
//!   trait that makes the paradigms interchangeable values,
//! * [`QualityMetrics`] — circuit height and occupancy factor (§3),
//! * [`RegionMap`] — division of the cost array into per-processor owned
//!   regions (§4.1, Figure 2),
//! * [`assign`] — wire-assignment strategies: round-robin and the
//!   locality/`ThresholdCost` hybrid (§4.2),
//! * [`locality`] — the §5.3.3 locality measure, and
//! * [`render`] — ASCII renderings of Figures 1 and 2.

pub mod assign;
pub mod cost_array;
pub mod engine;
pub mod locality;
pub mod params;
pub mod quality;
pub mod region;
pub mod render;
pub mod route;
pub mod router;
pub mod segment;
pub mod twobend;
pub mod work;

pub use assign::{assign, Assignment, AssignmentStrategy};
pub use cost_array::{CostArray, CostView, PrefixStats};
pub use engine::{
    EngineCtx, EngineRun, IterationDriver, ObsEmitter, RoutingEngine, SequentialEngine, Stamp,
    WireFeed,
};
pub use locality::LocalityMeasure;
pub use params::RouterParams;
pub use quality::QualityMetrics;
pub use region::{mesh_dims, ProcId, RegionMap};
pub use route::{Route, Segment};
pub use router::{EvalScratch, RouteOutcome, SequentialRouter};
pub use work::WorkStats;
