//! Solution-quality measures (paper §3).
//!
//! * **Circuit height**: for each channel, the number of routing tracks it
//!   requires is the maximum number of wires running through it at any
//!   point; circuit height is the sum over channels. Proportional to
//!   circuit area — lower is better.
//! * **Occupancy factor**: the sum, over all wires, of the chosen path's
//!   cost at the moment the wire was routed. Captures how congested the
//!   chosen paths looked when they were picked — lower is better.

use crate::cost_array::CostArray;

/// The two quality measures reported throughout the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct QualityMetrics {
    /// Total routing tracks over all channels (lower = smaller circuit).
    pub circuit_height: u64,
    /// Sum of path costs at routing time over the final iteration.
    pub occupancy_factor: u64,
}

impl QualityMetrics {
    /// Builds metrics from the final cost array and the accumulated
    /// occupancy of the last routing iteration.
    pub fn from_final_state(cost: &CostArray, occupancy_factor: u64) -> Self {
        QualityMetrics { circuit_height: cost.circuit_height(), occupancy_factor }
    }

    /// Relative circuit-height degradation versus `baseline` in percent
    /// (positive = worse than baseline).
    pub fn height_degradation_pct(&self, baseline: &QualityMetrics) -> f64 {
        if baseline.circuit_height == 0 {
            return 0.0;
        }
        (self.circuit_height as f64 - baseline.circuit_height as f64)
            / baseline.circuit_height as f64
            * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::GridCell;

    #[test]
    fn from_final_state_reads_height() {
        let mut a = CostArray::new(3, 8);
        a.set(GridCell::new(0, 2), 4);
        a.set(GridCell::new(2, 7), 2);
        let q = QualityMetrics::from_final_state(&a, 123);
        assert_eq!(q.circuit_height, 6);
        assert_eq!(q.occupancy_factor, 123);
    }

    #[test]
    fn degradation_percentage() {
        let base = QualityMetrics { circuit_height: 100, occupancy_factor: 0 };
        let worse = QualityMetrics { circuit_height: 108, occupancy_factor: 0 };
        assert!((worse.height_degradation_pct(&base) - 8.0).abs() < 1e-12);
        let better = QualityMetrics { circuit_height: 95, occupancy_factor: 0 };
        assert!((better.height_degradation_pct(&base) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_degradation_is_zero() {
        let zero = QualityMetrics::default();
        let q = QualityMetrics { circuit_height: 10, occupancy_factor: 0 };
        assert_eq!(q.height_degradation_pct(&zero), 0.0);
    }
}
