//! The circuit-locality measure of §5.3.3.
//!
//! "The locality measure is a weighted average indicating the average
//! distance (in horizontal or vertical hops) between the processor
//! actually routing a wire segment, and the processor that owns the
//! region that segment lies in. [...] a locality measure of 0 indicates
//! that all segments were routed by the region owner, giving perfect
//! locality."
//!
//! We weight by route cells, which is segment length: a 40-cell segment
//! routed 2 hops from home contributes 80 hop·cells.

use crate::region::{ProcId, RegionMap};
use crate::route::Route;

/// The computed locality of one routed solution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LocalityMeasure {
    /// Mean hops between routing processor and owning processor, weighted
    /// by cells. 0 = perfect locality.
    pub mean_hops: f64,
    /// Total route cells measured (the weight denominator).
    pub total_cells: u64,
    /// Fraction of cells routed by their owner (distance 0).
    pub owned_fraction: f64,
}

/// Computes the locality measure for a routed solution.
///
/// `routes[w]` is the final route of wire `w` and `proc_of_wire[w]` the
/// processor that routed it (from [`crate::Assignment`]).
pub fn locality_measure(
    routes: &[Route],
    proc_of_wire: &[ProcId],
    regions: &RegionMap,
) -> LocalityMeasure {
    assert_eq!(routes.len(), proc_of_wire.len(), "one route and one processor per wire");
    let mut total_cells = 0u64;
    let mut total_hops = 0u64;
    let mut owned_cells = 0u64;
    for (route, &p) in routes.iter().zip(proc_of_wire) {
        for &cell in route.cells() {
            let owner = regions.owner_of(cell);
            let d = regions.mesh_distance(p, owner) as u64;
            total_cells += 1;
            total_hops += d;
            if d == 0 {
                owned_cells += 1;
            }
        }
    }
    LocalityMeasure {
        mean_hops: if total_cells == 0 { 0.0 } else { total_hops as f64 / total_cells as f64 },
        total_cells,
        owned_fraction: if total_cells == 0 {
            1.0
        } else {
            owned_cells as f64 / total_cells as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::{assign, AssignmentStrategy};
    use crate::params::RouterParams;
    use crate::route::Segment;
    use crate::router::SequentialRouter;
    use locus_circuit::presets;

    #[test]
    fn all_local_routes_measure_zero() {
        let m = RegionMap::new(10, 340, 4); // 2x2 mesh
                                            // A route fully inside processor 0's region, routed by 0.
        let region = m.region(0);
        let route = Route::from_segments(vec![Segment::horizontal(
            region.c_lo,
            region.x_lo,
            region.x_lo + 3,
        )]);
        let lm = locality_measure(&[route], &[0], &m);
        assert_eq!(lm.mean_hops, 0.0);
        assert_eq!(lm.owned_fraction, 1.0);
    }

    #[test]
    fn remote_route_measures_distance() {
        let m = RegionMap::new(10, 340, 4); // 2x2 mesh: procs 0,1 / 2,3
                                            // A route fully inside processor 3's region, routed by 0 (2 hops).
        let r3 = m.region(3);
        let route = Route::from_segments(vec![Segment::horizontal(r3.c_lo, r3.x_lo, r3.x_lo + 4)]);
        let lm = locality_measure(&[route], &[0], &m);
        assert_eq!(lm.mean_hops, 2.0);
        assert_eq!(lm.owned_fraction, 0.0);
        assert_eq!(lm.total_cells, 5);
    }

    #[test]
    fn local_assignment_beats_round_robin() {
        let c = presets::bnr_e();
        let m = RegionMap::new(c.channels, c.grids, 16);
        let out = SequentialRouter::new(&c, RouterParams::default()).run();

        let local = assign(&c, &m, AssignmentStrategy::Locality { threshold_cost: None });
        let rr = assign(&c, &m, AssignmentStrategy::RoundRobin);
        let lm_local = locality_measure(&out.routes, &local.proc_of_wire, &m);
        let lm_rr = locality_measure(&out.routes, &rr.proc_of_wire, &m);
        assert!(
            lm_local.mean_hops < lm_rr.mean_hops,
            "local {:.3} should beat round robin {:.3}",
            lm_local.mean_hops,
            lm_rr.mean_hops
        );
    }

    #[test]
    fn locality_degrades_with_more_processors() {
        // §5.3.3: "As the number of processors is increased, the locality
        // of the circuit will be degraded."
        let c = presets::bnr_e();
        let out = SequentialRouter::new(&c, RouterParams::default()).run();
        let mut prev = 0.0;
        for p in [4usize, 16] {
            let m = RegionMap::new(c.channels, c.grids, p);
            let a = assign(&c, &m, AssignmentStrategy::Locality { threshold_cost: None });
            let lm = locality_measure(&out.routes, &a.proc_of_wire, &m);
            assert!(
                lm.mean_hops >= prev,
                "locality should degrade with P: {prev:.3} -> {:.3}",
                lm.mean_hops
            );
            prev = lm.mean_hops;
        }
    }

    #[test]
    fn empty_input_is_perfect() {
        let m = RegionMap::new(10, 340, 4);
        let lm = locality_measure(&[], &[], &m);
        assert_eq!(lm.mean_hops, 0.0);
        assert_eq!(lm.owned_fraction, 1.0);
    }
}
