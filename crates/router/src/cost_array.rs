//! The cost array: LocusRoute's central data structure.
//!
//! "LocusRoute's central data structure is a cost array that keeps a record
//! of the number of wires running through each routing grid of the circuit.
//! The vertical dimension of the array is the number of routing channels
//! [...] and the horizontal dimension is the number of routing grids"
//! (paper §3, Figure 1).
//!
//! Candidate evaluation costs routes by *span queries* — sums along a row
//! or column interval — rather than cell by cell. [`CostArray`] answers
//! them in O(1) from lazily maintained per-row and per-column prefix-sum
//! caches (invalidated by a dirty bit per row/column on every write);
//! instrumented views keep the per-cell default implementations so their
//! reference traces stay byte-identical to a cell-by-cell evaluator.

use std::cell::RefCell;
use std::fmt;

use locus_circuit::{GridCell, Rect};

use crate::route::Route;

/// Read access to cost-array state.
///
/// Route evaluation is generic over this trait so the same two-bend
/// evaluator serves three masters:
///
/// * the sequential router (reads the one true array),
/// * the shared-memory emulator (reads through an instrumented view that
///   records a Tango-style reference trace), and
/// * the message-passing nodes (read their possibly stale local replica).
pub trait CostView {
    /// Number of channels (rows).
    fn channels(&self) -> u16;
    /// Number of grid columns.
    fn grids(&self) -> u16;
    /// Current cost at `cell`.
    fn cost_at(&self, cell: GridCell) -> u32;

    /// Sum of costs along a route (each covered cell counted once).
    fn route_cost(&self, route: &Route) -> u64 {
        route.cells().iter().map(|&c| self.cost_at(c) as u64).sum()
    }

    /// Sum of costs over `(channel, x)` for `x` in `x_lo..=x_hi`.
    ///
    /// The default reads the cells one by one in ascending `x` order, so
    /// views that instrument [`Self::cost_at`] (trace collection, logical
    /// clocks) observe exactly the reference sequence a cell-by-cell
    /// evaluator would produce. [`CostArray`] overrides this with an O(1)
    /// prefix-sum lookup.
    fn horizontal_cost(&self, channel: u16, x_lo: u16, x_hi: u16) -> u64 {
        (x_lo..=x_hi).map(|x| self.cost_at(GridCell::new(channel, x)) as u64).sum()
    }

    /// Sum of costs over `(c, x)` for `c` in `c_lo..=c_hi`.
    ///
    /// Default reads cells in ascending channel order (see
    /// [`Self::horizontal_cost`] for why); [`CostArray`] answers in O(1).
    fn vertical_cost(&self, x: u16, c_lo: u16, c_hi: u16) -> u64 {
        (c_lo..=c_hi).map(|c| self.cost_at(GridCell::new(c, x)) as u64).sum()
    }

    /// Whether span queries are O(1) arithmetic with no per-read side
    /// effects. Enables the incremental HVH jog sweep in
    /// [`crate::twobend::best_route`], which replaces repeated span
    /// queries with O(1) running updates. Instrumented views must keep
    /// the default `false` so their per-cell read streams stay exact.
    fn fast_spans(&self) -> bool {
        false
    }
}

/// Running totals of prefix-cache activity (monotonic over the array's
/// lifetime), surfaced as kernel counters through `locus-obs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Span queries answered from an already-valid row/column cache line.
    pub hits: u64,
    /// Row/column prefix rebuilds (a query found the line dirty).
    pub rebuilds: u64,
    /// Valid→dirty transitions caused by writes.
    pub invalidations: u64,
}

/// Lazily maintained prefix sums: per-row and per-column, with one dirty
/// bit each. A row line also carries the row maximum so
/// [`CostArray::channel_tracks`] is O(1) on a clean row.
struct PrefixCache {
    /// Row-major `channels × (grids + 1)` prefix sums; entry `x` of row
    /// `c` is the sum of cells `(c, 0..x)`.
    rows: Vec<u64>,
    /// Column-major `grids × (channels + 1)` prefix sums.
    cols: Vec<u64>,
    /// Maximum value of each row (the channel's track requirement).
    row_max: Vec<u16>,
    row_valid: Vec<bool>,
    col_valid: Vec<bool>,
    stats: PrefixStats,
}

impl PrefixCache {
    fn new(channels: u16, grids: u16) -> Self {
        let (ch, g) = (channels as usize, grids as usize);
        PrefixCache {
            rows: vec![0; ch * (g + 1)],
            cols: vec![0; g * (ch + 1)],
            row_max: vec![0; ch],
            row_valid: vec![false; ch],
            col_valid: vec![false; g],
            stats: PrefixStats::default(),
        }
    }

    /// Rebuilds row `c` if dirty; returns its prefix line.
    fn row(&mut self, c: usize, cells: &[u16], grids: usize) -> &[u64] {
        let base = c * (grids + 1);
        if !self.row_valid[c] {
            self.stats.rebuilds += 1;
            let src = &cells[c * grids..(c + 1) * grids];
            let mut acc = 0u64;
            let mut max = 0u16;
            for (x, &v) in src.iter().enumerate() {
                acc += v as u64;
                self.rows[base + x + 1] = acc;
                max = max.max(v);
            }
            self.row_max[c] = max;
            self.row_valid[c] = true;
        } else {
            self.stats.hits += 1;
        }
        &self.rows[base..base + grids + 1]
    }

    /// Rebuilds column `x` if dirty; returns its prefix line.
    fn col(&mut self, x: usize, cells: &[u16], channels: usize, grids: usize) -> &[u64] {
        let base = x * (channels + 1);
        if !self.col_valid[x] {
            self.stats.rebuilds += 1;
            let mut acc = 0u64;
            for c in 0..channels {
                acc += cells[c * grids + x] as u64;
                self.cols[base + c + 1] = acc;
            }
            self.col_valid[x] = true;
        } else {
            self.stats.hits += 1;
        }
        &self.cols[base..base + channels + 1]
    }
}

/// A dense `channels × grids` array of wire-occupancy counts.
///
/// Values are `u16`: even a pathological routing never stacks anywhere
/// near 65 535 wires on one grid cell for circuits of this class; the
/// debug-mode arithmetic checks would catch overflow regardless.
///
/// Equality and cloning consider only the cell values; the prefix caches
/// are an implementation detail (a clone starts with cold caches).
pub struct CostArray {
    channels: u16,
    grids: u16,
    cells: Vec<u16>,
    cache: RefCell<PrefixCache>,
}

impl Clone for CostArray {
    fn clone(&self) -> Self {
        CostArray {
            channels: self.channels,
            grids: self.grids,
            cells: self.cells.clone(),
            cache: RefCell::new(PrefixCache::new(self.channels, self.grids)),
        }
    }
}

impl PartialEq for CostArray {
    fn eq(&self, other: &Self) -> bool {
        self.channels == other.channels && self.grids == other.grids && self.cells == other.cells
    }
}

impl Eq for CostArray {}

impl fmt::Debug for CostArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CostArray")
            .field("channels", &self.channels)
            .field("grids", &self.grids)
            .field("cells", &self.cells)
            .finish()
    }
}

impl CostArray {
    /// Creates a zeroed array for a `channels × grids` surface.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(channels: u16, grids: u16) -> Self {
        assert!(channels > 0 && grids > 0, "cost array dimensions must be nonzero");
        CostArray {
            channels,
            grids,
            cells: vec![0; channels as usize * grids as usize],
            cache: RefCell::new(PrefixCache::new(channels, grids)),
        }
    }

    /// Flat index of `cell`, row(channel)-major.
    #[inline]
    fn index(&self, cell: GridCell) -> usize {
        debug_assert!(cell.channel < self.channels && cell.x < self.grids, "{cell} out of range");
        cell.channel as usize * self.grids as usize + cell.x as usize
    }

    /// Marks the caches covering `cell` dirty (cheap: two flag stores).
    #[inline]
    fn invalidate(&mut self, cell: GridCell) {
        let cache = self.cache.get_mut();
        let c = cell.channel as usize;
        let x = cell.x as usize;
        if cache.row_valid[c] {
            cache.row_valid[c] = false;
            cache.stats.invalidations += 1;
        }
        if cache.col_valid[x] {
            cache.col_valid[x] = false;
            cache.stats.invalidations += 1;
        }
    }

    /// Current value at `cell`.
    #[inline]
    pub fn get(&self, cell: GridCell) -> u16 {
        self.cells[self.index(cell)]
    }

    /// Sets `cell` to `value` (used when installing update packets).
    #[inline]
    pub fn set(&mut self, cell: GridCell, value: u16) {
        let i = self.index(cell);
        if self.cells[i] != value {
            self.cells[i] = value;
            self.invalidate(cell);
        }
    }

    /// Adds a (possibly negative) delta to `cell`, saturating at zero.
    ///
    /// Saturation mirrors the paper's tolerance of stale data in the
    /// message-passing version: a replica can receive a decrement for a
    /// route increment it never saw. The owner's authoritative copy never
    /// saturates in a correct execution (asserted in debug builds).
    #[inline]
    pub fn add(&mut self, cell: GridCell, delta: i32) {
        let i = self.index(cell);
        let old = self.cells[i];
        let v = (old as i32 + delta).max(0) as u16;
        if v != old {
            self.cells[i] = v;
            self.invalidate(cell);
        }
    }

    /// Increments every cell of `route` by one (the wire is *routed*).
    pub fn add_route(&mut self, route: &Route) {
        for &cell in route.cells() {
            self.add(cell, 1);
        }
    }

    /// Decrements every cell of `route` by one (the wire is *ripped up*).
    pub fn remove_route(&mut self, route: &Route) {
        for &cell in route.cells() {
            self.add(cell, -1);
        }
    }

    /// Maximum value in channel row `c` — the number of routing tracks
    /// the channel requires (§3). O(1) when the row cache is clean: the
    /// row maximum is maintained alongside the prefix sums.
    pub fn channel_tracks(&self, c: u16) -> u16 {
        let mut cache = self.cache.borrow_mut();
        cache.row(c as usize, &self.cells, self.grids as usize);
        cache.row_max[c as usize]
    }

    /// Sum over channels of [`Self::channel_tracks`] — the **circuit
    /// height** quality measure (§3).
    pub fn circuit_height(&self) -> u64 {
        (0..self.channels).map(|c| self.channel_tracks(c) as u64).sum()
    }

    /// Sum of every cell (used by conservation tests: equals the total
    /// routed cell coverage).
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|&v| v as u64).sum()
    }

    /// Whether every cell is zero.
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(|&v| v == 0)
    }

    /// Prefix-cache activity counters (kernel observability).
    pub fn prefix_stats(&self) -> PrefixStats {
        self.cache.borrow().stats
    }

    /// Copies the values inside `rect` into a fresh vector, row-major
    /// within the rectangle (the payload of a `SendLocData` update).
    pub fn extract(&self, rect: Rect) -> Vec<u16> {
        let mut out = Vec::with_capacity(rect.area() as usize);
        for cell in rect.cells() {
            out.push(self.get(cell));
        }
        out
    }

    /// Overwrites the values inside `rect` from `values` (installing a
    /// `SendLocData`/`ReqRmtData`-response payload).
    ///
    /// # Panics
    /// Panics if `values.len() != rect.area()`.
    pub fn install(&mut self, rect: Rect, values: &[u16]) {
        assert_eq!(values.len() as u64, rect.area(), "payload size mismatch for {rect}");
        for (cell, &v) in rect.cells().zip(values) {
            self.set(cell, v);
        }
    }

    /// Applies signed deltas to the values inside `rect` (installing a
    /// `SendRmtData` payload).
    ///
    /// # Panics
    /// Panics if `deltas.len() != rect.area()`.
    pub fn apply_deltas(&mut self, rect: Rect, deltas: &[i16]) {
        assert_eq!(deltas.len() as u64, rect.area(), "payload size mismatch for {rect}");
        for (cell, &d) in rect.cells().zip(deltas) {
            self.add(cell, d as i32);
        }
    }
}

impl CostView for CostArray {
    fn channels(&self) -> u16 {
        self.channels
    }
    fn grids(&self) -> u16 {
        self.grids
    }
    #[inline]
    fn cost_at(&self, cell: GridCell) -> u32 {
        self.get(cell) as u32
    }
    #[inline]
    fn horizontal_cost(&self, channel: u16, x_lo: u16, x_hi: u16) -> u64 {
        debug_assert!(x_lo <= x_hi && x_hi < self.grids);
        let mut cache = self.cache.borrow_mut();
        let row = cache.row(channel as usize, &self.cells, self.grids as usize);
        row[x_hi as usize + 1] - row[x_lo as usize]
    }
    #[inline]
    fn vertical_cost(&self, x: u16, c_lo: u16, c_hi: u16) -> u64 {
        debug_assert!(c_lo <= c_hi && c_hi < self.channels);
        let mut cache = self.cache.borrow_mut();
        let col = cache.col(x as usize, &self.cells, self.channels as usize, self.grids as usize);
        col[c_hi as usize + 1] - col[c_lo as usize]
    }
    fn fast_spans(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Route, Segment};

    fn cell(c: u16, x: u16) -> GridCell {
        GridCell::new(c, x)
    }

    #[test]
    fn new_array_is_zero() {
        let a = CostArray::new(4, 10);
        assert!(a.is_zero());
        assert_eq!(a.circuit_height(), 0);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn add_and_remove_route_are_inverses() {
        let mut a = CostArray::new(4, 10);
        let r = Route::from_segments(vec![
            Segment::horizontal(1, 2, 6),
            Segment::vertical(6, 1, 3),
            Segment::horizontal(3, 6, 8),
        ]);
        a.add_route(&r);
        assert_eq!(a.total(), r.cells().len() as u64);
        assert_eq!(a.get(cell(1, 2)), 1);
        assert_eq!(a.get(cell(2, 6)), 1);
        a.remove_route(&r);
        assert!(a.is_zero());
    }

    #[test]
    fn corner_cells_counted_once() {
        let mut a = CostArray::new(4, 10);
        let r =
            Route::from_segments(vec![Segment::horizontal(1, 2, 6), Segment::vertical(6, 1, 3)]);
        a.add_route(&r);
        // (1,6) is covered by both segments but must be incremented once.
        assert_eq!(a.get(cell(1, 6)), 1);
    }

    #[test]
    fn channel_tracks_and_height() {
        let mut a = CostArray::new(3, 8);
        a.set(cell(0, 1), 2);
        a.set(cell(0, 5), 7);
        a.set(cell(2, 0), 3);
        assert_eq!(a.channel_tracks(0), 7);
        assert_eq!(a.channel_tracks(1), 0);
        assert_eq!(a.channel_tracks(2), 3);
        assert_eq!(a.circuit_height(), 10);
    }

    #[test]
    fn channel_tracks_agrees_with_naive_scan() {
        // The cached row maximum must match a fresh full-row scan through
        // arbitrary interleavings of writes and queries.
        let mut a = CostArray::new(3, 16);
        for step in 0u16..60 {
            let c = step % 3;
            let x = (step * 7) % 16;
            a.set(cell(c, x), (step * 5) % 9);
            let _ = a.channel_tracks((step + 1) % 3); // interleave queries
            for row in 0..3u16 {
                let naive = (0..16).map(|x| a.get(cell(row, x))).max().unwrap();
                assert_eq!(a.channel_tracks(row), naive, "row {row} after step {step}");
            }
            let naive_height: u64 =
                (0..3).map(|r| (0..16).map(|x| a.get(cell(r, x))).max().unwrap() as u64).sum();
            assert_eq!(a.circuit_height(), naive_height);
        }
    }

    #[test]
    fn add_saturates_at_zero() {
        let mut a = CostArray::new(2, 2);
        a.add(cell(0, 0), -5);
        assert_eq!(a.get(cell(0, 0)), 0);
        a.add(cell(0, 0), 3);
        a.add(cell(0, 0), -1);
        assert_eq!(a.get(cell(0, 0)), 2);
    }

    #[test]
    fn extract_install_roundtrip() {
        let mut a = CostArray::new(4, 10);
        a.set(cell(1, 2), 5);
        a.set(cell(2, 3), 9);
        let rect = Rect::new(1, 2, 2, 3);
        let vals = a.extract(rect);
        assert_eq!(vals, vec![5, 0, 0, 9]);
        let mut b = CostArray::new(4, 10);
        b.install(rect, &vals);
        assert_eq!(b.get(cell(1, 2)), 5);
        assert_eq!(b.get(cell(2, 3)), 9);
        assert_eq!(b.get(cell(1, 3)), 0);
    }

    #[test]
    fn apply_deltas_adds_signed_values() {
        let mut a = CostArray::new(2, 4);
        a.set(cell(0, 0), 3);
        let rect = Rect::new(0, 0, 0, 1);
        a.apply_deltas(rect, &[-2, 4]);
        assert_eq!(a.get(cell(0, 0)), 1);
        assert_eq!(a.get(cell(0, 1)), 4);
    }

    #[test]
    fn route_cost_via_view() {
        let mut a = CostArray::new(4, 10);
        a.set(cell(1, 2), 3);
        a.set(cell(1, 3), 4);
        let r = Route::from_segments(vec![Segment::horizontal(1, 2, 3)]);
        assert_eq!(a.route_cost(&r), 7);
    }

    #[test]
    fn span_queries_match_per_cell_sums() {
        let mut a = CostArray::new(5, 12);
        for c in 0..5u16 {
            for x in 0..12u16 {
                a.set(cell(c, x), (c * 31 + x * 7) % 13);
            }
        }
        for c in 0..5u16 {
            for lo in 0..12u16 {
                for hi in lo..12u16 {
                    let naive: u64 = (lo..=hi).map(|x| a.get(cell(c, x)) as u64).sum();
                    assert_eq!(a.horizontal_cost(c, lo, hi), naive);
                }
            }
        }
        for x in 0..12u16 {
            for lo in 0..5u16 {
                for hi in lo..5u16 {
                    let naive: u64 = (lo..=hi).map(|c| a.get(cell(c, x)) as u64).sum();
                    assert_eq!(a.vertical_cost(x, lo, hi), naive);
                }
            }
        }
    }

    #[test]
    fn writes_invalidate_spans() {
        let mut a = CostArray::new(3, 8);
        a.set(cell(1, 4), 5);
        assert_eq!(a.horizontal_cost(1, 0, 7), 5);
        assert_eq!(a.vertical_cost(4, 0, 2), 5);
        a.add(cell(1, 4), 2);
        assert_eq!(a.horizontal_cost(1, 0, 7), 7);
        assert_eq!(a.vertical_cost(4, 0, 2), 7);
        a.set(cell(1, 4), 0);
        assert_eq!(a.horizontal_cost(1, 0, 7), 0);
        assert_eq!(a.channel_tracks(1), 0);
    }

    #[test]
    fn prefix_stats_track_hits_and_rebuilds() {
        let mut a = CostArray::new(3, 8);
        assert_eq!(a.prefix_stats(), PrefixStats::default());
        let _ = a.horizontal_cost(0, 0, 7); // cold: rebuild
        let _ = a.horizontal_cost(0, 2, 5); // warm: hit
        let s = a.prefix_stats();
        assert_eq!(s.rebuilds, 1);
        assert_eq!(s.hits, 1);
        a.set(cell(0, 3), 9); // invalidates row 0 and column 3
        let s = a.prefix_stats();
        assert_eq!(s.invalidations, 1, "only the valid row line transitions");
        let _ = a.horizontal_cost(0, 0, 7);
        assert_eq!(a.prefix_stats().rebuilds, 2);
    }

    #[test]
    fn clone_and_equality_ignore_cache_state() {
        let mut a = CostArray::new(3, 8);
        a.set(cell(1, 1), 4);
        let _ = a.horizontal_cost(1, 0, 7); // warm a's cache
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.horizontal_cost(1, 0, 7), 4, "cold clone answers correctly");
        let mut c = CostArray::new(3, 8);
        c.set(cell(1, 1), 4);
        assert_eq!(a, c);
        c.set(cell(1, 1), 5);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn install_rejects_wrong_size() {
        let mut a = CostArray::new(4, 10);
        a.install(Rect::new(0, 1, 0, 1), &[1, 2, 3]);
    }
}
