//! The cost array: LocusRoute's central data structure.
//!
//! "LocusRoute's central data structure is a cost array that keeps a record
//! of the number of wires running through each routing grid of the circuit.
//! The vertical dimension of the array is the number of routing channels
//! [...] and the horizontal dimension is the number of routing grids"
//! (paper §3, Figure 1).

use locus_circuit::{GridCell, Rect};

use crate::route::Route;

/// Read access to cost-array state.
///
/// Route evaluation is generic over this trait so the same two-bend
/// evaluator serves three masters:
///
/// * the sequential router (reads the one true array),
/// * the shared-memory emulator (reads through an instrumented view that
///   records a Tango-style reference trace), and
/// * the message-passing nodes (read their possibly stale local replica).
pub trait CostView {
    /// Number of channels (rows).
    fn channels(&self) -> u16;
    /// Number of grid columns.
    fn grids(&self) -> u16;
    /// Current cost at `cell`.
    fn cost_at(&self, cell: GridCell) -> u32;

    /// Sum of costs along a route (each covered cell counted once).
    fn route_cost(&self, route: &Route) -> u64 {
        route.cells().iter().map(|&c| self.cost_at(c) as u64).sum()
    }
}

/// A dense `channels × grids` array of wire-occupancy counts.
///
/// Values are `u16`: even a pathological routing never stacks anywhere
/// near 65 535 wires on one grid cell for circuits of this class; the
/// debug-mode arithmetic checks would catch overflow regardless.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CostArray {
    channels: u16,
    grids: u16,
    cells: Vec<u16>,
}

impl CostArray {
    /// Creates a zeroed array for a `channels × grids` surface.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(channels: u16, grids: u16) -> Self {
        assert!(channels > 0 && grids > 0, "cost array dimensions must be nonzero");
        CostArray { channels, grids, cells: vec![0; channels as usize * grids as usize] }
    }

    /// Flat index of `cell`, row(channel)-major.
    #[inline]
    fn index(&self, cell: GridCell) -> usize {
        debug_assert!(cell.channel < self.channels && cell.x < self.grids, "{cell} out of range");
        cell.channel as usize * self.grids as usize + cell.x as usize
    }

    /// Current value at `cell`.
    #[inline]
    pub fn get(&self, cell: GridCell) -> u16 {
        self.cells[self.index(cell)]
    }

    /// Sets `cell` to `value` (used when installing update packets).
    #[inline]
    pub fn set(&mut self, cell: GridCell, value: u16) {
        let i = self.index(cell);
        self.cells[i] = value;
    }

    /// Adds a (possibly negative) delta to `cell`, saturating at zero.
    ///
    /// Saturation mirrors the paper's tolerance of stale data in the
    /// message-passing version: a replica can receive a decrement for a
    /// route increment it never saw. The owner's authoritative copy never
    /// saturates in a correct execution (asserted in debug builds).
    #[inline]
    pub fn add(&mut self, cell: GridCell, delta: i32) {
        let i = self.index(cell);
        let v = self.cells[i] as i32 + delta;
        self.cells[i] = v.max(0) as u16;
    }

    /// Increments every cell of `route` by one (the wire is *routed*).
    pub fn add_route(&mut self, route: &Route) {
        for &cell in route.cells() {
            self.add(cell, 1);
        }
    }

    /// Decrements every cell of `route` by one (the wire is *ripped up*).
    pub fn remove_route(&mut self, route: &Route) {
        for &cell in route.cells() {
            self.add(cell, -1);
        }
    }

    /// Maximum value in channel row `c` — the number of routing tracks
    /// the channel requires (§3).
    pub fn channel_tracks(&self, c: u16) -> u16 {
        let base = c as usize * self.grids as usize;
        self.cells[base..base + self.grids as usize].iter().copied().max().unwrap_or(0)
    }

    /// Sum over channels of [`Self::channel_tracks`] — the **circuit
    /// height** quality measure (§3).
    pub fn circuit_height(&self) -> u64 {
        (0..self.channels).map(|c| self.channel_tracks(c) as u64).sum()
    }

    /// Sum of every cell (used by conservation tests: equals the total
    /// routed cell coverage).
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|&v| v as u64).sum()
    }

    /// Whether every cell is zero.
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(|&v| v == 0)
    }

    /// Copies the values inside `rect` into a fresh vector, row-major
    /// within the rectangle (the payload of a `SendLocData` update).
    pub fn extract(&self, rect: Rect) -> Vec<u16> {
        let mut out = Vec::with_capacity(rect.area() as usize);
        for cell in rect.cells() {
            out.push(self.get(cell));
        }
        out
    }

    /// Overwrites the values inside `rect` from `values` (installing a
    /// `SendLocData`/`ReqRmtData`-response payload).
    ///
    /// # Panics
    /// Panics if `values.len() != rect.area()`.
    pub fn install(&mut self, rect: Rect, values: &[u16]) {
        assert_eq!(values.len() as u64, rect.area(), "payload size mismatch for {rect}");
        for (cell, &v) in rect.cells().zip(values) {
            self.set(cell, v);
        }
    }

    /// Applies signed deltas to the values inside `rect` (installing a
    /// `SendRmtData` payload).
    ///
    /// # Panics
    /// Panics if `deltas.len() != rect.area()`.
    pub fn apply_deltas(&mut self, rect: Rect, deltas: &[i16]) {
        assert_eq!(deltas.len() as u64, rect.area(), "payload size mismatch for {rect}");
        for (cell, &d) in rect.cells().zip(deltas) {
            self.add(cell, d as i32);
        }
    }
}

impl CostView for CostArray {
    fn channels(&self) -> u16 {
        self.channels
    }
    fn grids(&self) -> u16 {
        self.grids
    }
    #[inline]
    fn cost_at(&self, cell: GridCell) -> u32 {
        self.get(cell) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Route, Segment};

    fn cell(c: u16, x: u16) -> GridCell {
        GridCell::new(c, x)
    }

    #[test]
    fn new_array_is_zero() {
        let a = CostArray::new(4, 10);
        assert!(a.is_zero());
        assert_eq!(a.circuit_height(), 0);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn add_and_remove_route_are_inverses() {
        let mut a = CostArray::new(4, 10);
        let r = Route::from_segments(vec![
            Segment::horizontal(1, 2, 6),
            Segment::vertical(6, 1, 3),
            Segment::horizontal(3, 6, 8),
        ]);
        a.add_route(&r);
        assert_eq!(a.total(), r.cells().len() as u64);
        assert_eq!(a.get(cell(1, 2)), 1);
        assert_eq!(a.get(cell(2, 6)), 1);
        a.remove_route(&r);
        assert!(a.is_zero());
    }

    #[test]
    fn corner_cells_counted_once() {
        let mut a = CostArray::new(4, 10);
        let r =
            Route::from_segments(vec![Segment::horizontal(1, 2, 6), Segment::vertical(6, 1, 3)]);
        a.add_route(&r);
        // (1,6) is covered by both segments but must be incremented once.
        assert_eq!(a.get(cell(1, 6)), 1);
    }

    #[test]
    fn channel_tracks_and_height() {
        let mut a = CostArray::new(3, 8);
        a.set(cell(0, 1), 2);
        a.set(cell(0, 5), 7);
        a.set(cell(2, 0), 3);
        assert_eq!(a.channel_tracks(0), 7);
        assert_eq!(a.channel_tracks(1), 0);
        assert_eq!(a.channel_tracks(2), 3);
        assert_eq!(a.circuit_height(), 10);
    }

    #[test]
    fn add_saturates_at_zero() {
        let mut a = CostArray::new(2, 2);
        a.add(cell(0, 0), -5);
        assert_eq!(a.get(cell(0, 0)), 0);
        a.add(cell(0, 0), 3);
        a.add(cell(0, 0), -1);
        assert_eq!(a.get(cell(0, 0)), 2);
    }

    #[test]
    fn extract_install_roundtrip() {
        let mut a = CostArray::new(4, 10);
        a.set(cell(1, 2), 5);
        a.set(cell(2, 3), 9);
        let rect = Rect::new(1, 2, 2, 3);
        let vals = a.extract(rect);
        assert_eq!(vals, vec![5, 0, 0, 9]);
        let mut b = CostArray::new(4, 10);
        b.install(rect, &vals);
        assert_eq!(b.get(cell(1, 2)), 5);
        assert_eq!(b.get(cell(2, 3)), 9);
        assert_eq!(b.get(cell(1, 3)), 0);
    }

    #[test]
    fn apply_deltas_adds_signed_values() {
        let mut a = CostArray::new(2, 4);
        a.set(cell(0, 0), 3);
        let rect = Rect::new(0, 0, 0, 1);
        a.apply_deltas(rect, &[-2, 4]);
        assert_eq!(a.get(cell(0, 0)), 1);
        assert_eq!(a.get(cell(0, 1)), 4);
    }

    #[test]
    fn route_cost_via_view() {
        let mut a = CostArray::new(4, 10);
        a.set(cell(1, 2), 3);
        a.set(cell(1, 3), 4);
        let r = Route::from_segments(vec![Segment::horizontal(1, 2, 3)]);
        assert_eq!(a.route_cost(&r), 7);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn install_rejects_wrong_size() {
        let mut a = CostArray::new(4, 10);
        a.install(Rect::new(0, 1, 0, 1), &[1, 2, 3]);
    }
}
