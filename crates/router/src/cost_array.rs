//! The cost array: LocusRoute's central data structure.
//!
//! "LocusRoute's central data structure is a cost array that keeps a record
//! of the number of wires running through each routing grid of the circuit.
//! The vertical dimension of the array is the number of routing channels
//! [...] and the horizontal dimension is the number of routing grids"
//! (paper §3, Figure 1).
//!
//! Candidate evaluation costs routes by *span queries* — sums along a row
//! or column interval — rather than cell by cell. [`CostArray`] answers
//! them in O(1) from incrementally maintained per-row and per-column
//! prefix-sum caches. Writes no longer throw whole lines away: each line
//! carries a *watermark* (the number of cells whose prefix entries are
//! still correct) and a write at position `x` merely clamps the watermark
//! to `x` in O(1). The next query patches the stale suffix in a single
//! vectorizable pass from the watermark to the end of the line (O(W − x)
//! adds), so a burst of writes between queries is coalesced into one
//! patch. A full rebuild happens only the first time a line is ever
//! materialized. Row maxima are maintained separately and incrementally,
//! with validity bit-packed into u64 words so [`CostArray::circuit_height`]
//! reduces over whole words; only a decrease of the current maximum forces
//! a row rescan (counted as a fallback). Instrumented views keep the
//! per-cell default implementations so their reference traces stay
//! byte-identical to a cell-by-cell evaluator.

use std::cell::RefCell;
use std::fmt;

use locus_circuit::{GridCell, Rect};

use crate::route::Route;

/// Read access to cost-array state.
///
/// Route evaluation is generic over this trait so the same two-bend
/// evaluator serves three masters:
///
/// * the sequential router (reads the one true array),
/// * the shared-memory emulator (reads through an instrumented view that
///   records a Tango-style reference trace), and
/// * the message-passing nodes (read their possibly stale local replica).
pub trait CostView {
    /// Number of channels (rows).
    fn channels(&self) -> u16;
    /// Number of grid columns.
    fn grids(&self) -> u16;
    /// Current cost at `cell`.
    fn cost_at(&self, cell: GridCell) -> u32;

    /// Sum of costs along a route (each covered cell counted once).
    fn route_cost(&self, route: &Route) -> u64 {
        route.cells().iter().map(|&c| self.cost_at(c) as u64).sum()
    }

    /// Sum of costs over `(channel, x)` for `x` in `x_lo..=x_hi`.
    ///
    /// The default reads the cells one by one in ascending `x` order, so
    /// views that instrument [`Self::cost_at`] (trace collection, logical
    /// clocks) observe exactly the reference sequence a cell-by-cell
    /// evaluator would produce. [`CostArray`] overrides this with an O(1)
    /// prefix-sum lookup.
    fn horizontal_cost(&self, channel: u16, x_lo: u16, x_hi: u16) -> u64 {
        (x_lo..=x_hi).map(|x| self.cost_at(GridCell::new(channel, x)) as u64).sum()
    }

    /// Sum of costs over `(c, x)` for `c` in `c_lo..=c_hi`.
    ///
    /// Default reads cells in ascending channel order (see
    /// [`Self::horizontal_cost`] for why); [`CostArray`] answers in O(1).
    fn vertical_cost(&self, x: u16, c_lo: u16, c_hi: u16) -> u64 {
        (c_lo..=c_hi).map(|c| self.cost_at(GridCell::new(c, x)) as u64).sum()
    }

    /// Whether span queries are O(1) arithmetic with no per-read side
    /// effects. Enables the incremental HVH jog sweep in
    /// [`crate::twobend::best_route`], which replaces repeated span
    /// queries with O(1) running updates. Instrumented views must keep
    /// the default `false` so their per-cell read streams stay exact.
    fn fast_spans(&self) -> bool {
        false
    }
}

/// Running totals of prefix-cache activity (monotonic over the array's
/// lifetime), surfaced as kernel counters through `locus-obs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Span queries answered from a fully valid row/column cache line.
    pub hits: u64,
    /// Cold full builds: the line had never been materialized.
    pub rebuilds: u64,
    /// Incremental suffix patches: the line was valid up to a watermark
    /// and only the suffix beyond it was recomputed.
    pub patches: u64,
    /// Watermark clamps caused by writes (a write landed below a line's
    /// valid watermark, shrinking it).
    pub invalidations: u64,
    /// Row-maximum rescans: a write lowered the cell that held the row
    /// maximum, forcing a full-row scan on the next `channel_tracks`.
    pub fallbacks: u64,
}

/// Watermark sentinel: the line has never been materialized, so the next
/// query pays a full build (counted as a rebuild, not a patch).
const UNBUILT: u32 = u32::MAX;

/// Per-line incremental state: how far the prefix entries extend, plus
/// the coalesced record of writes since the last patch — their cell-index
/// range and their **net delta**. The next query recomputes only the
/// dirty range from the cells and shifts the already-materialized tail by
/// the constant delta (a pure vector add; free when the writes cancelled,
/// as a rip-up immediately followed by an identical commit does).
#[derive(Clone, Copy)]
struct LineState {
    /// Prefix entries `0..=valid` are materialized ([`UNBUILT`] if the
    /// line never was). Entries in `(dirty_lo, valid]` are stale until
    /// the next patch.
    valid: u32,
    /// Smallest cell index written since the last patch (`u32::MAX` when
    /// the line is clean).
    dirty_lo: u32,
    /// Largest cell index written since the last patch.
    dirty_hi: u32,
    /// Net sum of the writes' value changes in the dirty range.
    delta: i32,
}

impl LineState {
    fn unbuilt() -> Self {
        LineState { valid: UNBUILT, dirty_lo: u32::MAX, dirty_hi: 0, delta: 0 }
    }

    #[inline]
    fn is_dirty(&self) -> bool {
        self.dirty_lo != u32::MAX
    }

    #[inline]
    fn clean(valid: u32) -> Self {
        LineState { valid, dirty_lo: u32::MAX, dirty_hi: 0, delta: 0 }
    }
}

/// Incrementally maintained prefix sums: per-row and per-column, each
/// with a [`LineState`] tracking its materialized extent and pending
/// writes. Row maxima live beside the rows with validity bit-packed into
/// u64 words so height reductions run word-at-a-time.
struct PrefixCache {
    /// Row-major `channels × (grids + 1)` prefix sums; entry `x` of row
    /// `c` is the sum of cells `(c, 0..x)`.
    rows: Vec<u64>,
    /// Column-major `grids × (channels + 1)` prefix sums.
    cols: Vec<u64>,
    /// Per-row incremental state.
    row_state: Vec<LineState>,
    /// Per-column incremental state.
    col_state: Vec<LineState>,
    /// Maximum value of each row (the channel's track requirement).
    row_max: Vec<u16>,
    /// Bit-packed validity of `row_max`, one bit per channel, LSB-first
    /// within each u64 word; only bits below `channels` are meaningful.
    max_words: Vec<u64>,
    stats: PrefixStats,
}

impl PrefixCache {
    /// `zeroed` says whether the cells this cache will serve are all
    /// zero: a fresh array starts with every row maximum a *valid* 0,
    /// while a cache attached to existing cells (a clone) must leave the
    /// maxima invalid until first queried.
    fn new(channels: u16, grids: u16, zeroed: bool) -> Self {
        let (ch, g) = (channels as usize, grids as usize);
        PrefixCache {
            rows: vec![0; ch * (g + 1)],
            cols: vec![0; g * (ch + 1)],
            row_state: vec![LineState::unbuilt(); ch],
            col_state: vec![LineState::unbuilt(); g],
            row_max: vec![0; ch],
            max_words: vec![if zeroed { !0u64 } else { 0 }; ch.div_ceil(64)],
            stats: PrefixStats::default(),
        }
    }

    /// Patches one prefix line in place so entries `0..=need` are valid.
    /// `line` is the `len + 1` prefix entries, `cell(i)` the current
    /// value of cell `i`. Three bounded passes, each skipped when empty:
    /// recompute the dirty range, shift the materialized tail by the net
    /// delta, extend past the old watermark up to `need`.
    #[inline]
    fn patch_line(line: &mut [u64], s: LineState, need: usize, cell: impl Fn(usize) -> u64) -> u32 {
        let mut valid = s.valid as usize;
        if s.is_dirty() {
            let (lo, hi) = (s.dirty_lo as usize, s.dirty_hi as usize);
            let mut acc = line[lo];
            for i in lo..=hi {
                acc += cell(i);
                line[i + 1] = acc;
            }
            if s.delta != 0 {
                for e in &mut line[hi + 2..=valid] {
                    *e = e.wrapping_add_signed(s.delta as i64);
                }
            }
        }
        if need > valid {
            let mut acc = line[valid];
            for i in valid..need {
                acc += cell(i);
                line[i + 1] = acc;
            }
            valid = need;
        }
        valid as u32
    }

    /// Ensures row `c`'s prefix line is valid through entry `need`
    /// (exclusive cell index, i.e. the highest prefix entry the caller
    /// will read): a hit if the pending writes all land past `need`,
    /// otherwise a bounded patch via [`Self::patch_line`] — a full build
    /// only if the line was never materialized. Returns the full line;
    /// entries past the watermark are stale.
    fn row(&mut self, c: usize, cells: &[u16], grids: usize, need: usize) -> &[u64] {
        let base = c * (grids + 1);
        let s = self.row_state[c];
        if s.valid != UNBUILT && need as u32 <= s.valid && need as u32 <= s.dirty_lo {
            self.stats.hits += 1;
        } else if s.valid == UNBUILT {
            self.stats.rebuilds += 1;
            let mut acc = 0u64;
            for (i, &v) in cells[c * grids..c * grids + need].iter().enumerate() {
                acc += v as u64;
                self.rows[base + i + 1] = acc;
            }
            self.row_state[c] = LineState::clean(need as u32);
        } else {
            self.stats.patches += 1;
            let row_cells = &cells[c * grids..(c + 1) * grids];
            let valid = Self::patch_line(&mut self.rows[base..base + grids + 1], s, need, |i| {
                row_cells[i] as u64
            });
            self.row_state[c] = LineState::clean(valid);
        }
        &self.rows[base..base + grids + 1]
    }

    /// Column twin of [`Self::row`].
    fn col(
        &mut self,
        x: usize,
        cells: &[u16],
        channels: usize,
        grids: usize,
        need: usize,
    ) -> &[u64] {
        let base = x * (channels + 1);
        let s = self.col_state[x];
        if s.valid != UNBUILT && need as u32 <= s.valid && need as u32 <= s.dirty_lo {
            self.stats.hits += 1;
        } else if s.valid == UNBUILT {
            self.stats.rebuilds += 1;
            let mut acc = 0u64;
            for (c, e) in self.cols[base + 1..base + need + 1].iter_mut().enumerate() {
                acc += cells[c * grids + x] as u64;
                *e = acc;
            }
            self.col_state[x] = LineState::clean(need as u32);
        } else {
            self.stats.patches += 1;
            let valid = Self::patch_line(&mut self.cols[base..base + channels + 1], s, need, |c| {
                cells[c * grids + x] as u64
            });
            self.col_state[x] = LineState::clean(valid);
        }
        &self.cols[base..base + channels + 1]
    }

    /// O(1) write notification for row `c`: a write of net `delta` at
    /// position `x` joins the line's pending dirty range. Writes landing
    /// past the materialized extent need no record at all.
    #[inline]
    fn note_row_write(&mut self, c: usize, x: usize, delta: i32) {
        let s = &mut self.row_state[c];
        if s.valid == UNBUILT || x as u32 >= s.valid {
            return;
        }
        if !s.is_dirty() {
            self.stats.invalidations += 1;
        }
        s.dirty_lo = s.dirty_lo.min(x as u32);
        s.dirty_hi = s.dirty_hi.max(x as u32);
        s.delta += delta;
    }

    /// [`Self::note_row_write`] for a whole contiguous run `[lo, hi]` in
    /// row `c` with net delta `delta` — one state update per run instead
    /// of one per cell.
    #[inline]
    fn note_row_write_range(&mut self, c: usize, lo: usize, hi: usize, delta: i32) {
        let s = &mut self.row_state[c];
        if s.valid == UNBUILT || lo as u32 >= s.valid {
            return;
        }
        if !s.is_dirty() {
            self.stats.invalidations += 1;
        }
        s.dirty_lo = s.dirty_lo.min(lo as u32);
        s.dirty_hi = s.dirty_hi.max((hi as u32).min(s.valid - 1));
        s.delta += delta;
    }

    /// Column twin of [`Self::note_row_write`].
    #[inline]
    fn note_col_write(&mut self, x: usize, c: usize, delta: i32) {
        let s = &mut self.col_state[x];
        if s.valid == UNBUILT || c as u32 >= s.valid {
            return;
        }
        if !s.is_dirty() {
            self.stats.invalidations += 1;
        }
        s.dirty_lo = s.dirty_lo.min(c as u32);
        s.dirty_hi = s.dirty_hi.max(c as u32);
        s.delta += delta;
    }

    /// Batch row-maximum maintenance for a run whose old values peaked at
    /// `old_max` and now peak at `new_max` — same lazy policy as
    /// [`Self::note_max`], applied once per run.
    #[inline]
    fn note_max_run(&mut self, c: usize, old_max: u16, new_max: u16) {
        let (w, b) = (c / 64, c % 64);
        if self.max_words[w] & (1u64 << b) == 0 {
            return;
        }
        let m = self.row_max[c];
        if new_max >= m {
            self.row_max[c] = new_max;
        } else if old_max == m {
            self.max_words[w] &= !(1u64 << b);
        }
    }

    /// Incremental row-maximum maintenance for a write `old → new` in
    /// row `c`. Increases update the maximum in place; only lowering the
    /// cell that *held* the maximum forces a lazy rescan.
    #[inline]
    fn note_max(&mut self, c: usize, old: u16, new: u16) {
        let (w, b) = (c / 64, c % 64);
        if self.max_words[w] & (1u64 << b) == 0 {
            return; // already pending a rescan
        }
        let m = self.row_max[c];
        if new >= m {
            self.row_max[c] = new;
        } else if old == m {
            // The maximum may have moved; find out lazily.
            self.max_words[w] &= !(1u64 << b);
        }
        // old < m && new < m: the maximum is elsewhere and unchanged.
    }

    /// Returns row `c`'s maximum, rescanning the row if a write lowered
    /// the previous maximum (counted as a fallback).
    fn ensure_max(&mut self, c: usize, cells: &[u16], grids: usize) -> u16 {
        let (w, b) = (c / 64, c % 64);
        if self.max_words[w] & (1u64 << b) == 0 {
            self.stats.fallbacks += 1;
            let mut m = 0u16;
            for &v in &cells[c * grids..(c + 1) * grids] {
                m = m.max(v);
            }
            self.row_max[c] = m;
            self.max_words[w] |= 1u64 << b;
        }
        self.row_max[c]
    }
}

/// A dense `channels × grids` array of wire-occupancy counts.
///
/// Values are `u16`: even a pathological routing never stacks anywhere
/// near 65 535 wires on one grid cell for circuits of this class; the
/// debug-mode arithmetic checks would catch overflow regardless.
///
/// Equality and cloning consider only the cell values; the prefix caches
/// are an implementation detail (a clone starts with cold caches).
pub struct CostArray {
    channels: u16,
    grids: u16,
    cells: Vec<u16>,
    cache: RefCell<PrefixCache>,
}

impl Clone for CostArray {
    fn clone(&self) -> Self {
        CostArray {
            channels: self.channels,
            grids: self.grids,
            cells: self.cells.clone(),
            cache: RefCell::new(PrefixCache::new(self.channels, self.grids, false)),
        }
    }
}

impl PartialEq for CostArray {
    fn eq(&self, other: &Self) -> bool {
        self.channels == other.channels && self.grids == other.grids && self.cells == other.cells
    }
}

impl Eq for CostArray {}

impl fmt::Debug for CostArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CostArray")
            .field("channels", &self.channels)
            .field("grids", &self.grids)
            .field("cells", &self.cells)
            .finish()
    }
}

impl CostArray {
    /// Creates a zeroed array for a `channels × grids` surface.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(channels: u16, grids: u16) -> Self {
        assert!(channels > 0 && grids > 0, "cost array dimensions must be nonzero");
        CostArray {
            channels,
            grids,
            cells: vec![0; channels as usize * grids as usize],
            cache: RefCell::new(PrefixCache::new(channels, grids, true)),
        }
    }

    /// Flat index of `cell`, row(channel)-major.
    #[inline]
    fn index(&self, cell: GridCell) -> usize {
        debug_assert!(cell.channel < self.channels && cell.x < self.grids, "{cell} out of range");
        cell.channel as usize * self.grids as usize + cell.x as usize
    }

    /// Bookkeeping for a write `old → new` at `cell`: joins the two
    /// affected prefix lines' dirty ranges and updates the row maximum —
    /// all O(1).
    #[inline]
    fn touch(&mut self, cell: GridCell, old: u16, new: u16) {
        let cache = self.cache.get_mut();
        let c = cell.channel as usize;
        let x = cell.x as usize;
        let delta = new as i32 - old as i32;
        cache.note_row_write(c, x, delta);
        cache.note_col_write(x, c, delta);
        cache.note_max(c, old, new);
    }

    /// Current value at `cell`.
    #[inline]
    pub fn get(&self, cell: GridCell) -> u16 {
        self.cells[self.index(cell)]
    }

    /// Sets `cell` to `value` (used when installing update packets).
    #[inline]
    pub fn set(&mut self, cell: GridCell, value: u16) {
        let i = self.index(cell);
        let old = self.cells[i];
        if old != value {
            self.cells[i] = value;
            self.touch(cell, old, value);
        }
    }

    /// Adds a (possibly negative) delta to `cell`, saturating at zero.
    ///
    /// Saturation mirrors the paper's tolerance of stale data in the
    /// message-passing version: a replica can receive a decrement for a
    /// route increment it never saw. The owner's authoritative copy never
    /// saturates in a correct execution (asserted in debug builds).
    #[inline]
    pub fn add(&mut self, cell: GridCell, delta: i32) {
        let i = self.index(cell);
        let old = self.cells[i];
        let v = (old as i32 + delta).max(0) as u16;
        if v != old {
            self.cells[i] = v;
            self.touch(cell, old, v);
        }
    }

    /// Adds `delta` to every cell in `cells` — the allocation-free twin
    /// of [`Self::add_route`]/[`Self::remove_route`] for callers that
    /// hold a deduplicated cell list instead of a [`Route`].
    ///
    /// Contiguous same-channel runs (the common case: route cell lists
    /// are sorted row-major, so every horizontal segment is one run) are
    /// applied in batch: one row dirty-range update and one row-maximum
    /// update per run instead of one per cell.
    pub fn apply_cells(&mut self, cells: &[GridCell], delta: i32) {
        let mut i = 0;
        while i < cells.len() {
            let c = cells[i].channel;
            let x1 = cells[i].x;
            let mut j = i + 1;
            while j < cells.len() && cells[j].channel == c && cells[j].x == cells[j - 1].x + 1 {
                j += 1;
            }
            self.apply_run(c, x1, cells[j - 1].x, delta);
            i = j;
        }
    }

    /// Adds `delta` (saturating at zero per cell) to the contiguous run
    /// `[x1, x2]` of row `c`, with batched cache bookkeeping.
    ///
    /// A min/max pre-pass decides between two loops: when no cell would
    /// saturate (the invariant case — owners only remove routes they
    /// added), every cell changes by exactly `delta`, so the value update
    /// is a uniform branch-free sweep the compiler vectorizes and the
    /// bookkeeping needs no per-cell change detection. Saturating runs
    /// (stale-replica decrements) fall back to the exact scalar path.
    fn apply_run(&mut self, c: u16, x1: u16, x2: u16, delta: i32) {
        if delta == 0 {
            return;
        }
        let ci = c as usize;
        let g = self.grids as usize;
        let (lo, hi) = (ci * g + x1 as usize, ci * g + x2 as usize + 1);
        let mut old_min = u16::MAX;
        let mut old_max = 0u16;
        for &v in &self.cells[lo..hi] {
            old_min = old_min.min(v);
            old_max = old_max.max(v);
        }
        let cache = self.cache.get_mut();
        if old_min as i32 + delta >= 0 {
            for v in &mut self.cells[lo..hi] {
                *v = (*v as i32 + delta) as u16;
            }
            // Column notes over the run, iterated as a slice: no per-cell
            // bounds check, and the invalidation tally lands once.
            let cu = ci as u32;
            let mut invalidated = 0u64;
            for s in &mut cache.col_state[x1 as usize..=x2 as usize] {
                if s.valid == UNBUILT || cu >= s.valid {
                    continue;
                }
                if !s.is_dirty() {
                    invalidated += 1;
                }
                s.dirty_lo = s.dirty_lo.min(cu);
                s.dirty_hi = s.dirty_hi.max(cu);
                s.delta += delta;
            }
            cache.stats.invalidations += invalidated;
            // Prefix entries only see changes below the row's materialized
            // extent, so the tail-shift delta counts only those cells.
            let rv = cache.row_state[ci].valid as usize;
            let below = (x2 as usize + 1).min(rv) - (x1 as usize).min(rv);
            cache.note_row_write_range(ci, x1 as usize, x2 as usize, delta * below as i32);
            cache.note_max_run(ci, old_max, (old_max as i32 + delta) as u16);
            return;
        }
        let row_valid = cache.row_state[ci].valid;
        let mut net_below = 0i32;
        let mut new_max = 0u16;
        let mut changed_lo = usize::MAX;
        let mut changed_hi = 0usize;
        for x in x1 as usize..=x2 as usize {
            let i = ci * g + x;
            let old = self.cells[i];
            let new = (old as i32 + delta).max(0) as u16;
            new_max = new_max.max(new);
            if new != old {
                self.cells[i] = new;
                if (x as u32) < row_valid {
                    net_below += new as i32 - old as i32;
                }
                if changed_lo == usize::MAX {
                    changed_lo = x;
                }
                changed_hi = x;
                cache.note_col_write(x, ci, new as i32 - old as i32);
            }
        }
        if changed_lo != usize::MAX {
            cache.note_row_write_range(ci, changed_lo, changed_hi, net_below);
            cache.note_max_run(ci, old_max, new_max);
        }
    }

    /// Increments every cell of `route` by one (the wire is *routed*).
    pub fn add_route(&mut self, route: &Route) {
        self.apply_cells(route.cells(), 1);
    }

    /// Decrements every cell of `route` by one (the wire is *ripped up*).
    pub fn remove_route(&mut self, route: &Route) {
        self.apply_cells(route.cells(), -1);
    }

    /// Maximum value in channel row `c` — the number of routing tracks
    /// the channel requires (§3). Maintained incrementally: O(1) unless a
    /// write lowered the previous maximum, which triggers one row rescan.
    pub fn channel_tracks(&self, c: u16) -> u16 {
        let mut cache = self.cache.borrow_mut();
        cache.ensure_max(c as usize, &self.cells, self.grids as usize)
    }

    /// Sum over channels of [`Self::channel_tracks`] — the **circuit
    /// height** quality measure (§3). Reduces over bit-packed validity
    /// words: a fully valid word of 64 channels sums without any
    /// per-channel branching.
    pub fn circuit_height(&self) -> u64 {
        let mut cache = self.cache.borrow_mut();
        let ch = self.channels as usize;
        let g = self.grids as usize;
        let mut total = 0u64;
        for w in 0..cache.max_words.len() {
            let lo = w * 64;
            let hi = (lo + 64).min(ch);
            let mask = if hi - lo == 64 { !0u64 } else { (1u64 << (hi - lo)) - 1 };
            if cache.max_words[w] & mask == mask {
                total += cache.row_max[lo..hi].iter().map(|&m| m as u64).sum::<u64>();
            } else {
                for c in lo..hi {
                    total += cache.ensure_max(c, &self.cells, g) as u64;
                }
            }
        }
        total
    }

    /// Sum of every cell (used by conservation tests: equals the total
    /// routed cell coverage).
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|&v| v as u64).sum()
    }

    /// Whether every cell is zero.
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(|&v| v == 0)
    }

    /// Prefix-cache activity counters (kernel observability).
    pub fn prefix_stats(&self) -> PrefixStats {
        self.cache.borrow().stats
    }

    /// Checks every cached prefix entry the next query would trust — the
    /// materialized extent of each clean line, or everything up to the
    /// dirty range of a pending one — and every valid row maximum,
    /// against a fresh recomputation from the cells. Test hook for the
    /// incremental-patch invariants; returns the first divergence found.
    #[doc(hidden)]
    pub fn validate_prefix_caches(&self) -> Result<(), String> {
        let cache = self.cache.borrow();
        let (ch, g) = (self.channels as usize, self.grids as usize);
        for c in 0..ch {
            let state = cache.row_state[c];
            if state.valid == UNBUILT {
                continue;
            }
            let base = c * (g + 1);
            if cache.rows[base] != 0 {
                return Err(format!("row {c} prefix entry 0 is {} not 0", cache.rows[base]));
            }
            let valid = (state.valid.min(state.dirty_lo) as usize).min(g);
            let mut acc = 0u64;
            for x in 0..valid {
                acc += self.cells[c * g + x] as u64;
                if cache.rows[base + x + 1] != acc {
                    return Err(format!(
                        "row {c} prefix entry {} is {} expected {acc} (watermark {valid})",
                        x + 1,
                        cache.rows[base + x + 1],
                    ));
                }
            }
        }
        for x in 0..g {
            let state = cache.col_state[x];
            if state.valid == UNBUILT {
                continue;
            }
            let base = x * (ch + 1);
            if cache.cols[base] != 0 {
                return Err(format!("col {x} prefix entry 0 is {} not 0", cache.cols[base]));
            }
            let valid = (state.valid.min(state.dirty_lo) as usize).min(ch);
            let mut acc = 0u64;
            for c in 0..valid {
                acc += self.cells[c * g + x] as u64;
                if cache.cols[base + c + 1] != acc {
                    return Err(format!(
                        "col {x} prefix entry {} is {} expected {acc} (watermark {valid})",
                        c + 1,
                        cache.cols[base + c + 1],
                    ));
                }
            }
        }
        for c in 0..ch {
            if cache.max_words[c / 64] & (1u64 << (c % 64)) == 0 {
                continue;
            }
            let naive = self.cells[c * g..(c + 1) * g].iter().copied().max().unwrap_or(0);
            if cache.row_max[c] != naive {
                return Err(format!("row {c} cached max {} expected {naive}", cache.row_max[c]));
            }
        }
        Ok(())
    }

    /// Copies the values inside `rect` into a fresh vector, row-major
    /// within the rectangle (the payload of a `SendLocData` update).
    pub fn extract(&self, rect: Rect) -> Vec<u16> {
        let mut out = Vec::with_capacity(rect.area() as usize);
        for cell in rect.cells() {
            out.push(self.get(cell));
        }
        out
    }

    /// Overwrites the values inside `rect` from `values` (installing a
    /// `SendLocData`/`ReqRmtData`-response payload).
    ///
    /// # Panics
    /// Panics if `values.len() != rect.area()`.
    pub fn install(&mut self, rect: Rect, values: &[u16]) {
        assert_eq!(values.len() as u64, rect.area(), "payload size mismatch for {rect}");
        for (cell, &v) in rect.cells().zip(values) {
            self.set(cell, v);
        }
    }

    /// Applies signed deltas to the values inside `rect` (installing a
    /// `SendRmtData` payload).
    ///
    /// # Panics
    /// Panics if `deltas.len() != rect.area()`.
    pub fn apply_deltas(&mut self, rect: Rect, deltas: &[i16]) {
        assert_eq!(deltas.len() as u64, rect.area(), "payload size mismatch for {rect}");
        for (cell, &d) in rect.cells().zip(deltas) {
            self.add(cell, d as i32);
        }
    }
}

impl CostView for CostArray {
    fn channels(&self) -> u16 {
        self.channels
    }
    fn grids(&self) -> u16 {
        self.grids
    }
    #[inline]
    fn cost_at(&self, cell: GridCell) -> u32 {
        self.get(cell) as u32
    }
    #[inline]
    fn horizontal_cost(&self, channel: u16, x_lo: u16, x_hi: u16) -> u64 {
        debug_assert!(x_lo <= x_hi && x_hi < self.grids);
        let mut cache = self.cache.borrow_mut();
        let row = cache.row(channel as usize, &self.cells, self.grids as usize, x_hi as usize + 1);
        row[x_hi as usize + 1] - row[x_lo as usize]
    }
    #[inline]
    fn vertical_cost(&self, x: u16, c_lo: u16, c_hi: u16) -> u64 {
        debug_assert!(c_lo <= c_hi && c_hi < self.channels);
        let mut cache = self.cache.borrow_mut();
        let col = cache.col(
            x as usize,
            &self.cells,
            self.channels as usize,
            self.grids as usize,
            c_hi as usize + 1,
        );
        col[c_hi as usize + 1] - col[c_lo as usize]
    }
    fn fast_spans(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Route, Segment};

    fn cell(c: u16, x: u16) -> GridCell {
        GridCell::new(c, x)
    }

    #[test]
    fn new_array_is_zero() {
        let a = CostArray::new(4, 10);
        assert!(a.is_zero());
        assert_eq!(a.circuit_height(), 0);
        assert_eq!(a.total(), 0);
    }

    #[test]
    fn add_and_remove_route_are_inverses() {
        let mut a = CostArray::new(4, 10);
        let r = Route::from_segments(vec![
            Segment::horizontal(1, 2, 6),
            Segment::vertical(6, 1, 3),
            Segment::horizontal(3, 6, 8),
        ]);
        a.add_route(&r);
        assert_eq!(a.total(), r.cells().len() as u64);
        assert_eq!(a.get(cell(1, 2)), 1);
        assert_eq!(a.get(cell(2, 6)), 1);
        a.remove_route(&r);
        assert!(a.is_zero());
    }

    #[test]
    fn corner_cells_counted_once() {
        let mut a = CostArray::new(4, 10);
        let r =
            Route::from_segments(vec![Segment::horizontal(1, 2, 6), Segment::vertical(6, 1, 3)]);
        a.add_route(&r);
        // (1,6) is covered by both segments but must be incremented once.
        assert_eq!(a.get(cell(1, 6)), 1);
    }

    #[test]
    fn apply_cells_matches_route_application() {
        let mut a = CostArray::new(4, 10);
        let r =
            Route::from_segments(vec![Segment::horizontal(1, 2, 6), Segment::vertical(6, 1, 3)]);
        let mut b = CostArray::new(4, 10);
        a.add_route(&r);
        b.apply_cells(r.cells(), 1);
        assert_eq!(a, b);
        b.apply_cells(r.cells(), -1);
        assert!(b.is_zero());
    }

    #[test]
    fn channel_tracks_and_height() {
        let mut a = CostArray::new(3, 8);
        a.set(cell(0, 1), 2);
        a.set(cell(0, 5), 7);
        a.set(cell(2, 0), 3);
        assert_eq!(a.channel_tracks(0), 7);
        assert_eq!(a.channel_tracks(1), 0);
        assert_eq!(a.channel_tracks(2), 3);
        assert_eq!(a.circuit_height(), 10);
    }

    #[test]
    fn channel_tracks_agrees_with_naive_scan() {
        // The cached row maximum must match a fresh full-row scan through
        // arbitrary interleavings of writes and queries.
        let mut a = CostArray::new(3, 16);
        for step in 0u16..60 {
            let c = step % 3;
            let x = (step * 7) % 16;
            a.set(cell(c, x), (step * 5) % 9);
            let _ = a.channel_tracks((step + 1) % 3); // interleave queries
            for row in 0..3u16 {
                let naive = (0..16).map(|x| a.get(cell(row, x))).max().unwrap();
                assert_eq!(a.channel_tracks(row), naive, "row {row} after step {step}");
            }
            let naive_height: u64 =
                (0..3).map(|r| (0..16).map(|x| a.get(cell(r, x))).max().unwrap() as u64).sum();
            assert_eq!(a.circuit_height(), naive_height);
        }
    }

    #[test]
    fn height_reduces_over_wide_surfaces() {
        // More than one validity word: 130 channels spans three u64 words.
        let mut a = CostArray::new(130, 4);
        for c in (0..130u16).step_by(7) {
            a.set(cell(c, (c % 4) as u16), c + 1);
        }
        let naive: u64 =
            (0..130u16).map(|c| (0..4).map(|x| a.get(cell(c, x))).max().unwrap() as u64).sum();
        assert_eq!(a.circuit_height(), naive);
        // Lower a maximum and re-check (exercises the fallback path).
        a.set(cell(126, 2), 0);
        let naive: u64 =
            (0..130u16).map(|c| (0..4).map(|x| a.get(cell(c, x))).max().unwrap() as u64).sum();
        assert_eq!(a.circuit_height(), naive);
        assert!(a.prefix_stats().fallbacks >= 1);
    }

    #[test]
    fn add_saturates_at_zero() {
        let mut a = CostArray::new(2, 2);
        a.add(cell(0, 0), -5);
        assert_eq!(a.get(cell(0, 0)), 0);
        a.add(cell(0, 0), 3);
        a.add(cell(0, 0), -1);
        assert_eq!(a.get(cell(0, 0)), 2);
    }

    #[test]
    fn extract_install_roundtrip() {
        let mut a = CostArray::new(4, 10);
        a.set(cell(1, 2), 5);
        a.set(cell(2, 3), 9);
        let rect = Rect::new(1, 2, 2, 3);
        let vals = a.extract(rect);
        assert_eq!(vals, vec![5, 0, 0, 9]);
        let mut b = CostArray::new(4, 10);
        b.install(rect, &vals);
        assert_eq!(b.get(cell(1, 2)), 5);
        assert_eq!(b.get(cell(2, 3)), 9);
        assert_eq!(b.get(cell(1, 3)), 0);
    }

    #[test]
    fn apply_deltas_adds_signed_values() {
        let mut a = CostArray::new(2, 4);
        a.set(cell(0, 0), 3);
        let rect = Rect::new(0, 0, 0, 1);
        a.apply_deltas(rect, &[-2, 4]);
        assert_eq!(a.get(cell(0, 0)), 1);
        assert_eq!(a.get(cell(0, 1)), 4);
    }

    #[test]
    fn route_cost_via_view() {
        let mut a = CostArray::new(4, 10);
        a.set(cell(1, 2), 3);
        a.set(cell(1, 3), 4);
        let r = Route::from_segments(vec![Segment::horizontal(1, 2, 3)]);
        assert_eq!(a.route_cost(&r), 7);
    }

    #[test]
    fn span_queries_match_per_cell_sums() {
        let mut a = CostArray::new(5, 12);
        for c in 0..5u16 {
            for x in 0..12u16 {
                a.set(cell(c, x), (c * 31 + x * 7) % 13);
            }
        }
        for c in 0..5u16 {
            for lo in 0..12u16 {
                for hi in lo..12u16 {
                    let naive: u64 = (lo..=hi).map(|x| a.get(cell(c, x)) as u64).sum();
                    assert_eq!(a.horizontal_cost(c, lo, hi), naive);
                }
            }
        }
        for x in 0..12u16 {
            for lo in 0..5u16 {
                for hi in lo..5u16 {
                    let naive: u64 = (lo..=hi).map(|c| a.get(cell(c, x)) as u64).sum();
                    assert_eq!(a.vertical_cost(x, lo, hi), naive);
                }
            }
        }
        a.validate_prefix_caches().expect("caches consistent after query sweep");
    }

    #[test]
    fn writes_patch_spans() {
        let mut a = CostArray::new(3, 8);
        a.set(cell(1, 4), 5);
        assert_eq!(a.horizontal_cost(1, 0, 7), 5);
        assert_eq!(a.vertical_cost(4, 0, 2), 5);
        a.add(cell(1, 4), 2);
        assert_eq!(a.horizontal_cost(1, 0, 7), 7);
        assert_eq!(a.vertical_cost(4, 0, 2), 7);
        a.set(cell(1, 4), 0);
        assert_eq!(a.horizontal_cost(1, 0, 7), 0);
        assert_eq!(a.channel_tracks(1), 0);
        a.validate_prefix_caches().expect("caches consistent after patches");
    }

    #[test]
    fn prefix_stats_track_patch_policy() {
        let mut a = CostArray::new(3, 8);
        assert_eq!(a.prefix_stats(), PrefixStats::default());
        let _ = a.horizontal_cost(0, 0, 7); // cold: full build
        let _ = a.horizontal_cost(0, 2, 5); // warm: hit
        let s = a.prefix_stats();
        assert_eq!(s.rebuilds, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.patches, 0);
        a.set(cell(0, 3), 9); // clamps row 0's watermark; column 3 is unbuilt
        let s = a.prefix_stats();
        assert_eq!(s.invalidations, 1, "only the materialized row line clamps");
        let _ = a.horizontal_cost(0, 0, 7); // suffix patch, not a rebuild
        let s = a.prefix_stats();
        assert_eq!(s.rebuilds, 1, "a built line never fully rebuilds");
        assert_eq!(s.patches, 1);
        // A burst of writes to one row coalesces into a single patch.
        a.set(cell(0, 2), 1);
        a.set(cell(0, 6), 2);
        a.set(cell(0, 4), 3);
        let _ = a.horizontal_cost(0, 0, 7);
        assert_eq!(a.prefix_stats().patches, 2, "three writes, one patch");
        a.validate_prefix_caches().expect("caches consistent");
    }

    #[test]
    fn max_decrease_counts_one_fallback() {
        let mut a = CostArray::new(2, 8);
        a.set(cell(0, 3), 7);
        assert_eq!(a.channel_tracks(0), 7);
        assert_eq!(a.prefix_stats().fallbacks, 0, "increases maintain the max in place");
        a.set(cell(0, 3), 2); // lowered the max holder: next query rescans
        assert_eq!(a.channel_tracks(0), 2);
        assert_eq!(a.prefix_stats().fallbacks, 1);
        assert_eq!(a.channel_tracks(0), 2);
        assert_eq!(a.prefix_stats().fallbacks, 1, "rescans are one-shot");
    }

    #[test]
    fn clone_and_equality_ignore_cache_state() {
        let mut a = CostArray::new(3, 8);
        a.set(cell(1, 1), 4);
        let _ = a.horizontal_cost(1, 0, 7); // warm a's cache
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.horizontal_cost(1, 0, 7), 4, "cold clone answers correctly");
        assert_eq!(b.channel_tracks(1), 4, "cold clone recomputes row maxima");
        assert_eq!(b.circuit_height(), 4);
        let mut c = CostArray::new(3, 8);
        c.set(cell(1, 1), 4);
        assert_eq!(a, c);
        c.set(cell(1, 1), 5);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn install_rejects_wrong_size() {
        let mut a = CostArray::new(4, 10);
        a.install(Rect::new(0, 1, 0, 1), &[1, 2, 3]);
    }
}
