//! Property-based tests for the routing core.

use locus_circuit::{GridCell, Pin, Rect, Wire};
use locus_router::router::route_wire;
use locus_router::segment::Connection;
use locus_router::twobend::{best_route, best_route_reference};
use locus_router::{CostArray, CostView, RegionMap, Route, Segment};
use proptest::prelude::*;

const CHANNELS: u16 = 6;
const GRIDS: u16 = 32;

fn arb_pin() -> impl Strategy<Value = Pin> {
    (0u16..CHANNELS, 0u16..GRIDS).prop_map(|(c, x)| Pin::new(c, x))
}

fn arb_cost_array() -> impl Strategy<Value = CostArray> {
    proptest::collection::vec(0u16..8, (CHANNELS as usize) * (GRIDS as usize)).prop_map(|v| {
        let mut a = CostArray::new(CHANNELS, GRIDS);
        let mut i = 0;
        for c in 0..CHANNELS {
            for x in 0..GRIDS {
                a.set(GridCell::new(c, x), v[i]);
                i += 1;
            }
        }
        a
    })
}

fn arb_route() -> impl Strategy<Value = Route> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..CHANNELS, 0u16..GRIDS, 0u16..GRIDS)
                .prop_map(|(c, a, b)| Segment::horizontal(c, a, b)),
            (0u16..GRIDS, 0u16..CHANNELS, 0u16..CHANNELS)
                .prop_map(|(x, a, b)| Segment::vertical(x, a, b)),
        ],
        1..5,
    )
    .prop_map(Route::from_segments)
}

proptest! {
    #[test]
    fn best_route_connects_the_pins(a in arb_pin(), b in arb_pin(), costs in arb_cost_array()) {
        let eval = best_route(&costs, Connection { from: a, to: b }, 1);
        let cells = eval.route.cells();
        prop_assert!(cells.binary_search(&a.cell()).is_ok(), "route misses pin {a:?}");
        prop_assert!(cells.binary_search(&b.cell()).is_ok(), "route misses pin {b:?}");
    }

    #[test]
    fn best_route_cost_matches_cells(a in arb_pin(), b in arb_pin(), costs in arb_cost_array()) {
        let eval = best_route(&costs, Connection { from: a, to: b }, 0);
        let recomputed: u64 =
            eval.route.cells().iter().map(|&c| costs.cost_at(c) as u64).sum();
        prop_assert_eq!(eval.cost, recomputed);
    }

    #[test]
    fn best_route_stays_within_overshoot_bounds(
        a in arb_pin(),
        b in arb_pin(),
        overshoot in 0u16..3,
    ) {
        let costs = CostArray::new(CHANNELS, GRIDS);
        let eval = best_route(&costs, Connection { from: a, to: b }, overshoot);
        let bbox = eval.route.bounding_box();
        let c_lo = a.channel.min(b.channel).saturating_sub(overshoot);
        let c_hi = (a.channel.max(b.channel) + overshoot).min(CHANNELS - 1);
        prop_assert!(bbox.c_lo >= c_lo && bbox.c_hi <= c_hi, "route escaped channel window");
        prop_assert!(bbox.x_lo >= a.x.min(b.x) && bbox.x_hi <= a.x.max(b.x));
    }

    #[test]
    fn best_route_is_no_worse_than_l_routes(
        a in arb_pin(),
        b in arb_pin(),
        costs in arb_cost_array(),
    ) {
        // The two L-shaped routes are always in the candidate set, so the
        // winner can never cost more than either.
        let eval = best_route(&costs, Connection { from: a, to: b }, 0);
        if a.channel != b.channel && a.x != b.x {
            let l1 = Route::from_segments(vec![
                Segment::horizontal(a.channel, a.x, b.x),
                Segment::vertical(b.x, a.channel, b.channel),
            ]);
            let l2 = Route::from_segments(vec![
                Segment::vertical(a.x, a.channel, b.channel),
                Segment::horizontal(b.channel, a.x, b.x),
            ]);
            prop_assert!(eval.cost <= costs.route_cost(&l1));
            prop_assert!(eval.cost <= costs.route_cost(&l2));
        }
    }

    #[test]
    fn add_remove_route_restores_array(base in arb_cost_array(), route in arb_route()) {
        let mut a = base.clone();
        a.add_route(&route);
        for &cell in route.cells() {
            prop_assert_eq!(a.get(cell), base.get(cell) + 1);
        }
        a.remove_route(&route);
        prop_assert_eq!(a, base);
    }

    #[test]
    fn route_cells_are_sorted_and_unique(route in arb_route()) {
        let cells = route.cells();
        prop_assert!(cells.windows(2).all(|w| w[0] < w[1]));
        // Every segment cell appears in the deduplicated cover.
        for s in route.segments() {
            for cell in s.cells() {
                prop_assert!(cells.binary_search(&cell).is_ok());
            }
        }
    }

    #[test]
    fn route_wire_covers_every_pin(
        pins in proptest::collection::vec(arb_pin(), 2..6),
        costs in arb_cost_array(),
    ) {
        let wire = Wire::new(0, pins.clone());
        let eval = route_wire(&costs, &wire, 1);
        for pin in &pins {
            prop_assert!(
                eval.route.cells().binary_search(&pin.cell()).is_ok(),
                "pin {pin:?} not covered"
            );
        }
    }

    #[test]
    fn optimized_evaluator_matches_reference(
        a in arb_pin(),
        b in arb_pin(),
        costs in arb_cost_array(),
        overshoot in 0u16..4,
    ) {
        // The span-arithmetic kernel must be bit-for-bit equivalent to the
        // retained cell-list evaluator: same route, cost, candidate count,
        // and cells-examined work measure. Checked both through the
        // prefix-sum fast path and the per-cell default path.
        struct PerCell<'a>(&'a CostArray);
        impl CostView for PerCell<'_> {
            fn channels(&self) -> u16 { CostView::channels(self.0) }
            fn grids(&self) -> u16 { CostView::grids(self.0) }
            fn cost_at(&self, cell: GridCell) -> u32 { self.0.cost_at(cell) }
        }
        let conn = Connection { from: a, to: b };
        let reference = best_route_reference(&costs, conn, overshoot);
        let fast = best_route(&costs, conn, overshoot);
        let slow = best_route(&PerCell(&costs), conn, overshoot);
        for eval in [fast, slow] {
            prop_assert_eq!(&eval.route, &reference.route);
            prop_assert_eq!(eval.cost, reference.cost);
            prop_assert_eq!(eval.candidates, reference.candidates);
            prop_assert_eq!(eval.cells_examined, reference.cells_examined);
        }
    }

    #[test]
    fn prefix_caches_survive_interleaved_mutation(
        base in arb_cost_array(),
        ops in proptest::collection::vec(
            prop_oneof![
                // set
                (0u16..CHANNELS, 0u16..GRIDS, 0u16..12)
                    .prop_map(|(c, x, v)| (0u8, c, x, v as i32)),
                // add (possibly saturating)
                (0u16..CHANNELS, 0u16..GRIDS, -4i32..8)
                    .prop_map(|(c, x, d)| (1u8, c, x, d)),
                // install a rect of a constant value
                (0u16..CHANNELS, 0u16..CHANNELS, 0u16..GRIDS, 0u16..GRIDS, 0u16..6)
                    .prop_map(|(c1, c2, x1, x2, v)| (2u8, c1.min(c2), x1.min(x2), v as i32)),
                // apply_deltas over a rect
                (0u16..CHANNELS, 0u16..GRIDS, -2i32..4)
                    .prop_map(|(c, x, d)| (3u8, c, x, d)),
                // add_route / remove_route
                (0u16..CHANNELS, 0u16..GRIDS, 0u16..GRIDS)
                    .prop_map(|(c, x1, x2)| (4u8, c, x1.min(x2), x2.max(x1) as i32)),
            ],
            1..40,
        ),
    ) {
        // Ground truth is the array's own `get` (which never touches the
        // caches); span/track queries are interleaved with every flavour
        // of mutation so caches are warm whenever a write invalidates.
        let mut cached = base.clone();
        let mut route_stack: Vec<Route> = Vec::new();
        for (i, &(op, c, x, v)) in ops.iter().enumerate() {
            match op {
                0 => cached.set(GridCell::new(c, x), v as u16),
                1 => cached.add(GridCell::new(c, x), v),
                2 => {
                    let rect = Rect::new(c, (c + 2).min(CHANNELS - 1), x, (x + 3).min(GRIDS - 1));
                    let vals = vec![v as u16; rect.area() as usize];
                    cached.install(rect, &vals);
                }
                3 => {
                    let rect = Rect::new(c, (c + 1).min(CHANNELS - 1), x, (x + 2).min(GRIDS - 1));
                    let deltas = vec![v as i16; rect.area() as usize];
                    cached.apply_deltas(rect, &deltas);
                }
                _ => {
                    let route = Route::from_segments(vec![
                        Segment::horizontal(c, x, v as u16),
                    ]);
                    if i % 2 == 0 {
                        cached.add_route(&route);
                        route_stack.push(route);
                    } else if let Some(prev) = route_stack.pop() {
                        cached.remove_route(&prev);
                    }
                }
            }
            // Interleave queries so caches are warm when the next
            // mutation invalidates them.
            let naive_h: u64 = (0..GRIDS).map(|xx| cached.get(GridCell::new(c, xx)) as u64).sum();
            prop_assert_eq!(cached.horizontal_cost(c, 0, GRIDS - 1), naive_h);
            let naive_v: u64 = (0..CHANNELS).map(|cc| cached.get(GridCell::new(cc, x)) as u64).sum();
            prop_assert_eq!(cached.vertical_cost(x, 0, CHANNELS - 1), naive_v);
            let naive_max = (0..GRIDS).map(|xx| cached.get(GridCell::new(c, xx))).max().unwrap();
            prop_assert_eq!(cached.channel_tracks(c), naive_max);
            // Patched prefix lines must be byte-identical to a fresh
            // rebuild — `validate_prefix_caches` recomputes every valid
            // prefix entry and row maximum from the cells and compares.
            if let Err(e) = cached.validate_prefix_caches() {
                prop_assert!(false, "cache divergence after op {}: {}", i, e);
            }
        }
        // Final state: every span agrees with a fresh per-cell scan.
        for c in 0..CHANNELS {
            let naive: u64 = (0..GRIDS).map(|x| cached.get(GridCell::new(c, x)) as u64).sum();
            prop_assert_eq!(cached.horizontal_cost(c, 0, GRIDS - 1), naive);
        }
        for x in 0..GRIDS {
            let naive: u64 = (0..CHANNELS).map(|c| cached.get(GridCell::new(c, x)) as u64).sum();
            prop_assert_eq!(cached.vertical_cost(x, 0, CHANNELS - 1), naive);
        }
        let naive_height: u64 = (0..CHANNELS)
            .map(|c| (0..GRIDS).map(|x| cached.get(GridCell::new(c, x))).max().unwrap() as u64)
            .sum();
        prop_assert_eq!(cached.circuit_height(), naive_height);
        if let Err(e) = cached.validate_prefix_caches() {
            prop_assert!(false, "final cache divergence: {}", e);
        }
    }

    #[test]
    fn region_map_partitions_exactly(
        channels in 4u16..16,
        grids in 8u16..64,
        procs in 1usize..8,
    ) {
        prop_assume!(channels as usize >= procs && grids as usize >= procs);
        let m = RegionMap::new(channels, grids, procs);
        let mut covered = 0u64;
        for p in 0..m.n_procs() {
            covered += m.region(p).area();
            // The region's cells all map back to p.
            let r = m.region(p);
            prop_assert_eq!(m.owner_of(GridCell::new(r.c_lo, r.x_lo)), p);
            prop_assert_eq!(m.owner_of(GridCell::new(r.c_hi, r.x_hi)), p);
        }
        prop_assert_eq!(covered, channels as u64 * grids as u64);
    }

    #[test]
    fn mesh_distance_zero_iff_same_proc(
        procs in 2usize..10,
    ) {
        let m = RegionMap::new(16, 64, procs);
        for a in 0..m.n_procs() {
            for b in 0..m.n_procs() {
                let d = m.mesh_distance(a, b);
                prop_assert_eq!(d == 0, a == b);
                prop_assert_eq!(d, m.mesh_distance(b, a));
            }
        }
    }
}
