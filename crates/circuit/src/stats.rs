//! Aggregate circuit statistics used for calibration and reporting.

use crate::circuit::Circuit;

/// Summary statistics of a circuit's wire population.
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitStats {
    /// Number of wires.
    pub wires: usize,
    /// Total pins over all wires.
    pub pins: usize,
    /// Mean pins per wire.
    pub mean_pins: f64,
    /// Mean horizontal span in grid columns.
    pub mean_x_span: f64,
    /// Mean channel span.
    pub mean_channel_span: f64,
    /// Mean half-perimeter cost measure.
    pub mean_cost_measure: f64,
    /// Maximum horizontal span.
    pub max_x_span: u32,
    /// Histogram of horizontal spans in buckets of `span_bucket` columns.
    pub span_histogram: Vec<usize>,
    /// Width of each histogram bucket.
    pub span_bucket: u32,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.wire_count().max(1) as f64;
        let pins = circuit.pin_count();
        let spans: Vec<u32> = circuit.wires.iter().map(|w| w.x_span()).collect();
        let max_x_span = spans.iter().copied().max().unwrap_or(0);
        let span_bucket = (circuit.grids as u32 / 16).max(1);
        let mut span_histogram = vec![0usize; (max_x_span / span_bucket + 1) as usize];
        for &s in &spans {
            span_histogram[(s / span_bucket) as usize] += 1;
        }
        CircuitStats {
            wires: circuit.wire_count(),
            pins,
            mean_pins: pins as f64 / n,
            mean_x_span: spans.iter().map(|&s| s as f64).sum::<f64>() / n,
            mean_channel_span: circuit.wires.iter().map(|w| w.channel_span() as f64).sum::<f64>()
                / n,
            mean_cost_measure: circuit.wires.iter().map(|w| w.cost_measure() as f64).sum::<f64>()
                / n,
            max_x_span,
            span_histogram,
            span_bucket,
        }
    }

    /// Renders a short human-readable report.
    pub fn report(&self) -> String {
        format!(
            "wires={} pins={} mean_pins={:.2} mean_x_span={:.1} mean_channel_span={:.2} \
             mean_cost={:.1} max_x_span={}",
            self.wires,
            self.pins,
            self.mean_pins,
            self.mean_x_span,
            self.mean_channel_span,
            self.mean_cost_measure,
            self.max_x_span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::wire::{Pin, Wire};

    #[test]
    fn stats_of_known_circuit() {
        let wires = vec![
            Wire::new(0, vec![Pin::new(0, 0), Pin::new(0, 9)]),
            Wire::new(1, vec![Pin::new(1, 2), Pin::new(3, 2), Pin::new(2, 4)]),
        ];
        let c = Circuit::new("k", 4, 16, wires).unwrap();
        let s = CircuitStats::of(&c);
        assert_eq!(s.wires, 2);
        assert_eq!(s.pins, 5);
        assert!((s.mean_pins - 2.5).abs() < 1e-12);
        assert!((s.mean_x_span - (10.0 + 3.0) / 2.0).abs() < 1e-12);
        assert!((s.mean_channel_span - (1.0 + 3.0) / 2.0).abs() < 1e-12);
        assert_eq!(s.max_x_span, 10);
    }

    #[test]
    fn histogram_counts_every_wire_once() {
        let c = presets::bnr_e();
        let s = CircuitStats::of(&c);
        assert_eq!(s.span_histogram.iter().sum::<usize>(), c.wire_count());
    }

    #[test]
    fn report_is_nonempty_and_mentions_wire_count() {
        let s = CircuitStats::of(&presets::tiny());
        assert!(s.report().contains("wires=12"));
    }
}
