//! Coordinate primitives for the routing surface.
//!
//! The routing surface is a grid of *cells*: `channel` rows (vertical axis)
//! by `grid` columns (horizontal axis). Channel `0` is the bottom-most
//! routing channel; grid `0` is the left edge of the circuit.

use std::fmt;

/// One cell of the routing surface: a `(channel, grid-column)` pair.
///
/// This is the index type of the cost array and the unit of the update
/// packets exchanged by the message-passing implementation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GridCell {
    /// Routing channel (vertical coordinate, row of the cost array).
    pub channel: u16,
    /// Routing grid column (horizontal coordinate).
    pub x: u16,
}

impl GridCell {
    /// Creates a cell at `(channel, x)`.
    #[inline]
    pub const fn new(channel: u16, x: u16) -> Self {
        GridCell { channel, x }
    }

    /// Manhattan distance between two cells, counting one step per channel
    /// hop and one per grid-column hop.
    #[inline]
    pub fn manhattan(self, other: GridCell) -> u32 {
        self.channel.abs_diff(other.channel) as u32 + self.x.abs_diff(other.x) as u32
    }
}

impl fmt::Display for GridCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.channel, self.x)
    }
}

/// An inclusive axis-aligned rectangle of grid cells.
///
/// `Rect` is used for the *bounding box of changes* carried by update
/// packets (paper §4.3.1) and for owned-region geometry. Both bounds are
/// inclusive; a rectangle always contains at least one cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rect {
    /// Lowest channel contained in the rectangle.
    pub c_lo: u16,
    /// Highest channel contained in the rectangle (inclusive).
    pub c_hi: u16,
    /// Leftmost grid column contained in the rectangle.
    pub x_lo: u16,
    /// Rightmost grid column contained in the rectangle (inclusive).
    pub x_hi: u16,
}

impl Rect {
    /// Creates a rectangle from inclusive bounds.
    ///
    /// # Panics
    /// Panics if `c_lo > c_hi` or `x_lo > x_hi`.
    pub fn new(c_lo: u16, c_hi: u16, x_lo: u16, x_hi: u16) -> Self {
        assert!(c_lo <= c_hi, "Rect: c_lo {c_lo} > c_hi {c_hi}");
        assert!(x_lo <= x_hi, "Rect: x_lo {x_lo} > x_hi {x_hi}");
        Rect { c_lo, c_hi, x_lo, x_hi }
    }

    /// The single-cell rectangle containing `cell`.
    pub fn cell(cell: GridCell) -> Self {
        Rect { c_lo: cell.channel, c_hi: cell.channel, x_lo: cell.x, x_hi: cell.x }
    }

    /// Smallest rectangle containing both `a` and `b`.
    pub fn spanning(a: GridCell, b: GridCell) -> Self {
        Rect {
            c_lo: a.channel.min(b.channel),
            c_hi: a.channel.max(b.channel),
            x_lo: a.x.min(b.x),
            x_hi: a.x.max(b.x),
        }
    }

    /// Number of channels covered.
    #[inline]
    pub fn height(&self) -> u32 {
        (self.c_hi - self.c_lo) as u32 + 1
    }

    /// Number of grid columns covered.
    #[inline]
    pub fn width(&self) -> u32 {
        (self.x_hi - self.x_lo) as u32 + 1
    }

    /// Number of cells covered.
    #[inline]
    pub fn area(&self) -> u64 {
        self.height() as u64 * self.width() as u64
    }

    /// Whether `cell` lies inside the rectangle.
    #[inline]
    pub fn contains(&self, cell: GridCell) -> bool {
        (self.c_lo..=self.c_hi).contains(&cell.channel) && (self.x_lo..=self.x_hi).contains(&cell.x)
    }

    /// Whether the two rectangles share at least one cell.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.c_lo <= other.c_hi
            && other.c_lo <= self.c_hi
            && self.x_lo <= other.x_hi
            && other.x_lo <= self.x_hi
    }

    /// The overlapping region of two rectangles, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            c_lo: self.c_lo.max(other.c_lo),
            c_hi: self.c_hi.min(other.c_hi),
            x_lo: self.x_lo.max(other.x_lo),
            x_hi: self.x_hi.min(other.x_hi),
        })
    }

    /// Smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            c_lo: self.c_lo.min(other.c_lo),
            c_hi: self.c_hi.max(other.c_hi),
            x_lo: self.x_lo.min(other.x_lo),
            x_hi: self.x_hi.max(other.x_hi),
        }
    }

    /// Grows the rectangle to include `cell`.
    pub fn expand_to(&mut self, cell: GridCell) {
        self.c_lo = self.c_lo.min(cell.channel);
        self.c_hi = self.c_hi.max(cell.channel);
        self.x_lo = self.x_lo.min(cell.x);
        self.x_hi = self.x_hi.max(cell.x);
    }

    /// Iterator over every cell of the rectangle, channel-major.
    pub fn cells(&self) -> impl Iterator<Item = GridCell> + '_ {
        let (c_lo, c_hi, x_lo, x_hi) = (self.c_lo, self.c_hi, self.x_lo, self.x_hi);
        (c_lo..=c_hi).flat_map(move |c| (x_lo..=x_hi).map(move |x| GridCell::new(c, x)))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[c{}..{}, x{}..{}]", self.c_lo, self.c_hi, self.x_lo, self.x_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_manhattan_distance() {
        let a = GridCell::new(1, 10);
        let b = GridCell::new(4, 3);
        assert_eq!(a.manhattan(b), 3 + 7);
        assert_eq!(b.manhattan(a), 3 + 7);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn rect_spanning_orders_bounds() {
        let r = Rect::spanning(GridCell::new(5, 20), GridCell::new(2, 7));
        assert_eq!(r, Rect::new(2, 5, 7, 20));
        assert_eq!(r.height(), 4);
        assert_eq!(r.width(), 14);
        assert_eq!(r.area(), 56);
    }

    #[test]
    fn rect_contains_boundary_cells() {
        let r = Rect::new(1, 3, 4, 8);
        assert!(r.contains(GridCell::new(1, 4)));
        assert!(r.contains(GridCell::new(3, 8)));
        assert!(!r.contains(GridCell::new(0, 4)));
        assert!(!r.contains(GridCell::new(1, 9)));
    }

    #[test]
    fn rect_intersection_and_union() {
        let a = Rect::new(0, 4, 0, 10);
        let b = Rect::new(3, 7, 8, 20);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(3, 4, 8, 10));
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0, 7, 0, 20));
        let c = Rect::new(10, 11, 0, 1);
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
    }

    #[test]
    fn rect_expand_to_grows_in_all_directions() {
        let mut r = Rect::cell(GridCell::new(3, 3));
        r.expand_to(GridCell::new(1, 5));
        r.expand_to(GridCell::new(4, 0));
        assert_eq!(r, Rect::new(1, 4, 0, 5));
    }

    #[test]
    fn rect_cells_enumerates_area_exactly() {
        let r = Rect::new(2, 3, 5, 7);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells.len() as u64, r.area());
        assert_eq!(cells[0], GridCell::new(2, 5));
        assert_eq!(*cells.last().unwrap(), GridCell::new(3, 7));
        // Channel-major order.
        assert_eq!(cells[3], GridCell::new(3, 5));
    }

    #[test]
    #[should_panic(expected = "c_lo")]
    fn rect_rejects_inverted_channel_bounds() {
        let _ = Rect::new(3, 1, 0, 0);
    }
}
