//! # locus-circuit
//!
//! Standard-cell circuit model for the `locusroute-rs` reproduction of
//! Martonosi & Gupta, *"Tradeoffs in Message Passing and Shared Memory
//! Implementations of a Standard Cell Router"* (ICPP 1989).
//!
//! A standard-cell circuit consists of rows of logic cells separated by
//! horizontal **routing channels**. The router's central data structure —
//! the *cost array* — is indexed by `(channel, grid)` where the vertical
//! dimension is the number of routing channels and the horizontal dimension
//! is the number of routing grids (paper §3, Figure 1).
//!
//! This crate provides:
//!
//! * the coordinate types ([`GridCell`], [`Rect`]) shared by every other
//!   crate in the workspace,
//! * [`Pin`] / [`Wire`] / [`Circuit`] — the netlist the router consumes,
//! * seeded synthetic benchmark generators ([`generate`]) together with
//!   presets ([`presets::bnr_e`], [`presets::mdc`]) matching the published
//!   shapes of the two proprietary benchmark circuits used in the paper,
//! * a plain-text interchange format ([`format`]) so externally produced
//!   circuits can be routed, and
//! * summary statistics ([`stats`]) used for calibration.
//!
//! The original bnrE (Bell-Northern Research) and MDC (University of
//! Toronto Microelectronic Development Centre) netlists are proprietary and
//! unavailable; the generators reproduce their published aggregate shape
//! (wire count, channel/grid dimensions, wire length mix). See `DESIGN.md`
//! §5 for the substitution rationale.

pub mod cells;
pub mod circuit;
pub mod error;
pub mod format;
pub mod generate;
pub mod geometry;
pub mod presets;
pub mod stats;
pub mod wire;

pub use circuit::Circuit;
pub use error::CircuitError;
pub use generate::{CircuitGenerator, GeneratorConfig, SpanModel};
pub use geometry::{GridCell, Rect};
pub use stats::CircuitStats;
pub use wire::{Pin, Wire, WireId};
