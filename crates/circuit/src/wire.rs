//! Pins and wires (nets) of a standard-cell circuit.

use crate::geometry::{GridCell, Rect};

/// Identifier of a wire within its circuit (dense, `0..circuit.wires.len()`).
pub type WireId = usize;

/// A connection point of a wire.
///
/// Standard-cell pins sit on the top or bottom edge of a cell row and are
/// therefore adjacent to exactly one routing channel; we store them already
/// projected into channel space, i.e. as the grid cell the router must
/// reach. This matches Figure 1 of the paper, where pins are drawn directly
/// on cost-array cells.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Pin {
    /// Routing channel the pin connects to.
    pub channel: u16,
    /// Grid column of the pin.
    pub x: u16,
}

impl Pin {
    /// Creates a pin at `(channel, x)`.
    pub const fn new(channel: u16, x: u16) -> Self {
        Pin { channel, x }
    }

    /// The grid cell occupied by this pin.
    #[inline]
    pub fn cell(self) -> GridCell {
        GridCell::new(self.channel, self.x)
    }
}

/// A wire (net) connecting two or more pins.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Wire {
    /// Dense wire identifier.
    pub id: WireId,
    /// The pins of the net, in arbitrary order. Always ≥ 2.
    pub pins: Vec<Pin>,
}

impl Wire {
    /// Creates a wire from its pins.
    ///
    /// # Panics
    /// Panics if fewer than two pins are supplied.
    pub fn new(id: WireId, pins: Vec<Pin>) -> Self {
        assert!(pins.len() >= 2, "wire {id} must have at least 2 pins");
        Wire { id, pins }
    }

    /// The pin with the smallest grid column (ties broken by channel).
    ///
    /// The locality-based assignment heuristic of §4.2 assigns a wire to
    /// the owner processor of its *leftmost pin*.
    pub fn leftmost_pin(&self) -> Pin {
        *self.pins.iter().min_by_key(|p| (p.x, p.channel)).expect("wire has pins")
    }

    /// Bounding box of all pins.
    pub fn bounding_box(&self) -> Rect {
        let mut r = Rect::cell(self.pins[0].cell());
        for p in &self.pins[1..] {
            r.expand_to(p.cell());
        }
        r
    }

    /// Half-perimeter wire length of the pin bounding box.
    ///
    /// This is the *cost measure computed for each wire, based on its
    /// length* used by the `ThresholdCost` assignment strategy (§4.2):
    /// wires with `cost_measure() < threshold` are assigned by locality,
    /// longer wires by load balance.
    pub fn cost_measure(&self) -> u32 {
        let b = self.bounding_box();
        (b.width() - 1) + (b.height() - 1)
    }

    /// Horizontal extent (number of grid columns spanned, inclusive).
    pub fn x_span(&self) -> u32 {
        self.bounding_box().width()
    }

    /// Number of channels spanned (inclusive).
    pub fn channel_span(&self) -> u32 {
        self.bounding_box().height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(pins: &[(u16, u16)]) -> Wire {
        Wire::new(0, pins.iter().map(|&(c, x)| Pin::new(c, x)).collect())
    }

    #[test]
    fn leftmost_pin_breaks_ties_by_channel() {
        let wire = w(&[(3, 5), (1, 5), (2, 9)]);
        assert_eq!(wire.leftmost_pin(), Pin::new(1, 5));
    }

    #[test]
    fn bounding_box_covers_all_pins() {
        let wire = w(&[(3, 5), (1, 40), (2, 9)]);
        let b = wire.bounding_box();
        assert_eq!(b, Rect::new(1, 3, 5, 40));
        for p in &wire.pins {
            assert!(b.contains(p.cell()));
        }
    }

    #[test]
    fn cost_measure_is_half_perimeter() {
        // 2 channels and 10 columns spanned -> (10-1)+(2-1) = 10.
        let wire = w(&[(0, 0), (1, 9)]);
        assert_eq!(wire.cost_measure(), 10);
        // Single-cell net degenerate span.
        let wire = w(&[(2, 7), (2, 7)]);
        assert_eq!(wire.cost_measure(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2 pins")]
    fn wire_requires_two_pins() {
        let _ = Wire::new(0, vec![Pin::new(0, 0)]);
    }
}
