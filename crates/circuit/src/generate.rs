//! Seeded synthetic standard-cell circuit generation.
//!
//! The two benchmark circuits of the paper (bnrE, MDC) are proprietary
//! netlists; only their aggregate shape is published (§2.3). The generator
//! reproduces that shape: a fixed `channels × grids` routing surface, a
//! fixed wire count, and a wire population mixing many short local nets
//! with a tail of long nets — the statistic that drives every effect the
//! paper measures (locality, region crossings, update volume).
//!
//! Generation is fully deterministic given [`GeneratorConfig::seed`].

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::cells::{Cell, CellRow};
use crate::circuit::Circuit;
use crate::wire::{Pin, Wire};

/// Which distribution horizontal wire spans are drawn from.
///
/// The paper circuits use a two-population mixture (many short local
/// nets plus a uniform long tail). Real netlists often show heavier,
/// scale-free tails instead — Rent's-rule-style interconnect models —
/// so the generator also offers a truncated discrete Pareto family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpanModel {
    /// Historical mixture: `short_fraction` exponential short wires,
    /// the rest uniform up to `long_max_fraction · grids`.
    ShortLongMix,
    /// Power-law (Pareto) spans: `P(span = s) ∝ s^-alpha` for
    /// `s ≥ min_span`, truncated at the surface width. Smaller `alpha`
    /// means a heavier tail; typical interconnect fits use 1.5–3.0.
    PowerLaw {
        /// Tail exponent (> 1.0; clamped during sampling).
        alpha: f64,
        /// Smallest span the distribution produces.
        min_span: u32,
    },
}

/// Tunable parameters of the synthetic circuit generator.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratorConfig {
    /// Circuit name recorded in the output.
    pub name: String,
    /// Number of routing channels.
    pub channels: u16,
    /// Number of routing grid columns.
    pub grids: u16,
    /// Number of wires to generate.
    pub n_wires: usize,
    /// RNG seed; equal seeds produce identical circuits.
    pub seed: u64,
    /// Fraction of wires drawn from the *short/local* population.
    pub short_fraction: f64,
    /// Mean horizontal span (grid columns) of short wires.
    pub short_mean_span: f64,
    /// Long wires span `uniform(short_mean_span .. long_max_fraction*grids)`.
    pub long_max_fraction: f64,
    /// Probability that a wire gains each additional pin beyond two
    /// (geometric tail; mean pins = 2 + p/(1-p)).
    pub extra_pin_p: f64,
    /// Mean number of channels spanned by a wire (≥ 1).
    pub mean_channel_span: f64,
    /// Distribution of horizontal spans. [`SpanModel::ShortLongMix`]
    /// reproduces the paper circuits; [`SpanModel::PowerLaw`] adds a
    /// scale-free family (ignores `short_*`/`long_max_fraction`).
    pub span_model: SpanModel,
}

impl GeneratorConfig {
    /// A reasonable default population for a surface of the given size.
    pub fn for_surface(
        name: impl Into<String>,
        channels: u16,
        grids: u16,
        n_wires: usize,
        seed: u64,
    ) -> Self {
        GeneratorConfig {
            name: name.into(),
            channels,
            grids,
            n_wires,
            seed,
            short_fraction: 0.72,
            short_mean_span: (grids as f64 / 22.0).max(3.0),
            long_max_fraction: 0.7,
            extra_pin_p: 0.45,
            mean_channel_span: 1.9,
            span_model: SpanModel::ShortLongMix,
        }
    }
}

/// Deterministic circuit generator; see [module docs](self).
pub struct CircuitGenerator {
    config: GeneratorConfig,
    rng: StdRng,
}

impl CircuitGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: GeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        CircuitGenerator { config, rng }
    }

    /// Generates the circuit. Consumes the generator so the RNG stream is
    /// used exactly once per configuration.
    pub fn generate(mut self) -> Circuit {
        let rows = self.place_rows();
        let wires = self.draw_wires();
        let mut circuit =
            Circuit::new(self.config.name.clone(), self.config.channels, self.config.grids, wires)
                .expect("generator produced invalid circuit");
        circuit.rows = rows;
        circuit
    }

    /// Fills each cell row with cells of width 2–8 separated by small gaps.
    fn place_rows(&mut self) -> Vec<CellRow> {
        let n_rows = self.config.channels.saturating_sub(1);
        let mut rows = Vec::with_capacity(n_rows as usize);
        for r in 0..n_rows {
            let mut row = CellRow::new(r);
            let mut x: u32 = self.rng.random_range(0..3);
            while x < self.config.grids as u32 {
                let width = self.rng.random_range(2..=8).min(self.config.grids as u32 - x);
                if width == 0 {
                    break;
                }
                row.push(Cell { x: x as u16, width: width as u16 });
                x += width + self.rng.random_range(0..3);
            }
            rows.push(row);
        }
        rows
    }

    fn draw_wires(&mut self) -> Vec<Wire> {
        (0..self.config.n_wires).map(|id| self.draw_wire(id)).collect()
    }

    /// Draws one wire: an anchor position, a horizontal span from the
    /// short/long mixture, a channel span, and pins scattered inside the
    /// resulting window.
    fn draw_wire(&mut self, id: usize) -> Wire {
        let grids = self.config.grids as u32;
        let channels = self.config.channels as u32;

        let x_span = self.sample_x_span().min(grids - 1);
        let c_span = self.sample_channel_span().min(channels - 1);

        let x_lo = self.rng.random_range(0..grids - x_span) as u16;
        let x_hi = x_lo + x_span as u16;
        let c_lo = self.rng.random_range(0..channels - c_span) as u16;
        let c_hi = c_lo + c_span as u16;

        let n_pins = 2 + self.sample_geometric(self.config.extra_pin_p);
        let mut pins = Vec::with_capacity(n_pins);
        // Anchor the wire's extremes so spans are realized exactly.
        pins.push(Pin::new(self.rng.random_range(c_lo..=c_hi), x_lo));
        pins.push(Pin::new(self.rng.random_range(c_lo..=c_hi), x_hi));
        for _ in 2..n_pins {
            pins.push(Pin::new(
                self.rng.random_range(c_lo..=c_hi),
                self.rng.random_range(x_lo..=x_hi),
            ));
        }
        Wire::new(id, pins)
    }

    /// Horizontal span, drawn from the configured [`SpanModel`].
    fn sample_x_span(&mut self) -> u32 {
        match self.config.span_model {
            SpanModel::ShortLongMix => {
                // Exponential for the short population, uniform for the
                // long tail.
                if self.rng.random_bool(self.config.short_fraction) {
                    self.sample_exponential(self.config.short_mean_span)
                } else {
                    let max = (self.config.grids as f64 * self.config.long_max_fraction) as u32;
                    let lo = self.config.short_mean_span as u32;
                    if max <= lo {
                        max
                    } else {
                        self.rng.random_range(lo..=max)
                    }
                }
            }
            SpanModel::PowerLaw { alpha, min_span } => {
                // Inverse-CDF Pareto draw: s = min · u^(-1/(alpha-1)).
                let alpha = alpha.max(1.01);
                let u: f64 = self.rng.random();
                let u = u.max(f64::MIN_POSITIVE);
                let s = min_span.max(1) as f64 * u.powf(-1.0 / (alpha - 1.0));
                // Cap before the cast: a tiny u can overshoot u32::MAX.
                s.min(u32::MAX as f64).round() as u32
            }
        }
    }

    fn sample_channel_span(&mut self) -> u32 {
        // Mean `mean_channel_span`, at least 0 (wire within one channel).
        self.sample_exponential((self.config.mean_channel_span - 1.0).max(0.0))
    }

    /// Geometric count: number of successes of probability `p` before the
    /// first failure.
    fn sample_geometric(&mut self, p: f64) -> usize {
        let mut n = 0;
        while n < 16 && self.rng.random_bool(p) {
            n += 1;
        }
        n
    }

    /// Discretized exponential with the given mean (mean 0 returns 0).
    fn sample_exponential(&mut self, mean: f64) -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        let u: f64 = self.rng.random();
        // Guard u=0 (ln(0) = -inf).
        let u = u.max(f64::MIN_POSITIVE);
        (-u.ln() * mean).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64) -> GeneratorConfig {
        GeneratorConfig::for_surface("test", 6, 80, 50, seed)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CircuitGenerator::new(small_config(7)).generate();
        let b = CircuitGenerator::new(small_config(7)).generate();
        assert_eq!(a.wires, b.wires);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CircuitGenerator::new(small_config(1)).generate();
        let b = CircuitGenerator::new(small_config(2)).generate();
        assert_ne!(a.wires, b.wires);
    }

    #[test]
    fn generated_circuit_is_valid_and_sized() {
        let c = CircuitGenerator::new(small_config(3)).generate();
        c.validate().unwrap();
        assert_eq!(c.wire_count(), 50);
        assert_eq!(c.channels, 6);
        assert_eq!(c.grids, 80);
        assert_eq!(c.rows.len(), 5);
    }

    #[test]
    fn wire_population_mixes_short_and_long() {
        let cfg = GeneratorConfig::for_surface("mix", 10, 341, 420, 42);
        let c = CircuitGenerator::new(cfg).generate();
        let spans: Vec<u32> = c.wires.iter().map(|w| w.x_span()).collect();
        let short = spans.iter().filter(|&&s| s <= 20).count();
        let long = spans.iter().filter(|&&s| s >= 80).count();
        assert!(short > 100, "expected many short wires, got {short}");
        assert!(long > 20, "expected a long tail, got {long}");
    }

    #[test]
    fn all_wires_have_at_least_two_pins() {
        let c = CircuitGenerator::new(small_config(9)).generate();
        assert!(c.wires.iter().all(|w| w.pins.len() >= 2));
    }

    #[test]
    fn power_law_spans_are_heavy_tailed_but_bounded() {
        let mut cfg = GeneratorConfig::for_surface("plaw", 8, 256, 400, 13);
        cfg.span_model = SpanModel::PowerLaw { alpha: 1.8, min_span: 4 };
        let c = CircuitGenerator::new(cfg).generate();
        c.validate().unwrap();
        let spans: Vec<u32> = c.wires.iter().map(|w| w.x_span()).collect();
        // Every span fits the surface: the generator clamps the drawn
        // span to grids-1, and x_span() reports inclusive width.
        assert!(spans.iter().all(|&s| s <= 256));
        // Most mass near the minimum, but a real tail survives the clamp:
        // P(span <= 8) ≈ 0.43 and P(span >= 128) ≈ 0.06 at these
        // parameters.
        let short = spans.iter().filter(|&&s| s <= 8).count();
        let long = spans.iter().filter(|&&s| s >= 128).count();
        assert!(short > 120, "expected short-span bulk, got {short}");
        assert!(long > 10, "expected a heavy tail, got {long}");
    }

    #[test]
    fn power_law_generation_is_deterministic() {
        let mk = || {
            let mut cfg = GeneratorConfig::for_surface("plaw", 8, 256, 100, 99);
            cfg.span_model = SpanModel::PowerLaw { alpha: 2.0, min_span: 2 };
            CircuitGenerator::new(cfg).generate()
        };
        assert_eq!(mk().wires, mk().wires);
    }
}
