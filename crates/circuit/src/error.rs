//! Error type for circuit construction and parsing.

use std::fmt;

/// Errors produced when building or parsing a [`crate::Circuit`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CircuitError {
    /// A pin references a channel outside `0..channels`.
    ChannelOutOfRange {
        /// Offending wire.
        wire: usize,
        /// Offending channel value.
        channel: u16,
        /// Number of channels in the circuit.
        channels: u16,
    },
    /// A pin references a grid column outside `0..grids`.
    GridOutOfRange {
        /// Offending wire.
        wire: usize,
        /// Offending column value.
        x: u16,
        /// Number of grid columns in the circuit.
        grids: u16,
    },
    /// A wire has fewer than two pins.
    TooFewPins {
        /// Offending wire.
        wire: usize,
    },
    /// Wire ids are not dense `0..n` in order.
    NonDenseWireIds {
        /// Position in the wire list.
        index: usize,
        /// Id found at that position.
        found: usize,
    },
    /// The circuit has zero channels or zero grid columns.
    EmptySurface,
    /// Text-format parse error with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::ChannelOutOfRange { wire, channel, channels } => write!(
                f,
                "wire {wire}: pin channel {channel} out of range (circuit has {channels} channels)"
            ),
            CircuitError::GridOutOfRange { wire, x, grids } => write!(
                f,
                "wire {wire}: pin column {x} out of range (circuit has {grids} grid columns)"
            ),
            CircuitError::TooFewPins { wire } => {
                write!(f, "wire {wire}: fewer than two pins")
            }
            CircuitError::NonDenseWireIds { index, found } => write!(
                f,
                "wire list position {index} holds wire id {found}; ids must be dense 0..n"
            ),
            CircuitError::EmptySurface => write!(f, "circuit must have ≥1 channel and ≥1 grid"),
            CircuitError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = CircuitError::ChannelOutOfRange { wire: 7, channel: 12, channels: 10 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("12") && s.contains("10"));

        let e = CircuitError::Parse { line: 3, msg: "bad token".into() };
        assert!(e.to_string().contains("line 3"));
    }
}
