//! Physical cell rows.
//!
//! The router operates purely on channel-space pins, but the synthetic
//! generator produces circuits by *placing cells into rows* first — the
//! same provenance a real standard-cell placement would have — and the
//! Figure-1 renderer draws the rows. A row of cells sits between channel
//! `row` (below it) and channel `row + 1` (above it).

/// A single placed standard cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Leftmost grid column occupied by the cell.
    pub x: u16,
    /// Width in grid columns (≥ 1).
    pub width: u16,
}

impl Cell {
    /// Rightmost occupied column (inclusive).
    #[inline]
    pub fn x_end(&self) -> u16 {
        self.x + self.width - 1
    }

    /// Whether `x` falls within the cell footprint.
    #[inline]
    pub fn contains(&self, x: u16) -> bool {
        (self.x..=self.x_end()).contains(&x)
    }
}

/// A row of non-overlapping cells, sorted by `x`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CellRow {
    /// Row index (row `r` lies between channels `r` and `r + 1`).
    pub row: u16,
    /// The placed cells, sorted by `x` and non-overlapping.
    pub cells: Vec<Cell>,
}

impl CellRow {
    /// Creates an empty row.
    pub fn new(row: u16) -> Self {
        CellRow { row, cells: Vec::new() }
    }

    /// Appends a cell; must not overlap the previous cell.
    ///
    /// # Panics
    /// Panics if the new cell starts at or before the end of the last cell.
    pub fn push(&mut self, cell: Cell) {
        if let Some(last) = self.cells.last() {
            assert!(
                cell.x > last.x_end(),
                "cell at x={} overlaps previous cell ending at {}",
                cell.x,
                last.x_end()
            );
        }
        self.cells.push(cell);
    }

    /// Total occupied width of the row in grid columns.
    pub fn occupied_width(&self) -> u32 {
        self.cells.iter().map(|c| c.width as u32).sum()
    }

    /// The cell covering column `x`, if any (binary search).
    pub fn cell_at(&self, x: u16) -> Option<&Cell> {
        match self.cells.binary_search_by(|c| c.x.cmp(&x)) {
            Ok(i) => Some(&self.cells[i]),
            Err(0) => None,
            Err(i) => {
                let c = &self.cells[i - 1];
                c.contains(x).then_some(c)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_extent() {
        let c = Cell { x: 10, width: 4 };
        assert_eq!(c.x_end(), 13);
        assert!(c.contains(10) && c.contains(13));
        assert!(!c.contains(9) && !c.contains(14));
    }

    #[test]
    fn row_lookup_by_column() {
        let mut row = CellRow::new(0);
        row.push(Cell { x: 0, width: 3 });
        row.push(Cell { x: 5, width: 2 });
        row.push(Cell { x: 9, width: 1 });
        assert_eq!(row.cell_at(1).unwrap().x, 0);
        assert_eq!(row.cell_at(5).unwrap().x, 5);
        assert_eq!(row.cell_at(6).unwrap().x, 5);
        assert!(row.cell_at(3).is_none());
        assert!(row.cell_at(8).is_none());
        assert_eq!(row.cell_at(9).unwrap().x, 9);
        assert_eq!(row.occupied_width(), 6);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn row_rejects_overlap() {
        let mut row = CellRow::new(0);
        row.push(Cell { x: 0, width: 3 });
        row.push(Cell { x: 2, width: 2 });
    }
}
