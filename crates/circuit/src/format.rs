//! Plain-text circuit interchange format.
//!
//! Grammar (one record per line, `#` starts a comment):
//!
//! ```text
//! circuit <name> channels <C> grids <G>
//! wire <id> : (<channel>,<x>) (<channel>,<x>) ...
//! ```
//!
//! Example:
//!
//! ```text
//! # two-wire demo
//! circuit demo channels 4 grids 24
//! wire 0 : (0,1) (3,20)
//! wire 1 : (1,4) (1,9) (2,7)
//! ```
//!
//! The format exists so externally produced standard-cell netlists can be
//! routed with this library (the paper's actual benchmarks would be
//! imported this way if their netlists were available).

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::wire::{Pin, Wire};

/// Serializes a circuit to the text format.
pub fn to_text(circuit: &Circuit) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(circuit.wire_count() * 32 + 64);
    writeln!(out, "circuit {} channels {} grids {}", circuit.name, circuit.channels, circuit.grids)
        .expect("write to String cannot fail");
    for wire in &circuit.wires {
        write!(out, "wire {} :", wire.id).expect("write to String cannot fail");
        for pin in &wire.pins {
            write!(out, " ({},{})", pin.channel, pin.x).expect("write to String cannot fail");
        }
        out.push('\n');
    }
    out
}

/// Parses a circuit from the text format; validates the result.
pub fn from_text(text: &str) -> Result<Circuit, CircuitError> {
    let mut header: Option<(String, u16, u16)> = None;
    let mut wires: Vec<Wire> = Vec::new();

    for (lineno0, raw) in text.lines().enumerate() {
        let line = lineno0 + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        match tokens.next() {
            Some("circuit") => {
                if header.is_some() {
                    return parse_err(line, "duplicate circuit header");
                }
                let name = tokens
                    .next()
                    .ok_or_else(|| parse_error(line, "missing circuit name"))?
                    .to_string();
                expect_keyword(&mut tokens, "channels", line)?;
                let channels = parse_u16(tokens.next(), "channel count", line)?;
                expect_keyword(&mut tokens, "grids", line)?;
                let grids = parse_u16(tokens.next(), "grid count", line)?;
                header = Some((name, channels, grids));
            }
            Some("wire") => {
                if header.is_none() {
                    return parse_err(line, "wire record before circuit header");
                }
                let id = tokens
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| parse_error(line, "missing or invalid wire id"))?;
                expect_keyword(&mut tokens, ":", line)?;
                let mut pins = Vec::new();
                for tok in tokens {
                    pins.push(parse_pin(tok, line)?);
                }
                if pins.len() < 2 {
                    return parse_err(line, "wire needs at least two pins");
                }
                if id != wires.len() {
                    return parse_err(
                        line,
                        &format!("wire id {id} out of order (expected {})", wires.len()),
                    );
                }
                wires.push(Wire::new(id, pins));
            }
            Some(other) => {
                return parse_err(line, &format!("unknown record type {other:?}"));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }

    let (name, channels, grids) = header.ok_or_else(|| parse_error(0, "missing circuit header"))?;
    Circuit::new(name, channels, grids, wires)
}

fn parse_pin(tok: &str, line: usize) -> Result<Pin, CircuitError> {
    let inner = tok
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| parse_error(line, &format!("malformed pin {tok:?}")))?;
    let (c, x) = inner
        .split_once(',')
        .ok_or_else(|| parse_error(line, &format!("malformed pin {tok:?}")))?;
    let channel =
        c.parse::<u16>().map_err(|_| parse_error(line, &format!("bad pin channel {c:?}")))?;
    let x = x.parse::<u16>().map_err(|_| parse_error(line, &format!("bad pin column {x:?}")))?;
    Ok(Pin::new(channel, x))
}

fn expect_keyword<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    kw: &str,
    line: usize,
) -> Result<(), CircuitError> {
    match tokens.next() {
        Some(t) if t == kw => Ok(()),
        other => parse_err(line, &format!("expected {kw:?}, found {other:?}")),
    }
}

fn parse_u16(tok: Option<&str>, what: &str, line: usize) -> Result<u16, CircuitError> {
    tok.and_then(|t| t.parse::<u16>().ok())
        .ok_or_else(|| parse_error(line, &format!("missing or invalid {what}")))
}

fn parse_error(line: usize, msg: &str) -> CircuitError {
    CircuitError::Parse { line, msg: msg.to_string() }
}

fn parse_err<T>(line: usize, msg: &str) -> Result<T, CircuitError> {
    Err(parse_error(line, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn roundtrip_tiny_circuit() {
        let c = presets::tiny();
        let text = to_text(&c);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.name, c.name);
        assert_eq!(parsed.channels, c.channels);
        assert_eq!(parsed.grids, c.grids);
        assert_eq!(parsed.wires, c.wires);
    }

    #[test]
    fn roundtrip_bnr_e() {
        let c = presets::bnr_e();
        let parsed = from_text(&to_text(&c)).unwrap();
        assert_eq!(parsed.wires, c.wires);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# header comment\ncircuit demo channels 4 grids 24\n\nwire 0 : (0,1) (3,20) # trailing\n";
        let c = from_text(text).unwrap();
        assert_eq!(c.name, "demo");
        assert_eq!(c.wire_count(), 1);
    }

    #[test]
    fn rejects_wire_before_header() {
        let err = from_text("wire 0 : (0,1) (1,2)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_malformed_pin() {
        let err = from_text("circuit d channels 4 grids 24\nwire 0 : (0,1) 3,20\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_out_of_order_wire_ids() {
        let err = from_text("circuit d channels 4 grids 24\nwire 1 : (0,1) (1,2)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn rejects_single_pin_wire() {
        let err = from_text("circuit d channels 4 grids 24\nwire 0 : (0,1)\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn validates_parsed_pins_against_surface() {
        // Pin channel 9 on a 4-channel surface: caught by Circuit::validate.
        let err = from_text("circuit d channels 4 grids 24\nwire 0 : (9,1) (1,2)\n").unwrap_err();
        assert!(matches!(err, CircuitError::ChannelOutOfRange { .. }), "{err}");
    }
}
