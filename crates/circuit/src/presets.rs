//! Benchmark circuit presets.
//!
//! The paper evaluates on two circuits (§2.3):
//!
//! * **bnrE** — 420 wires, 10 channels × 341 routing grids, an actual
//!   standard-cell circuit from Bell-Northern Research Ltd.;
//! * **MDC** — 573 wires, 12 channels × 386 routing grids, designed at the
//!   University of Toronto Microelectronic Development Centre.
//!
//! Both netlists are proprietary; these presets generate synthetic
//! stand-ins with the published dimensions and wire counts (see
//! `DESIGN.md` §5). MDC is generated with slightly tighter wire spans so
//! its measured locality is better than bnrE's, matching the paper's
//! §5.3.3 observation (0.91 vs 1.21 mean hops at 16 processors).

use crate::circuit::Circuit;
use crate::generate::{CircuitGenerator, GeneratorConfig, SpanModel};

/// Seed for the bnrE stand-in; fixed so every experiment sees the same
/// circuit.
pub const BNRE_SEED: u64 = 0x1989_0005;
/// Seed for the MDC stand-in.
pub const MDC_SEED: u64 = 0x1989_0002;

/// Synthetic stand-in for the bnrE benchmark: 420 wires on a
/// 10-channel × 341-grid surface.
pub fn bnr_e() -> Circuit {
    CircuitGenerator::new(bnr_e_config()).generate()
}

/// Generator configuration backing [`bnr_e`]; exposed so experiments can
/// derive variants (e.g. different seeds for confidence runs).
///
/// The wire population (38% long wires up to 75% of the width, mean
/// channel span 2.5, seed swept) was calibrated so the measured locality
/// at 16 processors (~1.1 mean hops) approaches the paper's §5.3.3 value
/// of 1.21 and so the paper's qualitative orderings hold: shared memory
/// routes best, updates beat no updates, receiver-initiated quality
/// degrades as requests rarify, locality-based assignment beats round
/// robin, and ThresholdCost = 30 gives the best execution time.
pub fn bnr_e_config() -> GeneratorConfig {
    let mut cfg = GeneratorConfig::for_surface("bnrE-synthetic", 10, 341, 420, BNRE_SEED);
    cfg.short_fraction = 0.62;
    cfg.long_max_fraction = 0.75;
    cfg.mean_channel_span = 2.5;
    cfg
}

/// Synthetic stand-in for the MDC benchmark: 573 wires on a
/// 12-channel × 386-grid surface.
pub fn mdc() -> Circuit {
    CircuitGenerator::new(mdc_config()).generate()
}

/// Generator configuration backing [`mdc`].
pub fn mdc_config() -> GeneratorConfig {
    let mut cfg = GeneratorConfig::for_surface("MDC-synthetic", 12, 386, 573, MDC_SEED);
    // Tighter wire population than bnrE: more short wires and a shorter
    // long tail, yielding better locality (paper §5.3.3: 0.91 vs 1.21).
    cfg.short_fraction = 0.68;
    cfg.long_max_fraction = 0.60;
    cfg.mean_channel_span = 2.3;
    cfg
}

/// A tiny circuit for unit tests, examples and the Figure 1 rendering:
/// 4 channels × 24 grids, 12 wires.
pub fn tiny() -> Circuit {
    CircuitGenerator::new(tiny_config()).generate()
}

/// Generator configuration backing [`tiny`].
pub fn tiny_config() -> GeneratorConfig {
    GeneratorConfig::for_surface("tiny", 4, 24, 12, 7)
}

/// A mid-size circuit for integration tests that need more parallelism
/// than [`tiny`] but quicker runs than [`bnr_e`]: 8 channels × 128 grids,
/// 120 wires.
pub fn small() -> Circuit {
    CircuitGenerator::new(small_config()).generate()
}

/// Generator configuration backing [`small`].
pub fn small_config() -> GeneratorConfig {
    GeneratorConfig::for_surface("small", 8, 128, 120, 11)
}

/// Seed for the power-law stand-in.
pub const POWER_LAW_SEED: u64 = 0x1989_000B;

/// A scale-free synthetic circuit: 9 channels × 288 grids, 360 wires
/// whose horizontal spans follow a truncated Pareto(α = 1.8) law.
///
/// Neither paper circuit has this shape — it exists to stress routing
/// under a heavier long-wire tail than the two-population mixture
/// produces, and it is part of the default service workload mix.
pub fn power_law() -> Circuit {
    CircuitGenerator::new(power_law_config()).generate()
}

/// Generator configuration backing [`power_law`].
pub fn power_law_config() -> GeneratorConfig {
    let mut cfg = GeneratorConfig::for_surface("powerlaw-synthetic", 9, 288, 360, POWER_LAW_SEED);
    cfg.span_model = SpanModel::PowerLaw { alpha: 1.8, min_span: 4 };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bnr_e_matches_published_shape() {
        let c = bnr_e();
        assert_eq!(c.channels, 10);
        assert_eq!(c.grids, 341);
        assert_eq!(c.wire_count(), 420);
        c.validate().unwrap();
    }

    #[test]
    fn mdc_matches_published_shape() {
        let c = mdc();
        assert_eq!(c.channels, 12);
        assert_eq!(c.grids, 386);
        assert_eq!(c.wire_count(), 573);
        c.validate().unwrap();
    }

    #[test]
    fn presets_are_reproducible() {
        assert_eq!(bnr_e().wires, bnr_e().wires);
        assert_eq!(mdc().wires, mdc().wires);
        assert_eq!(tiny().wires, tiny().wires);
    }

    #[test]
    fn power_law_matches_declared_shape_and_reproduces() {
        let c = power_law();
        assert_eq!(c.channels, 9);
        assert_eq!(c.grids, 288);
        assert_eq!(c.wire_count(), 360);
        c.validate().unwrap();
        assert_eq!(power_law().wires, c.wires);
    }

    #[test]
    fn power_law_tail_outlives_the_mixture_cap() {
        // The mixture's long population is capped at long_max_fraction
        // (≤ 0.75) of the surface; the Pareto tail runs to the full
        // width. Count wires beyond 80% of the surface.
        let beyond = |c: &Circuit| {
            let cut = c.grids as u32 * 4 / 5;
            c.wires.iter().filter(|w| w.x_span() >= cut).count()
        };
        assert_eq!(beyond(&bnr_e()), 0, "mixture long tail is capped at 75%");
        assert_eq!(beyond(&mdc()), 0);
        assert!(beyond(&power_law()) >= 5, "got {}", beyond(&power_law()));
    }

    #[test]
    fn mdc_population_is_tighter_than_bnr_e() {
        let b = bnr_e();
        let m = mdc();
        let mean = |c: &Circuit| {
            c.wires.iter().map(|w| w.x_span() as f64).sum::<f64>() / c.wire_count() as f64
        };
        // Normalize by surface width; MDC wires should be relatively shorter.
        assert!(mean(&m) / (m.grids as f64) < mean(&b) / (b.grids as f64));
    }
}
