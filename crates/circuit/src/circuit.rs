//! The [`Circuit`] container: routing surface dimensions plus netlist.

use crate::cells::CellRow;
use crate::error::CircuitError;
use crate::geometry::Rect;
use crate::wire::{Wire, WireId};

/// A placed standard-cell circuit ready for global routing.
///
/// The routing surface is `channels × grids` cells (paper §2.3 quotes the
/// benchmarks this way: bnrE is "10 channels by 341 routing grids"). Wires
/// are stored with dense ids `0..wires.len()` so per-wire state in the
/// routers can be kept in flat vectors.
#[derive(Clone, Debug)]
pub struct Circuit {
    /// Human-readable name ("bnrE-synthetic", …).
    pub name: String,
    /// Number of routing channels (vertical dimension of the cost array).
    pub channels: u16,
    /// Number of routing grid columns (horizontal dimension).
    pub grids: u16,
    /// The netlist.
    pub wires: Vec<Wire>,
    /// Optional physical cell rows (used for rendering and generation
    /// provenance; the router itself only needs channel-space pins).
    pub rows: Vec<CellRow>,
}

impl Circuit {
    /// Creates a circuit after validating all invariants.
    pub fn new(
        name: impl Into<String>,
        channels: u16,
        grids: u16,
        wires: Vec<Wire>,
    ) -> Result<Self, CircuitError> {
        let c = Circuit { name: name.into(), channels, grids, wires, rows: Vec::new() };
        c.validate()?;
        Ok(c)
    }

    /// Checks every structural invariant; returns the first violation.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.channels == 0 || self.grids == 0 {
            return Err(CircuitError::EmptySurface);
        }
        for (index, wire) in self.wires.iter().enumerate() {
            if wire.id != index {
                return Err(CircuitError::NonDenseWireIds { index, found: wire.id });
            }
            if wire.pins.len() < 2 {
                return Err(CircuitError::TooFewPins { wire: wire.id });
            }
            for pin in &wire.pins {
                if pin.channel >= self.channels {
                    return Err(CircuitError::ChannelOutOfRange {
                        wire: wire.id,
                        channel: pin.channel,
                        channels: self.channels,
                    });
                }
                if pin.x >= self.grids {
                    return Err(CircuitError::GridOutOfRange {
                        wire: wire.id,
                        x: pin.x,
                        grids: self.grids,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of wires in the netlist.
    #[inline]
    pub fn wire_count(&self) -> usize {
        self.wires.len()
    }

    /// The full routing surface as a rectangle.
    pub fn surface(&self) -> Rect {
        Rect::new(0, self.channels - 1, 0, self.grids - 1)
    }

    /// Looks up a wire by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range (ids are dense, so this indicates a
    /// logic error in the caller).
    #[inline]
    pub fn wire(&self, id: WireId) -> &Wire {
        &self.wires[id]
    }

    /// Total number of pins over all wires.
    pub fn pin_count(&self) -> usize {
        self.wires.iter().map(|w| w.pins.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Pin;

    fn wire(id: WireId, pins: &[(u16, u16)]) -> Wire {
        Wire::new(id, pins.iter().map(|&(c, x)| Pin::new(c, x)).collect())
    }

    #[test]
    fn valid_circuit_constructs() {
        let c = Circuit::new("t", 4, 16, vec![wire(0, &[(0, 0), (3, 15)])]).unwrap();
        assert_eq!(c.wire_count(), 1);
        assert_eq!(c.pin_count(), 2);
        assert_eq!(c.surface(), Rect::new(0, 3, 0, 15));
    }

    #[test]
    fn rejects_out_of_range_channel() {
        let err = Circuit::new("t", 4, 16, vec![wire(0, &[(0, 0), (4, 5)])]).unwrap_err();
        assert_eq!(err, CircuitError::ChannelOutOfRange { wire: 0, channel: 4, channels: 4 });
    }

    #[test]
    fn rejects_out_of_range_grid() {
        let err = Circuit::new("t", 4, 16, vec![wire(0, &[(0, 0), (1, 16)])]).unwrap_err();
        assert_eq!(err, CircuitError::GridOutOfRange { wire: 0, x: 16, grids: 16 });
    }

    #[test]
    fn rejects_non_dense_ids() {
        let err = Circuit::new("t", 4, 16, vec![wire(3, &[(0, 0), (1, 1)])]).unwrap_err();
        assert_eq!(err, CircuitError::NonDenseWireIds { index: 0, found: 3 });
    }

    #[test]
    fn rejects_empty_surface() {
        let err = Circuit::new("t", 0, 16, vec![]).unwrap_err();
        assert_eq!(err, CircuitError::EmptySurface);
    }
}
