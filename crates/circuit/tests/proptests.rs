//! Property-based tests for the circuit model.

use locus_circuit::format::{from_text, to_text};
use locus_circuit::{Circuit, CircuitGenerator, GeneratorConfig, GridCell, Pin, Rect, Wire};
use proptest::prelude::*;

/// Strategy: an arbitrary valid rectangle within a 64x64 surface.
fn arb_rect() -> impl Strategy<Value = Rect> {
    (0u16..64, 0u16..64, 0u16..64, 0u16..64)
        .prop_map(|(c1, c2, x1, x2)| Rect::new(c1.min(c2), c1.max(c2), x1.min(x2), x1.max(x2)))
}

/// Strategy: an arbitrary valid circuit (2..6 channels, 8..40 grids,
/// 1..12 wires with 2..5 in-range pins).
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (2u16..6, 8u16..40).prop_flat_map(|(channels, grids)| {
        let pin = (0..channels, 0..grids).prop_map(|(c, x)| Pin::new(c, x));
        let wire = proptest::collection::vec(pin, 2..5);
        proptest::collection::vec(wire, 1..12).prop_map(move |wires| {
            let wires =
                wires.into_iter().enumerate().map(|(id, pins)| Wire::new(id, pins)).collect();
            Circuit::new("prop", channels, grids, wires).expect("constructed valid")
        })
    })
}

proptest! {
    #[test]
    fn rect_intersection_is_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            for cell in i.cells() {
                prop_assert!(a.contains(cell) && b.contains(cell));
            }
            prop_assert!(i.area() <= a.area() && i.area() <= b.area());
        }
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.area() >= a.area() && u.area() >= b.area());
        for cell in a.cells().chain(b.cells()) {
            prop_assert!(u.contains(cell));
        }
    }

    #[test]
    fn rect_area_equals_cell_count(a in arb_rect()) {
        prop_assert_eq!(a.cells().count() as u64, a.area());
    }

    #[test]
    fn rect_intersects_iff_intersection_exists(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
    }

    #[test]
    fn manhattan_is_symmetric_and_triangle(
        a in (0u16..64, 0u16..64),
        b in (0u16..64, 0u16..64),
        c in (0u16..64, 0u16..64),
    ) {
        let (pa, pb, pc) = (
            GridCell::new(a.0, a.1),
            GridCell::new(b.0, b.1),
            GridCell::new(c.0, c.1),
        );
        prop_assert_eq!(pa.manhattan(pb), pb.manhattan(pa));
        prop_assert!(pa.manhattan(pc) <= pa.manhattan(pb) + pb.manhattan(pc));
    }

    #[test]
    fn text_format_roundtrips(c in arb_circuit()) {
        let text = to_text(&c);
        let parsed = from_text(&text).expect("emitted text must parse");
        prop_assert_eq!(parsed.channels, c.channels);
        prop_assert_eq!(parsed.grids, c.grids);
        prop_assert_eq!(parsed.wires, c.wires);
    }

    #[test]
    fn wire_bounding_box_contains_all_pins(c in arb_circuit()) {
        for wire in &c.wires {
            let b = wire.bounding_box();
            for pin in &wire.pins {
                prop_assert!(b.contains(pin.cell()));
            }
            prop_assert!(b.contains(wire.leftmost_pin().cell()));
            // No pin lies left of the leftmost pin.
            for pin in &wire.pins {
                prop_assert!(pin.x >= wire.leftmost_pin().x);
            }
        }
    }

    #[test]
    fn generator_produces_valid_circuits(
        channels in 3u16..12,
        grids in 16u16..128,
        n_wires in 1usize..80,
        seed in any::<u64>(),
    ) {
        let cfg = GeneratorConfig::for_surface("prop", channels, grids, n_wires, seed);
        let c = CircuitGenerator::new(cfg).generate();
        prop_assert!(c.validate().is_ok());
        prop_assert_eq!(c.wire_count(), n_wires);
    }

    #[test]
    fn cost_measure_bounded_by_surface(c in arb_circuit()) {
        for wire in &c.wires {
            prop_assert!(
                wire.cost_measure() <= (c.grids as u32 - 1) + (c.channels as u32 - 1)
            );
        }
    }
}
