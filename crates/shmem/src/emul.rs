//! The deterministic shared-memory concurrency emulator with Tango-style
//! trace collection.
//!
//! Logical processors are multiplexed with per-processor logical clocks
//! (the Tango methodology, §2.2: traces "are generated on a uniprocessor
//! by spawning the specified number of processes and multiplexing their
//! execution"). The concurrency semantics captured are exactly those of
//! the unlocked shared cost array (§3):
//!
//! * a processor **evaluates** a wire against the shared array as it
//!   stands when the evaluation begins (reads recorded at fine grain as
//!   the candidate sweep progresses);
//! * its increments **commit** only after the modelled routing time has
//!   elapsed, so wires being routed simultaneously on other processors do
//!   not see them — the staleness that degrades quality as P grows;
//! * processors meet at a **barrier** between iterations (§3: "processes
//!   are blocked at a barrier until all the processors are finished").
//!
//! Trace criticality: rip-up and commit stores are tagged
//! [`Criticality::Critical`] — they gate every other processor's view of
//! the cost array and the wire's route decision is unusable until they
//! land — while candidate-sweep evaluation reads stay
//! [`Criticality::Background`] (speculative, prefetch-like; most
//! candidates lose). Criticality-aware memory backends use the tags to
//! service critical requests first.
//!
//! Route slots, work accounting, per-iteration occupancy, and event
//! emission live in the shared [`IterationDriver`]; this module owns only
//! what is emulator-specific — logical clocks, the evaluate/commit split,
//! and the reference trace.

use std::cell::{Cell, RefCell};

use locus_circuit::{Circuit, GridCell, WireId};
use locus_coherence::{Criticality, MemRef, RefKind, Trace};
use locus_obs::{NullSink, Sink};
use locus_router::engine::{IterationDriver, ObsEmitter, Stamp, WireFeed};
use locus_router::router::{route_wire_scratch, PooledScratch, WireEvaluation};
use locus_router::{CostArray, CostView, ProcId, QualityMetrics, Route, WorkStats};

use crate::cell_addr;
use crate::config::ShmemConfig;

/// Result of an emulated shared-memory run.
#[derive(Clone, Debug)]
pub struct ShmemOutcome {
    /// Circuit height and occupancy factor.
    pub quality: QualityMetrics,
    /// Modelled execution time (max logical clock).
    pub time_secs: f64,
    /// Final route of every wire.
    pub routes: Vec<Route>,
    /// Processor that routed each wire in the final iteration.
    pub proc_of_wire: Vec<ProcId>,
    /// Aggregate routing work.
    pub work: WorkStats,
    /// Occupancy factor accumulated in each iteration.
    pub occupancy_by_iteration: Vec<u64>,
    /// Final shared cost-array state.
    pub cost: CostArray,
    /// The shared-reference trace, when collection was enabled.
    pub trace: Option<Trace>,
}

/// A cost-array view that records read references as candidate evaluation
/// sweeps cells, advancing the processor's logical clock per read.
struct TracedView<'a> {
    cost: &'a CostArray,
    trace: Option<&'a RefCell<Trace>>,
    clock: Cell<u64>,
    step_ns: u64,
    proc: u32,
    epoch: u32,
    wire: u32,
}

impl CostView for TracedView<'_> {
    fn channels(&self) -> u16 {
        self.cost.channels()
    }
    fn grids(&self) -> u16 {
        self.cost.grids()
    }
    #[inline]
    fn cost_at(&self, cell: GridCell) -> u32 {
        let t = self.clock.get();
        if let Some(trace) = self.trace {
            trace.borrow_mut().push(
                MemRef::new(
                    t,
                    self.proc,
                    cell_addr(cell.channel, cell.x, self.cost.grids()),
                    RefKind::Read,
                )
                .with_epoch(self.epoch)
                .with_wire(self.wire),
            );
        }
        self.clock.set(t + self.step_ns);
        self.cost.cost_at(cell)
    }
}

/// An in-flight wire: evaluated, not yet committed.
struct Pending {
    wire: WireId,
    eval: WireEvaluation,
    cost: u64,
    commit_at: u64,
}

struct ProcState {
    clock: u64,
    pending: Option<Pending>,
    queue_pos: usize,
    at_barrier: bool,
}

/// The emulator; see [module docs](self).
pub struct ShmemEmulator<'a> {
    circuit: &'a Circuit,
    config: ShmemConfig,
    sink: Box<dyn Sink>,
}

impl<'a> ShmemEmulator<'a> {
    /// Creates an emulator.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(circuit: &'a Circuit, config: ShmemConfig) -> Self {
        config.validate().expect("invalid shared-memory configuration");
        ShmemEmulator { circuit, config, sink: Box::new(NullSink) }
    }

    /// Routes emulation events (wire commits, rip-ups, iteration
    /// phases, stamped with logical-clock times) into `sink`.
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Self {
        self.sink = sink;
        self
    }

    /// Runs all iterations and returns the outcome.
    pub fn run(self) -> ShmemOutcome {
        let ShmemEmulator { circuit, config, sink } = self;
        let n_procs = config.n_procs;
        let n_wires = circuit.wire_count();
        let cfg = &config;

        let static_lists = cfg.scheduling.static_lists(circuit, n_procs);

        let trace_cell = cfg
            .collect_trace
            .then(|| RefCell::new(Trace::with_capacity(n_wires * 64 * cfg.params.iterations)));

        let mut shared = CostArray::new(circuit.channels, circuit.grids);
        let mut driver = IterationDriver::new(n_wires).with_obs(ObsEmitter::new(sink));
        let mut proc_of_wire: Vec<ProcId> = vec![0; n_wires];
        let mut procs: Vec<ProcState> = (0..n_procs)
            .map(|_| ProcState { clock: 0, pending: None, queue_pos: 0, at_barrier: false })
            .collect();
        // Logical processors are multiplexed on one OS thread, so one
        // pooled scratch serves them all; evaluation itself reads through
        // the per-cell `TracedView` path, keeping the reference trace
        // exact.
        let mut scratch = PooledScratch::take();

        for iteration in 0..cfg.params.iterations {
            let last_iteration = iteration + 1 == cfg.params.iterations;
            let begin_at = procs.iter().map(|s| s.clock).min().unwrap_or(0);
            driver.on_node(0);
            driver.phase_begin(Stamp::At(begin_at));
            let feed = WireFeed::new(n_wires, static_lists.as_deref());
            for p in procs.iter_mut() {
                p.queue_pos = 0;
                p.at_barrier = false;
            }

            loop {
                // Pick the processor with the earliest next event:
                // a pending commit, or a ready pick.
                let mut best: Option<(u64, ProcId)> = None;
                for (p, st) in procs.iter().enumerate() {
                    let key = match &st.pending {
                        Some(pend) => pend.commit_at,
                        None if !st.at_barrier => st.clock,
                        None => continue,
                    };
                    if best.is_none_or(|(k, _)| key < k) {
                        best = Some((key, p));
                    }
                }
                let Some((_, p)) = best else {
                    break; // everyone is at the barrier
                };

                if let Some(pend) = procs[p].pending.take() {
                    // Commit: apply the increments the other processors
                    // could not see during evaluation.
                    let mut t = pend.commit_at;
                    for &cell in pend.eval.route.cells() {
                        shared.add(cell, 1);
                        if let Some(trace) = &trace_cell {
                            trace.borrow_mut().push(
                                MemRef::new(
                                    t,
                                    p as u32,
                                    cell_addr(cell.channel, cell.x, circuit.grids),
                                    RefKind::Write,
                                )
                                .with_epoch(iteration as u32)
                                .with_wire(pend.wire as u32)
                                .with_delta(1)
                                .with_criticality(Criticality::Critical),
                            );
                        }
                        t += cfg.cell_write_ns;
                    }
                    procs[p].clock = t;
                    if last_iteration {
                        proc_of_wire[pend.wire] = p;
                    }
                    driver.on_node(p as u32);
                    driver.commit(
                        pend.wire,
                        pend.wire,
                        pend.eval,
                        pend.cost,
                        Stamp::At(pend.commit_at),
                    );
                    continue;
                }

                // Pick the next wire.
                let Some(wire_id) = feed.next(p, &mut procs[p].queue_pos) else {
                    procs[p].at_barrier = true;
                    continue;
                };
                procs[p].clock += cfg.dispatch_ns;

                // Rip up the previous route (§3), visible immediately.
                driver.on_node(p as u32);
                if let Some(old) = driver.rip_up(wire_id, wire_id, Stamp::At(procs[p].clock)) {
                    let mut t = procs[p].clock;
                    for &cell in old.cells() {
                        shared.add(cell, -1);
                        if let Some(trace) = &trace_cell {
                            trace.borrow_mut().push(
                                MemRef::new(
                                    t,
                                    p as u32,
                                    cell_addr(cell.channel, cell.x, circuit.grids),
                                    RefKind::Write,
                                )
                                .with_epoch(iteration as u32)
                                .with_wire(wire_id as u32)
                                .with_delta(-1)
                                .with_criticality(Criticality::Critical),
                            );
                        }
                        t += cfg.cell_write_ns;
                    }
                    procs[p].clock = t;
                }

                // Evaluate against the shared array as of this instant.
                let view = TracedView {
                    cost: &shared,
                    trace: trace_cell.as_ref(),
                    clock: Cell::new(procs[p].clock),
                    step_ns: cfg.cell_eval_ns,
                    proc: p as u32,
                    epoch: iteration as u32,
                    wire: wire_id as u32,
                };
                let eval = route_wire_scratch(
                    &view,
                    circuit.wire(wire_id),
                    cfg.params.channel_overshoot,
                    &mut scratch,
                );
                let eval_end = view.clock.get();
                // Occupancy: the merged route's cost against the shared
                // array at decision time (uninstrumented read — the
                // metric is not part of the application's references).
                let cost_at_decision = shared.route_cost(&eval.route);
                procs[p].pending = Some(Pending {
                    wire: wire_id,
                    eval,
                    cost: cost_at_decision,
                    commit_at: eval_end,
                });
            }

            // Barrier: everyone waits for the slowest processor.
            let max_clock = procs.iter().map(|s| s.clock).max().unwrap_or(0);
            for st in procs.iter_mut() {
                st.clock = max_clock;
            }
            driver.on_node(0);
            driver.phase_end(Stamp::At(max_clock));
            driver.close_iteration();
        }

        let completion = procs.iter().map(|s| s.clock).max().unwrap_or(0);
        let out = driver.finish(shared);
        // Evaluation reads go through the instrumented per-cell path, so
        // prefix activity here reflects only quality measurement — the
        // counters document that the trace path stays uncached.
        driver.on_node(0);
        driver.kernel_stats(Stamp::At(completion), out.cost.prefix_stats());

        let trace = trace_cell.map(|t| {
            let mut trace = t.into_inner();
            trace.sort_by_time();
            trace
        });

        ShmemOutcome {
            quality: out.quality,
            time_secs: completion as f64 / 1e9,
            routes: out.routes,
            proc_of_wire,
            work: out.work,
            occupancy_by_iteration: out.occupancy_by_iteration,
            cost: out.cost,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheduling;
    use locus_circuit::presets;
    use locus_router::{AssignmentStrategy, RouterParams, SequentialRouter};

    #[test]
    fn single_processor_matches_sequential_router() {
        let c = presets::small();
        let out = ShmemEmulator::new(&c, ShmemConfig::new(1)).run();
        let seq = SequentialRouter::new(&c, RouterParams::default()).run();
        assert_eq!(out.quality, seq.quality, "P=1 emulation must equal the sequential run");
        assert_eq!(out.routes, seq.routes);
    }

    #[test]
    fn emulation_is_deterministic() {
        let c = presets::small();
        let a = ShmemEmulator::new(&c, ShmemConfig::new(4)).run();
        let b = ShmemEmulator::new(&c, ShmemConfig::new(4)).run();
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.routes, b.routes);
        assert_eq!(a.time_secs, b.time_secs);
    }

    #[test]
    fn conservation_of_coverage() {
        let c = presets::small();
        let out = ShmemEmulator::new(&c, ShmemConfig::new(4)).run();
        let mut truth = CostArray::new(c.channels, c.grids);
        for r in &out.routes {
            truth.add_route(r);
        }
        assert_eq!(truth.circuit_height(), out.quality.circuit_height);
        // The outcome's own array must agree with the replay.
        assert_eq!(out.cost.circuit_height(), out.quality.circuit_height);
    }

    #[test]
    fn more_processors_run_faster_but_route_worse_or_equal() {
        let c = presets::bnr_e();
        let p1 = ShmemEmulator::new(&c, ShmemConfig::new(1)).run();
        let p16 = ShmemEmulator::new(&c, ShmemConfig::new(16)).run();
        assert!(
            p16.time_secs < p1.time_secs / 4.0,
            "16 processors must be much faster: {} vs {}",
            p16.time_secs,
            p1.time_secs
        );
        assert!(
            p16.quality.circuit_height >= p1.quality.circuit_height,
            "staleness cannot improve quality: {} vs {}",
            p16.quality.circuit_height,
            p1.quality.circuit_height
        );
    }

    #[test]
    fn trace_collection_records_reads_and_writes() {
        let c = presets::tiny();
        let out = ShmemEmulator::new(&c, ShmemConfig::new(2).with_trace()).run();
        let trace = out.trace.expect("trace requested");
        assert!(trace.is_sorted());
        assert!(trace.len() as u64 >= out.work.cells_examined);
        let writes = trace.write_count();
        assert_eq!(writes as u64, out.work.cells_written);
        // Addresses must stay within the shared cost array.
        let max_addr = (c.channels as u32 * c.grids as u32) * 2;
        assert!(trace.refs().iter().all(|r| r.addr < max_addr));
    }

    #[test]
    fn trace_tags_stores_critical_and_sweep_reads_background() {
        let c = presets::tiny();
        let out = ShmemEmulator::new(&c, ShmemConfig::new(2).with_trace()).run();
        let trace = out.trace.expect("trace requested");
        for r in trace.refs() {
            match r.kind {
                RefKind::Write => {
                    assert!(r.is_critical(), "rip-up/commit stores are critical");
                    assert_ne!(r.delta, 0, "every store carries its signed delta");
                }
                RefKind::Read => assert!(!r.is_critical(), "sweep reads are background"),
            }
        }
    }

    #[test]
    fn no_trace_by_default() {
        let c = presets::tiny();
        let out = ShmemEmulator::new(&c, ShmemConfig::new(2)).run();
        assert!(out.trace.is_none());
    }

    #[test]
    fn static_assignment_routes_every_wire() {
        let c = presets::small();
        let cfg = ShmemConfig::new(4)
            .with_static_assignment(AssignmentStrategy::Locality { threshold_cost: Some(30) });
        let out = ShmemEmulator::new(&c, cfg).run();
        assert_eq!(out.routes.len(), c.wire_count());
        let mut truth = CostArray::new(c.channels, c.grids);
        for r in &out.routes {
            truth.add_route(r);
        }
        assert_eq!(truth.circuit_height(), out.quality.circuit_height);
    }

    #[test]
    fn proc_of_wire_is_populated_for_static_runs() {
        let c = presets::small();
        let cfg = ShmemConfig::new(4).with_static_assignment(AssignmentStrategy::RoundRobin);
        let out = ShmemEmulator::new(&c, cfg).run();
        // Round robin: wire i routed by proc i mod 4 in every iteration.
        for (w, &p) in out.proc_of_wire.iter().enumerate() {
            assert_eq!(p, w % 4);
        }
    }

    #[test]
    fn sink_observes_every_commit_and_ripup() {
        use locus_obs::{names, SharedSink};
        let c = presets::small();
        let sink = SharedSink::new();
        let out =
            ShmemEmulator::new(&c, ShmemConfig::new(4)).with_sink(Box::new(sink.clone())).run();
        let m = sink.metrics_snapshot();
        assert_eq!(m.counter(names::WIRES_ROUTED), out.work.wires_routed);
        // Iterations ≥ 2, so every wire from iteration 1 is ripped up.
        assert!(m.counter(names::RIP_UPS) > 0);
        assert_eq!(m.counter(names::PHASES_BEGUN), ShmemConfig::new(4).params.iterations as u64);
        assert_eq!(m.counter(names::PHASES_BEGUN), m.counter(names::PHASES_ENDED));
    }

    #[test]
    fn occupancy_positive_on_contended_circuit() {
        let c = presets::small();
        let out = ShmemEmulator::new(&c, ShmemConfig::new(4)).run();
        assert!(out.quality.occupancy_factor > 0);
        // Every iteration's occupancy is recorded; the last is reported.
        assert_eq!(out.occupancy_by_iteration.len(), ShmemConfig::new(4).params.iterations);
        assert_eq!(out.quality.occupancy_factor, *out.occupancy_by_iteration.last().unwrap());
    }

    #[test]
    fn static_lists_resolution_matches_scheduling() {
        let c = presets::small();
        assert!(Scheduling::DynamicLoop.static_lists(&c, 4).is_none());
        let lists = Scheduling::Static(AssignmentStrategy::RoundRobin)
            .static_lists(&c, 4)
            .expect("static lists");
        assert_eq!(lists.len(), 4);
        assert_eq!(lists.iter().map(Vec::len).sum::<usize>(), c.wire_count());
    }
}
