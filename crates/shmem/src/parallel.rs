//! The real multithreaded shared-memory router.
//!
//! This is the §3 implementation run on actual hardware threads: the cost
//! array lives in atomics and is read and written **without locks**
//! ("accesses to the cost array are not locked" — collisions are rare and
//! the algorithm tolerates them), wires are handed out by a
//! distributed-loop shared counter or a static assignment, and processors
//! meet at a barrier between iterations.
//!
//! Thread interleavings make runs nondeterministic in the default
//! distributed-loop schedule, so this engine backs the wall-clock
//! speedup demonstration only; all table values come from the
//! deterministic emulator in [`crate::emul`]. (Under a static assignment
//! with shard ownership — see [`crate::shard`] — runs *are* bitwise
//! repeatable at any thread count.) Each thread routes through its own
//! [`IterationDriver`] ledger (route slots live outside the drivers,
//! shared under per-wire mutexes); ledgers are merged after the join.
//!
//! Untraced runs default to **per-shard cost-array ownership**: each
//! worker evaluates against a private replica with its own prefix caches
//! (fast spans, no false sharing) refreshed from the shared atomic truth
//! at iteration barriers. Traced runs keep the live per-cell shared-read
//! path so the recorded reference stream stays byte-exact.

use std::cell::{Cell, RefCell};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use locus_circuit::{Circuit, GridCell};
use locus_coherence::{MemRef, RefKind, Trace};
use locus_obs::SharedSink;
use locus_router::engine::{IterationDriver, ObsEmitter, Stamp, WireFeed};
use locus_router::router::{route_wire_scratch, PooledScratch};
use locus_router::{CostArray, CostView, PrefixStats, QualityMetrics, Route, WorkStats};
use parking_lot::Mutex;

use crate::cell_addr;
use crate::config::ShmemConfig;
use crate::shard::{AtomicCostArray, ShardWorker};

/// Wraps the shared atomic array with per-read trace recording for one
/// thread. Reads go through the per-cell [`CostView::cost_at`] default
/// paths, so the recorded stream is exactly the cells the evaluator
/// examined; stamps are wall-clock nanoseconds since run start.
struct TracingView<'a> {
    inner: &'a AtomicCostArray,
    trace: &'a RefCell<Trace>,
    start: Instant,
    proc: u32,
    epoch: Cell<u32>,
    wire: Cell<u32>,
}

impl TracingView<'_> {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn record_write(&self, cell: GridCell, delta: i8) {
        self.trace.borrow_mut().push(
            MemRef::new(
                self.now_ns(),
                self.proc,
                cell_addr(cell.channel, cell.x, self.inner.grids()),
                RefKind::Write,
            )
            .with_epoch(self.epoch.get())
            .with_wire(self.wire.get())
            .with_delta(delta),
        );
    }
}

impl CostView for TracingView<'_> {
    fn channels(&self) -> u16 {
        self.inner.channels()
    }
    fn grids(&self) -> u16 {
        self.inner.grids()
    }
    #[inline]
    fn cost_at(&self, cell: GridCell) -> u32 {
        self.trace.borrow_mut().push(
            MemRef::new(
                self.now_ns(),
                self.proc,
                cell_addr(cell.channel, cell.x, self.inner.grids()),
                RefKind::Read,
            )
            .with_epoch(self.epoch.get())
            .with_wire(self.wire.get()),
        );
        self.inner.cost_at(cell)
    }
}

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedOutcome {
    /// Circuit height and occupancy factor of the routed result.
    pub quality: QualityMetrics,
    /// Wall-clock duration of the routing phase.
    pub wall: Duration,
    /// Final route of every wire.
    pub routes: Vec<Route>,
    /// Aggregate routing work across all threads.
    pub work: WorkStats,
    /// Occupancy factor accumulated in each iteration (summed across
    /// threads; approximate under concurrent writes, like everything in
    /// this engine).
    pub occupancy_by_iteration: Vec<u64>,
    /// Final cost-array state (rebuilt from the final routes).
    pub cost: CostArray,
    /// The shared-reference trace, when collection was enabled
    /// (wall-clock stamps; merged across threads and time-sorted).
    pub trace: Option<Trace>,
}

/// Real-thread executor; see [module docs](self).
pub struct ThreadedRouter<'a> {
    circuit: &'a Circuit,
    config: ShmemConfig,
    obs: Option<SharedSink>,
}

impl<'a> ThreadedRouter<'a> {
    /// Creates an executor (`config.n_procs` = thread count; the
    /// emulator-only timing fields are ignored).
    pub fn new(circuit: &'a Circuit, config: ShmemConfig) -> Self {
        config.validate().expect("invalid shared-memory configuration");
        ThreadedRouter { circuit, config, obs: None }
    }

    /// Routes per-thread events (wire commits, rip-ups, iteration
    /// phases, stamped with wall-clock nanoseconds since run start)
    /// into `sink`. Each thread records through its own clone.
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.obs = Some(sink);
        self
    }

    /// Routes the circuit on `n_procs` OS threads.
    pub fn run(self) -> ThreadedOutcome {
        let n_threads = self.config.n_procs;
        let n_wires = self.circuit.wire_count();
        let iterations = self.config.params.iterations;
        let overshoot = self.config.params.channel_overshoot;

        let static_lists = self.config.scheduling.static_lists(self.circuit, n_threads);

        let shared = AtomicCostArray::new(self.circuit.channels, self.circuit.grids);
        let routes: Vec<Mutex<Option<Route>>> = (0..n_wires).map(|_| Mutex::new(None)).collect();
        // One wire supply per iteration (the distributed-loop counter
        // resets at each barrier).
        let feeds: Vec<WireFeed> =
            (0..iterations).map(|_| WireFeed::new(n_wires, static_lists.as_deref())).collect();
        let barrier = Barrier::new(n_threads);
        let ledgers: Mutex<Vec<(WorkStats, Vec<u64>)>> = Mutex::new(Vec::new());
        let collect_trace = self.config.collect_trace;
        // Traced runs must record the exact per-cell read stream, so they
        // keep the live shared-read path; everything else evaluates
        // against worker-owned replicas (see `crate::shard`).
        let shard_ownership = self.config.shard_ownership && !collect_trace;
        let thread_traces: Mutex<Vec<Trace>> = Mutex::new(Vec::new());

        // Wall-clock here is the measurement itself (it feeds the
        // reported route timings), not hidden nondeterminism.
        let start = Instant::now(); // lint: allow(determinism)
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let shared = &shared;
                let routes = &routes;
                let feeds = &feeds;
                let barrier = &barrier;
                let ledgers = &ledgers;
                let thread_traces = &thread_traces;
                let circuit = self.circuit;
                let obs = self.obs.clone();
                scope.spawn(move || {
                    let mut scratch = PooledScratch::take();
                    let mut worker =
                        shard_ownership.then(|| ShardWorker::new(circuit.channels, circuit.grids));
                    let emitter = match obs {
                        Some(sink) => ObsEmitter::new(Box::new(sink)),
                        None => ObsEmitter::disabled(),
                    }
                    .for_node(t as u32);
                    let mut driver = IterationDriver::new(0).with_obs(emitter);
                    let now = || Stamp::At(start.elapsed().as_nanos() as u64);
                    // Per-thread trace buffer: no cross-thread sharing on
                    // the hot path, merged under the ledger lock at exit.
                    let local = RefCell::new(Trace::new());
                    let traced = TracingView {
                        inner: shared,
                        trace: &local,
                        start,
                        proc: t as u32,
                        epoch: Cell::new(0),
                        wire: Cell::new(MemRef::NO_WIRE),
                    };
                    for (iteration, feed) in feeds.iter().enumerate() {
                        traced.epoch.set(iteration as u32);
                        if let Some(w) = worker.as_mut() {
                            // Snapshot the shared truth — quiet here: the
                            // previous iteration's exit barrier ordered
                            // every write before this point — then meet
                            // the other workers so nobody starts writing
                            // while a snapshot is still being taken.
                            w.refresh(shared);
                            barrier.wait();
                        }
                        let mut cursor = 0usize;
                        if t == 0 {
                            driver.phase_begin(now());
                        }
                        while let Some(wire_id) = feed.next(t, &mut cursor) {
                            traced.wire.set(wire_id as u32);
                            let mut slot = routes[wire_id].lock();
                            if let Some(old) = slot.take() {
                                driver.rip_up_external(wire_id, &old, now());
                                match worker.as_mut() {
                                    Some(w) => w.rip_up(shared, &old),
                                    None => shared.remove_route(&old),
                                }
                                if collect_trace {
                                    for &cell in old.cells() {
                                        traced.record_write(cell, -1);
                                    }
                                }
                            }
                            let eval = if collect_trace {
                                route_wire_scratch(
                                    &traced,
                                    circuit.wire(wire_id),
                                    overshoot,
                                    &mut scratch,
                                )
                            } else if let Some(w) = worker.as_ref() {
                                route_wire_scratch(
                                    &w.local,
                                    circuit.wire(wire_id),
                                    overshoot,
                                    &mut scratch,
                                )
                            } else {
                                route_wire_scratch(
                                    shared,
                                    circuit.wire(wire_id),
                                    overshoot,
                                    &mut scratch,
                                )
                            };
                            // Same occupancy definition as the other
                            // engines: merged-route cost at routing time.
                            // A sharded worker prices against its own
                            // replica (the view it decided on); otherwise
                            // against the live shared array (concurrent
                            // writes make that approximate, like
                            // everything here).
                            let at_decision = match worker.as_ref() {
                                Some(w) => w.local.route_cost(&eval.route),
                                None => shared.route_cost(&eval.route),
                            };
                            match worker.as_mut() {
                                Some(w) => w.commit(shared, &eval.route),
                                None => shared.add_route(&eval.route),
                            }
                            if collect_trace {
                                for &cell in eval.route.cells() {
                                    traced.record_write(cell, 1);
                                }
                            }
                            *slot = Some(driver.commit_external(wire_id, eval, at_decision, now()));
                        }
                        barrier.wait();
                        if t == 0 {
                            driver.phase_end(now());
                        }
                        driver.close_iteration();
                    }
                    let prefix = match worker.as_ref() {
                        Some(w) => w.local.prefix_stats(),
                        None => PrefixStats::default(),
                    };
                    driver.kernel_stats(now(), prefix);
                    ledgers.lock().push((*driver.work(), driver.occupancy_by_iteration().to_vec()));
                    if collect_trace {
                        thread_traces.lock().push(local.into_inner());
                    }
                });
            }
        });
        let wall = start.elapsed();

        let mut work = WorkStats::default();
        let mut occupancy_by_iteration = vec![0u64; iterations];
        for (w, occ) in ledgers.into_inner() {
            work += w;
            for (total, o) in occupancy_by_iteration.iter_mut().zip(occ) {
                *total += o;
            }
        }

        let routes: Vec<Route> =
            routes.into_iter().map(|m| m.into_inner().expect("every wire routed")).collect();
        let mut truth = CostArray::new(self.circuit.channels, self.circuit.grids);
        for r in &routes {
            truth.add_route(r);
        }
        let quality = QualityMetrics::from_final_state(
            &truth,
            occupancy_by_iteration.last().copied().unwrap_or(0),
        );
        let trace = collect_trace.then(|| {
            let mut merged = Trace::new();
            for t in thread_traces.into_inner() {
                for &r in t.refs() {
                    merged.push(r);
                }
            }
            merged.sort_by_time();
            merged
        });
        ThreadedOutcome { quality, wall, routes, work, occupancy_by_iteration, cost: truth, trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;
    use locus_router::{AssignmentStrategy, RouterParams, SequentialRouter};

    #[test]
    fn one_thread_matches_sequential_router() {
        let c = presets::small();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(1)).run();
        let seq = SequentialRouter::new(&c, RouterParams::default()).run();
        assert_eq!(out.quality, seq.quality);
        assert_eq!(out.routes, seq.routes);
        assert_eq!(out.work, seq.work, "one thread performs exactly the sequential work");
        assert_eq!(out.occupancy_by_iteration, seq.occupancy_by_iteration);
    }

    #[test]
    fn four_threads_route_everything_conservatively() {
        let c = presets::small();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(4)).run();
        assert_eq!(out.routes.len(), c.wire_count());
        let mut truth = CostArray::new(c.channels, c.grids);
        for r in &out.routes {
            truth.add_route(r);
        }
        assert_eq!(truth.circuit_height(), out.quality.circuit_height);
        assert!(out.wall > Duration::ZERO);
        // Every iteration routes every wire once, whatever the schedule.
        let iterations = ShmemConfig::new(4).params.iterations as u64;
        assert_eq!(out.work.wires_routed, c.wire_count() as u64 * iterations);
    }

    #[test]
    fn quality_stays_in_a_sane_band_under_races() {
        let c = presets::bnr_e();
        let seq = SequentialRouter::new(&c, RouterParams::default()).run();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(4)).run();
        // Concurrency costs quality but not catastrophically (§5.4 sees
        // 5–10% degradation at 16 processors).
        let h = out.quality.circuit_height as f64;
        let hs = seq.quality.circuit_height as f64;
        assert!(h <= hs * 1.5, "threaded height {h} vs sequential {hs}");
        assert!(h >= hs * 0.8, "threaded height {h} suspiciously better than {hs}");
    }

    #[test]
    fn threads_share_one_sink() {
        use locus_obs::{names, SharedSink};
        let c = presets::small();
        let sink = SharedSink::new();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(4)).with_sink(sink.clone()).run();
        assert_eq!(out.routes.len(), c.wire_count());
        let m = sink.metrics_snapshot();
        let iterations = ShmemConfig::new(4).params.iterations as u64;
        // Every iteration routes every wire exactly once, across threads.
        assert_eq!(m.counter(names::WIRES_ROUTED), c.wire_count() as u64 * iterations);
        assert_eq!(m.counter(names::PHASES_BEGUN), iterations);
        assert_eq!(m.counter(names::PHASES_ENDED), iterations);
    }

    #[test]
    fn trace_collection_on_threads_records_reads_and_writes() {
        let c = presets::small();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(2).with_trace()).run();
        let trace = out.trace.expect("trace requested");
        assert!(trace.is_sorted());
        // Every commit writes each route cell once; rip-ups add more.
        assert_eq!(trace.write_count() as u64, out.work.cells_written);
        assert!(trace.len() as u64 > out.work.cells_written);
        let max_addr = (c.channels as u32 * c.grids as u32) * 2;
        let iterations = ShmemConfig::new(2).params.iterations as u32;
        for r in trace.refs() {
            assert!(r.addr < max_addr);
            assert!(r.epoch < iterations);
            assert!((r.wire as usize) < c.wire_count());
        }
    }

    #[test]
    fn no_trace_on_threads_by_default() {
        let c = presets::tiny();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(2)).run();
        assert!(out.trace.is_none());
    }

    #[test]
    fn static_assignment_runs_on_threads() {
        let c = presets::small();
        let cfg = ShmemConfig::new(4)
            .with_static_assignment(AssignmentStrategy::Locality { threshold_cost: Some(30) });
        let out = ThreadedRouter::new(&c, cfg).run();
        assert_eq!(out.routes.len(), c.wire_count());
    }

    #[test]
    fn shard_ownership_with_static_assignment_is_deterministic() {
        // Worker replicas only see other workers' routes at iteration
        // barriers, so with a fixed wire assignment every decision is a
        // function of the schedule alone — bitwise repeatable at any P.
        let c = presets::small();
        let cfg = ShmemConfig::new(4).with_static_assignment(AssignmentStrategy::RoundRobin);
        let a = ThreadedRouter::new(&c, cfg).run();
        let b = ThreadedRouter::new(&c, cfg).run();
        assert_eq!(a.routes, b.routes);
        assert_eq!(a.quality, b.quality);
        assert_eq!(a.occupancy_by_iteration, b.occupancy_by_iteration);
    }

    #[test]
    fn shard_ownership_can_be_disabled() {
        let c = presets::small();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(2).without_shard_ownership()).run();
        assert_eq!(out.routes.len(), c.wire_count());
        let mut truth = CostArray::new(c.channels, c.grids);
        for r in &out.routes {
            truth.add_route(r);
        }
        assert_eq!(truth.circuit_height(), out.quality.circuit_height);
    }
}
