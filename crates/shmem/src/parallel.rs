//! The real multithreaded shared-memory router.
//!
//! This is the §3 implementation run on actual hardware threads: the cost
//! array lives in atomics and is read and written **without locks**
//! ("accesses to the cost array are not locked" — collisions are rare and
//! the algorithm tolerates them), wires are handed out by a
//! distributed-loop shared counter or a static assignment, and processors
//! meet at a barrier between iterations.
//!
//! Thread interleavings make runs nondeterministic, so this engine backs
//! the wall-clock speedup demonstration only; all table values come from
//! the deterministic emulator in [`crate::emul`].

use std::sync::atomic::{AtomicU16, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use locus_circuit::{Circuit, GridCell, WireId};
use locus_obs::{Event as ObsEvent, EventKind as ObsKind, SharedSink, Sink};
use locus_router::router::route_wire_scratch;
use locus_router::{assign, CostArray, CostView, EvalScratch, QualityMetrics, RegionMap, Route};
use parking_lot::Mutex;

use crate::config::{Scheduling, ShmemConfig};

/// The shared cost array in atomics; plain `Relaxed` loads and stores —
/// the data-race-free Rust rendering of the paper's unlocked array.
struct AtomicCostArray {
    channels: u16,
    grids: u16,
    cells: Vec<AtomicU16>,
}

impl AtomicCostArray {
    fn new(channels: u16, grids: u16) -> Self {
        let n = channels as usize * grids as usize;
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, || AtomicU16::new(0));
        AtomicCostArray { channels, grids, cells }
    }

    #[inline]
    fn index(&self, cell: GridCell) -> usize {
        cell.channel as usize * self.grids as usize + cell.x as usize
    }

    fn add_route(&self, route: &Route) {
        for &cell in route.cells() {
            self.cells[self.index(cell)].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn remove_route(&self, route: &Route) {
        for &cell in route.cells() {
            self.cells[self.index(cell)].fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl CostView for AtomicCostArray {
    fn channels(&self) -> u16 {
        self.channels
    }
    fn grids(&self) -> u16 {
        self.grids
    }
    #[inline]
    fn cost_at(&self, cell: GridCell) -> u32 {
        self.cells[self.index(cell)].load(Ordering::Relaxed) as u32
    }
}

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedOutcome {
    /// Circuit height and occupancy factor of the routed result.
    pub quality: QualityMetrics,
    /// Wall-clock duration of the routing phase.
    pub wall: Duration,
    /// Final route of every wire.
    pub routes: Vec<Route>,
}

/// Real-thread executor; see [module docs](self).
pub struct ThreadedRouter<'a> {
    circuit: &'a Circuit,
    config: ShmemConfig,
    obs: Option<SharedSink>,
}

impl<'a> ThreadedRouter<'a> {
    /// Creates an executor (`config.n_procs` = thread count; the
    /// emulator-only timing fields are ignored).
    pub fn new(circuit: &'a Circuit, config: ShmemConfig) -> Self {
        config.validate().expect("invalid shared-memory configuration");
        ThreadedRouter { circuit, config, obs: None }
    }

    /// Routes per-thread events (wire commits, rip-ups, iteration
    /// phases, stamped with wall-clock nanoseconds since run start)
    /// into `sink`. Each thread records through its own clone.
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.obs = Some(sink);
        self
    }

    /// Routes the circuit on `n_procs` OS threads.
    pub fn run(self) -> ThreadedOutcome {
        let n_threads = self.config.n_procs;
        let n_wires = self.circuit.wire_count();
        let iterations = self.config.params.iterations;
        let overshoot = self.config.params.channel_overshoot;

        let static_lists: Option<Vec<Vec<WireId>>> = match self.config.scheduling {
            Scheduling::DynamicLoop => None,
            Scheduling::Static(strategy) => {
                let regions = RegionMap::new(self.circuit.channels, self.circuit.grids, n_threads);
                Some(assign(self.circuit, &regions, strategy).wires_per_proc)
            }
        };

        let shared = AtomicCostArray::new(self.circuit.channels, self.circuit.grids);
        let routes: Vec<Mutex<Option<Route>>> = (0..n_wires).map(|_| Mutex::new(None)).collect();
        let occupancy = AtomicU64::new(0);
        let counters: Vec<AtomicUsize> = (0..iterations).map(|_| AtomicUsize::new(0)).collect();
        let barrier = Barrier::new(n_threads);

        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let shared = &shared;
                let routes = &routes;
                let occupancy = &occupancy;
                let counters = &counters;
                let barrier = &barrier;
                let circuit = self.circuit;
                let static_lists = static_lists.as_ref();
                let mut obs = self.obs.clone();
                scope.spawn(move || {
                    let mut scratch = EvalScratch::default();
                    let mut emit = |kind: ObsKind| {
                        if let Some(sink) = &mut obs {
                            sink.record(ObsEvent {
                                at_ns: start.elapsed().as_nanos() as u64,
                                node: t as u32,
                                kind,
                            });
                        }
                    };
                    for (iter, counter) in counters.iter().enumerate() {
                        let last = iter + 1 == iterations;
                        let mut local_pos = 0usize;
                        if t == 0 {
                            emit(ObsKind::PhaseBegin { name: "iteration" });
                        }
                        loop {
                            // Distributed loop or static list.
                            let wire_id = match static_lists {
                                None => {
                                    let w = counter.fetch_add(1, Ordering::Relaxed);
                                    if w >= n_wires {
                                        break;
                                    }
                                    w
                                }
                                Some(lists) => {
                                    if local_pos >= lists[t].len() {
                                        break;
                                    }
                                    let w = lists[t][local_pos];
                                    local_pos += 1;
                                    w
                                }
                            };

                            let mut slot = routes[wire_id].lock();
                            if let Some(old) = slot.take() {
                                emit(ObsKind::RipUp {
                                    wire: wire_id as u32,
                                    cells: old.len() as u32,
                                });
                                shared.remove_route(&old);
                            }
                            let eval = route_wire_scratch(
                                shared,
                                circuit.wire(wire_id),
                                overshoot,
                                &mut scratch,
                            );
                            if last {
                                // Same occupancy definition as the other
                                // engines: merged-route cost at routing
                                // time (concurrent writes make this
                                // approximate, like everything here).
                                occupancy
                                    .fetch_add(shared.route_cost(&eval.route), Ordering::Relaxed);
                            }
                            shared.add_route(&eval.route);
                            emit(ObsKind::WireRouted {
                                wire: wire_id as u32,
                                cells: eval.route.len() as u32,
                            });
                            *slot = Some(eval.route);
                        }
                        barrier.wait();
                        if t == 0 {
                            emit(ObsKind::PhaseEnd { name: "iteration" });
                        }
                    }
                });
            }
        });
        let wall = start.elapsed();

        let routes: Vec<Route> =
            routes.into_iter().map(|m| m.into_inner().expect("every wire routed")).collect();
        let mut truth = CostArray::new(self.circuit.channels, self.circuit.grids);
        for r in &routes {
            truth.add_route(r);
        }
        let quality = QualityMetrics::from_final_state(&truth, occupancy.load(Ordering::Relaxed));
        ThreadedOutcome { quality, wall, routes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;
    use locus_router::{AssignmentStrategy, RouterParams, SequentialRouter};

    #[test]
    fn one_thread_matches_sequential_router() {
        let c = presets::small();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(1)).run();
        let seq = SequentialRouter::new(&c, RouterParams::default()).run();
        assert_eq!(out.quality, seq.quality);
        assert_eq!(out.routes, seq.routes);
    }

    #[test]
    fn four_threads_route_everything_conservatively() {
        let c = presets::small();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(4)).run();
        assert_eq!(out.routes.len(), c.wire_count());
        let mut truth = CostArray::new(c.channels, c.grids);
        for r in &out.routes {
            truth.add_route(r);
        }
        assert_eq!(truth.circuit_height(), out.quality.circuit_height);
        assert!(out.wall > Duration::ZERO);
    }

    #[test]
    fn quality_stays_in_a_sane_band_under_races() {
        let c = presets::bnr_e();
        let seq = SequentialRouter::new(&c, RouterParams::default()).run();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(4)).run();
        // Concurrency costs quality but not catastrophically (§5.4 sees
        // 5–10% degradation at 16 processors).
        let h = out.quality.circuit_height as f64;
        let hs = seq.quality.circuit_height as f64;
        assert!(h <= hs * 1.5, "threaded height {h} vs sequential {hs}");
        assert!(h >= hs * 0.8, "threaded height {h} suspiciously better than {hs}");
    }

    #[test]
    fn threads_share_one_sink() {
        use locus_obs::{names, SharedSink};
        let c = presets::small();
        let sink = SharedSink::new();
        let out = ThreadedRouter::new(&c, ShmemConfig::new(4)).with_sink(sink.clone()).run();
        assert_eq!(out.routes.len(), c.wire_count());
        let m = sink.metrics_snapshot();
        let iterations = ShmemConfig::new(4).params.iterations as u64;
        // Every iteration routes every wire exactly once, across threads.
        assert_eq!(m.counter(names::WIRES_ROUTED), c.wire_count() as u64 * iterations);
        assert_eq!(m.counter(names::PHASES_BEGUN), iterations);
        assert_eq!(m.counter(names::PHASES_ENDED), iterations);
    }

    #[test]
    fn static_assignment_runs_on_threads() {
        let c = presets::small();
        let cfg = ShmemConfig::new(4)
            .with_static_assignment(AssignmentStrategy::Locality { threshold_cost: Some(30) });
        let out = ThreadedRouter::new(&c, cfg).run();
        assert_eq!(out.routes.len(), c.wire_count());
    }
}
