//! Shared-memory run configuration.

use locus_circuit::{Circuit, WireId};
use locus_router::{assign, AssignmentStrategy, RegionMap, RouterParams};

/// How wires are handed to processors (§3, §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// The original "distributed loop": a shared counter hands out the
    /// next wire to whichever processor asks first.
    DynamicLoop,
    /// Static assignment computed before routing (round robin or
    /// locality/ThresholdCost — the Table 5 sweep).
    Static(AssignmentStrategy),
}

impl Scheduling {
    /// Resolves the per-processor wire lists for a static assignment
    /// (`None` for the distributed loop). The region map used for
    /// locality-based assignment matches the message-passing mesh.
    pub fn static_lists(&self, circuit: &Circuit, n_procs: usize) -> Option<Vec<Vec<WireId>>> {
        match self {
            Scheduling::DynamicLoop => None,
            Scheduling::Static(strategy) => {
                let regions = RegionMap::new(circuit.channels, circuit.grids, n_procs);
                Some(assign(circuit, &regions, *strategy).wires_per_proc)
            }
        }
    }
}

/// Parameters of a shared-memory routing run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShmemConfig {
    /// Number of (logical or real) processors.
    pub n_procs: usize,
    /// Core routing parameters.
    pub params: RouterParams,
    /// Wire distribution strategy.
    pub scheduling: Scheduling,
    /// Modelled time to examine one cost-array cell (ns); the Multimax
    /// NS32032-class node of §2.1.
    pub cell_eval_ns: u64,
    /// Modelled time to write one cell (rip-up / commit).
    pub cell_write_ns: u64,
    /// Modelled overhead of fetching a wire index from the distributed
    /// loop (one shared counter RMW).
    pub dispatch_ns: u64,
    /// Whether the run records a Tango-style reference trace (honoured
    /// by both the emulator and the real threaded router).
    pub collect_trace: bool,
    /// Per-shard cost-array ownership for the real threaded router:
    /// workers evaluate against private replicas (own prefix caches,
    /// fast spans, no false sharing) refreshed from the shared atomics
    /// at iteration barriers. Ignored by the emulator; traced runs
    /// always use the live shared-read path regardless. On by default.
    pub shard_ownership: bool,
}

impl ShmemConfig {
    /// Default configuration for `n_procs` processors: dynamic loop, no
    /// trace collection.
    pub fn new(n_procs: usize) -> Self {
        ShmemConfig {
            n_procs,
            params: RouterParams::default(),
            scheduling: Scheduling::DynamicLoop,
            cell_eval_ns: 4_000,
            cell_write_ns: 500,
            dispatch_ns: 2_000,
            collect_trace: false,
            shard_ownership: true,
        }
    }

    /// Enables Tango trace collection.
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    /// Disables per-shard cost-array ownership: threads evaluate
    /// directly against the live shared atomics (the pre-shard
    /// behaviour, kept for A/B comparison in the sweeps).
    pub fn without_shard_ownership(mut self) -> Self {
        self.shard_ownership = false;
        self
    }

    /// Uses a static assignment instead of the distributed loop.
    pub fn with_static_assignment(mut self, strategy: AssignmentStrategy) -> Self {
        self.scheduling = Scheduling::Static(strategy);
        self
    }

    /// Overrides the router parameters.
    pub fn with_params(mut self, params: RouterParams) -> Self {
        self.params = params;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_procs == 0 {
            return Err("need at least one processor".into());
        }
        if self.n_procs > 64 {
            return Err("coherence directory supports at most 64 processors".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = ShmemConfig::new(16)
            .with_trace()
            .with_static_assignment(AssignmentStrategy::RoundRobin);
        assert!(c.collect_trace);
        assert_eq!(c.scheduling, Scheduling::Static(AssignmentStrategy::RoundRobin));
        c.validate().unwrap();
    }

    #[test]
    fn validation_bounds_processors() {
        assert!(ShmemConfig::new(0).validate().is_err());
        assert!(ShmemConfig::new(65).validate().is_err());
        assert!(ShmemConfig::new(64).validate().is_ok());
    }
}
