//! # locus-shmem
//!
//! The shared-memory implementation of LocusRoute (Martonosi & Gupta,
//! ICPP 1989 §3) plus the Tango-style tracing apparatus of §2.2.
//!
//! Two execution engines are provided:
//!
//! * [`ShmemEmulator`] — a **deterministic concurrency emulator**. Logical
//!   processors are multiplexed over one real thread with per-processor
//!   logical clocks, exactly as Tango multiplexed processes on a
//!   uniprocessor. A processor *evaluates* a wire against the shared cost
//!   array as of the evaluation instant but *commits* its increments only
//!   when its modelled routing time elapses — reproducing the staleness
//!   window ("the processors do not know about the work other processors
//!   are doing simultaneously", §1) that degrades quality as P grows.
//!   With tracing enabled it records every shared-data reference
//!   (time, processor, address, read/write) for the coherence model in
//!   `locus-coherence`. Used for every table value.
//! * [`ThreadedRouter`] — a **real multithreaded router**: the cost array
//!   lives in atomics, accessed without locks exactly as the original
//!   ("accesses to the cost array are not locked", §3), with a
//!   distributed-loop dynamic scheduler or a static assignment. Used to
//!   demonstrate genuine wall-clock speedup; never for table values
//!   (thread interleavings are nondeterministic).

pub mod config;
pub mod emul;
pub mod engine;
pub mod parallel;
pub(crate) mod shard;

pub use config::{Scheduling, ShmemConfig};
pub use emul::{ShmemEmulator, ShmemOutcome};
pub use engine::{EmulEngine, ThreadsEngine};
pub use parallel::{ThreadedOutcome, ThreadedRouter};

/// Byte address of a cost-array cell in the shared region (`u16` cells,
/// row-major) — the address stream the Tango traces record.
#[inline]
pub fn cell_addr(channel: u16, x: u16, grids: u16) -> u32 {
    (channel as u32 * grids as u32 + x as u32) * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_addresses_are_dense_u16_slots() {
        assert_eq!(cell_addr(0, 0, 341), 0);
        assert_eq!(cell_addr(0, 1, 341), 2);
        assert_eq!(cell_addr(1, 0, 341), 682);
        assert_eq!(cell_addr(2, 5, 341), (2 * 341 + 5) * 2);
    }
}
