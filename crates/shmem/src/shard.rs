//! Per-shard cost-array ownership for the real threaded router.
//!
//! The shared truth stays where the paper puts it — one flat array of
//! unlocked `u16` atomics — but every worker additionally **owns** a
//! private [`CostArray`] replica whose prefix caches it alone touches.
//! Evaluation reads the replica (fast spans, incremental watermark
//! patching, zero cache-line ping-pong), while commits and rip-ups are
//! applied to both the replica and the shared atomics, so the truth is
//! always the merge of every worker's writes.
//!
//! The ownership rules:
//!
//! * a worker's replica = a barrier-time snapshot of the shared array
//!   plus the worker's *own* writes since that snapshot;
//! * cross-worker visibility happens only at iteration barriers, when
//!   every worker refreshes its snapshot ([`ShardWorker::refresh`]) —
//!   within an iteration, other workers' routes are invisible (the
//!   paper's staleness tolerance, now explicit);
//! * nobody ever writes another worker's prefix caches, so the false
//!   sharing that plagued a shared cached array is gone by construction.
//!
//! Under a static wire assignment this makes a P-thread run
//! **deterministic**: every routing decision depends only on the
//! barrier snapshot and the worker's own committed writes, both of
//! which are fixed by the schedule; the shared atomics only ever absorb
//! commutative `+1`s whose matching `−1` (a rip-up in a later
//! iteration) is ordered after them by the barrier.

use std::sync::atomic::{AtomicU16, Ordering};

use locus_circuit::GridCell;
use locus_router::{CostArray, CostView, Route};

/// The shared cost array in atomics; plain `Relaxed` loads and stores —
/// the data-race-free Rust rendering of the paper's unlocked array.
pub(crate) struct AtomicCostArray {
    channels: u16,
    grids: u16,
    cells: Vec<AtomicU16>,
}

impl AtomicCostArray {
    pub(crate) fn new(channels: u16, grids: u16) -> Self {
        let n = channels as usize * grids as usize;
        let mut cells = Vec::with_capacity(n);
        cells.resize_with(n, || AtomicU16::new(0));
        AtomicCostArray { channels, grids, cells }
    }

    #[inline]
    fn index(&self, cell: GridCell) -> usize {
        cell.channel as usize * self.grids as usize + cell.x as usize
    }

    pub(crate) fn add_route(&self, route: &Route) {
        for &cell in route.cells() {
            self.cells[self.index(cell)].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn remove_route(&self, route: &Route) {
        for &cell in route.cells() {
            // Saturating decrement: a plain `fetch_sub` can wrap a cell
            // that a concurrent rip-up already drove to zero all the way
            // to 65535, poisoning every later cost evaluation. The RMW
            // keeps the cell pinned at zero instead, and debug builds
            // flag the occurrence (the race analyser classifies it as
            // quality-affecting from the trace).
            let prev = self.cells[self.index(cell)]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)))
                .expect("saturating decrement cannot fail");
            debug_assert!(
                prev != 0,
                "rip-up underflow: channel {} x {} decremented past zero",
                cell.channel,
                cell.x
            );
        }
    }
}

impl CostView for AtomicCostArray {
    fn channels(&self) -> u16 {
        self.channels
    }
    fn grids(&self) -> u16 {
        self.grids
    }
    #[inline]
    fn cost_at(&self, cell: GridCell) -> u32 {
        self.cells[self.index(cell)].load(Ordering::Relaxed) as u32
    }
}

/// One worker's owned shard view: a private replica (with private prefix
/// caches) over the shared atomic truth. See [module docs](self).
pub(crate) struct ShardWorker {
    /// The worker-owned replica; evaluation reads this (fast spans).
    pub(crate) local: CostArray,
}

impl ShardWorker {
    pub(crate) fn new(channels: u16, grids: u16) -> Self {
        ShardWorker { local: CostArray::new(channels, grids) }
    }

    /// Re-snapshots the replica from the shared truth (called between
    /// the iteration barriers, when no writes are in flight). Only
    /// changed cells touch the replica, so the prefix caches keep their
    /// valid prefixes across quiet regions of the surface.
    pub(crate) fn refresh(&mut self, shared: &AtomicCostArray) {
        for c in 0..shared.channels {
            for x in 0..shared.grids {
                let cell = GridCell::new(c, x);
                self.local.set(cell, shared.cost_at(cell) as u16);
            }
        }
    }

    /// Commits `route`: the replica and the shared truth both gain it.
    pub(crate) fn commit(&mut self, shared: &AtomicCostArray, route: &Route) {
        self.local.add_route(route);
        shared.add_route(route);
    }

    /// Rips `route` up from both the replica and the shared truth. The
    /// replica saturates at zero if it never saw the matching commit
    /// (possible only across refreshes, mirroring replica semantics in
    /// the message-passing engine).
    pub(crate) fn rip_up(&mut self, shared: &AtomicCostArray, route: &Route) {
        self.local.remove_route(route);
        shared.remove_route(route);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_router::Segment;

    fn route(c: u16, x1: u16, x2: u16) -> Route {
        Route::from_segments(vec![Segment::horizontal(c, x1, x2)])
    }

    #[test]
    fn commit_and_ripup_mirror_into_both_arrays() {
        let shared = AtomicCostArray::new(4, 10);
        let mut w = ShardWorker::new(4, 10);
        let r = route(1, 2, 6);
        w.commit(&shared, &r);
        for &cell in r.cells() {
            assert_eq!(w.local.get(cell), 1);
            assert_eq!(shared.cost_at(cell), 1);
        }
        w.rip_up(&shared, &r);
        assert!(w.local.is_zero());
        for &cell in r.cells() {
            assert_eq!(shared.cost_at(cell), 0);
        }
    }

    #[test]
    fn refresh_pulls_other_workers_routes() {
        let shared = AtomicCostArray::new(4, 10);
        let mut a = ShardWorker::new(4, 10);
        let mut b = ShardWorker::new(4, 10);
        a.commit(&shared, &route(0, 0, 3));
        b.commit(&shared, &route(0, 2, 5));
        // Before refresh, each replica only has its own route.
        assert_eq!(a.local.get(GridCell::new(0, 5)), 0);
        a.refresh(&shared);
        // After refresh, the replica equals the shared truth.
        assert_eq!(a.local.get(GridCell::new(0, 2)), 2);
        assert_eq!(a.local.get(GridCell::new(0, 5)), 1);
        assert_eq!(a.local.horizontal_cost(0, 0, 9), 2 + 2 + 2 + 1 + 1);
        a.local.validate_prefix_caches().expect("refresh keeps caches consistent");
    }

    #[test]
    fn replica_spans_match_shared_truth_after_mixed_traffic() {
        let shared = AtomicCostArray::new(6, 16);
        let mut a = ShardWorker::new(6, 16);
        let mut b = ShardWorker::new(6, 16);
        for i in 0..8u16 {
            a.commit(&shared, &route(i % 6, i, i + 4));
            b.commit(&shared, &route((i + 3) % 6, i, i + 7));
        }
        a.refresh(&shared);
        for c in 0..6u16 {
            let naive: u64 = (0..16u16).map(|x| shared.cost_at(GridCell::new(c, x)) as u64).sum();
            assert_eq!(a.local.horizontal_cost(c, 0, 15), naive, "channel {c}");
        }
        a.local.validate_prefix_caches().expect("caches consistent");
    }
}
