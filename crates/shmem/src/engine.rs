//! [`RoutingEngine`] adapters for the two shared-memory executors.

use locus_circuit::Circuit;
use locus_coherence::traffic_by_line_size;
use locus_router::engine::{EngineCtx, EngineRun, RoutingEngine};
use locus_router::router::RouteOutcome;
use locus_router::RouterParams;

use crate::config::ShmemConfig;
use crate::emul::ShmemEmulator;
use crate::parallel::ThreadedRouter;

/// Cache line size (bytes) at which the paper's §5.2 bus-traffic
/// comparison is made.
const COMPARE_LINE_BYTES: u32 = 8;

/// The deterministic shared-memory emulator as an engine
/// (`id = "shmem-emul"`). Traffic measurement runs the emulator with
/// Tango trace collection and reports Write-Back-with-Invalidate bus
/// megabytes at 8-byte cache lines.
pub struct EmulEngine;

impl RoutingEngine for EmulEngine {
    fn id(&self) -> &'static str {
        "shmem-emul"
    }

    fn route(&self, circuit: &Circuit, params: &RouterParams, ctx: &EngineCtx) -> EngineRun {
        let mut config = ShmemConfig::new(ctx.n_procs).with_params(*params);
        if ctx.measure_traffic {
            config = config.with_trace();
        }
        let mut emul = ShmemEmulator::new(circuit, config);
        if let Some(sink) = &ctx.sink {
            emul = emul.with_sink(Box::new(sink.clone()));
        }
        let out = emul.run();
        let mbytes = out
            .trace
            .as_ref()
            .map(|t| traffic_by_line_size(t, &[COMPARE_LINE_BYTES]).remove(0).1.mbytes());
        EngineRun {
            outcome: RouteOutcome {
                quality: out.quality,
                work: out.work,
                routes: out.routes,
                cost: out.cost,
                occupancy_by_iteration: out.occupancy_by_iteration,
            },
            mbytes,
            time_secs: Some(out.time_secs),
            degraded: false,
        }
    }
}

/// The real-thread executor as an engine (`id = "shmem-threads"`).
/// Nondeterministic; reports wall-clock seconds and never traffic.
pub struct ThreadsEngine;

impl RoutingEngine for ThreadsEngine {
    fn id(&self) -> &'static str {
        "shmem-threads"
    }

    fn route(&self, circuit: &Circuit, params: &RouterParams, ctx: &EngineCtx) -> EngineRun {
        let config = ShmemConfig::new(ctx.n_procs).with_params(*params);
        let mut router = ThreadedRouter::new(circuit, config);
        if let Some(sink) = &ctx.sink {
            router = router.with_sink(sink.clone());
        }
        let out = router.run();
        EngineRun {
            outcome: RouteOutcome {
                quality: out.quality,
                work: out.work,
                routes: out.routes,
                cost: out.cost,
                occupancy_by_iteration: out.occupancy_by_iteration,
            },
            mbytes: None,
            time_secs: Some(out.wall.as_secs_f64()),
            degraded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_circuit::presets;

    #[test]
    fn emul_engine_matches_direct_emulator() {
        let c = presets::small();
        let params = RouterParams::default();
        let run = EmulEngine.route(&c, &params, &EngineCtx::new(4));
        let direct = ShmemEmulator::new(&c, ShmemConfig::new(4)).run();
        assert_eq!(run.outcome.quality, direct.quality);
        assert_eq!(run.outcome.routes, direct.routes);
        assert_eq!(run.time_secs, Some(direct.time_secs));
        assert!(run.mbytes.is_none(), "traffic only measured when requested");
    }

    #[test]
    fn emul_engine_measures_traffic_on_request() {
        let c = presets::tiny();
        let params = RouterParams::default();
        let run = EmulEngine.route(&c, &params, &EngineCtx::new(2).with_traffic());
        assert!(run.mbytes.expect("traffic requested") > 0.0);
    }

    #[test]
    fn threads_engine_routes_everything() {
        let c = presets::small();
        let params = RouterParams::default();
        let run = ThreadsEngine.route(&c, &params, &EngineCtx::new(2));
        assert_eq!(run.outcome.routes.len(), c.wire_count());
        assert!(run.time_secs.expect("wall clock") > 0.0);
    }
}
