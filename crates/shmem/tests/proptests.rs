//! Property-based tests for the shared-memory engines over arbitrary
//! generated circuits.

use locus_circuit::{CircuitGenerator, GeneratorConfig};
use locus_router::{CostArray, RouterParams, SequentialRouter};
use locus_shmem::{ShmemConfig, ShmemEmulator};
use proptest::prelude::*;

fn arb_circuit() -> impl Strategy<Value = locus_circuit::Circuit> {
    (3u16..7, 16u16..64, 4usize..30, any::<u64>()).prop_map(|(channels, grids, wires, seed)| {
        CircuitGenerator::new(GeneratorConfig::for_surface("prop", channels, grids, wires, seed))
            .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The emulator conserves coverage on any circuit and processor
    /// count: the shared array equals the sum of the final routes.
    #[test]
    fn emulator_conserves_coverage(circuit in arb_circuit(), procs in 1usize..5) {
        let out = ShmemEmulator::new(&circuit, ShmemConfig::new(procs)).run();
        prop_assert_eq!(out.routes.len(), circuit.wire_count());
        let mut truth = CostArray::new(circuit.channels, circuit.grids);
        for r in &out.routes {
            truth.add_route(r);
        }
        prop_assert_eq!(truth.circuit_height(), out.quality.circuit_height);
    }

    /// P=1 emulation equals the sequential router for any circuit.
    #[test]
    fn emulator_single_proc_equivalence(circuit in arb_circuit()) {
        let out = ShmemEmulator::new(&circuit, ShmemConfig::new(1)).run();
        let seq = SequentialRouter::new(&circuit, RouterParams::default()).run();
        prop_assert_eq!(out.quality, seq.quality);
        prop_assert_eq!(out.routes, seq.routes);
    }

    /// Traces are time-sorted, stay within the shared region, and count
    /// exactly the work the emulator reports.
    #[test]
    fn trace_invariants(circuit in arb_circuit(), procs in 1usize..4) {
        let out = ShmemEmulator::new(&circuit, ShmemConfig::new(procs).with_trace()).run();
        let trace = out.trace.expect("trace requested");
        prop_assert!(trace.is_sorted());
        prop_assert_eq!(trace.write_count() as u64, out.work.cells_written);
        prop_assert_eq!(
            (trace.len() - trace.write_count()) as u64,
            out.work.cells_examined
        );
        let limit = circuit.channels as u32 * circuit.grids as u32 * 2;
        for r in trace.refs() {
            prop_assert!(r.addr < limit);
            prop_assert!((r.proc as usize) < procs);
        }
    }

    /// Emulated time shrinks (weakly) as processors are added — the
    /// barrier waits for the slowest, but total work is divided.
    #[test]
    fn emulated_time_monotone_in_procs(circuit in arb_circuit()) {
        let t1 = ShmemEmulator::new(&circuit, ShmemConfig::new(1)).run().time_secs;
        let t4 = ShmemEmulator::new(&circuit, ShmemConfig::new(4)).run().time_secs;
        prop_assert!(t4 <= t1 * 1.05, "t4 {t4} vs t1 {t1}");
    }
}
