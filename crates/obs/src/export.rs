//! Exporters: Chrome trace-event JSON, flat metrics JSON, and ASCII
//! per-node timelines.
//!
//! All JSON is hand-rolled — the workspace deliberately omits `serde`
//! (DESIGN §7); the formats here are small enough that a formatter and
//! an escaping function cover them.

use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::metrics::{bucket_hi, bucket_lo, Histogram, MetricsSnapshot};

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `events` in the Chrome `chrome://tracing` trace-event format:
/// a JSON array of event objects, loadable directly by `chrome://tracing`
/// or Perfetto.
///
/// Mapping: each node becomes a thread (`tid`) of one process;
/// [`EventKind::PhaseBegin`]/[`EventKind::PhaseEnd`] become duration
/// slices (`ph: "B"/"E"`), everything else becomes a thread-scoped
/// instant event (`ph: "i"`) whose payload rides in `args`. Timestamps
/// are microseconds as the format requires.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 110 + 64);
    out.push('[');
    let mut first = true;
    let mut push = |out: &mut String, obj: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  ");
        out.push_str(&obj);
    };

    // Name the threads after their nodes so traces are self-describing.
    if let Some(max) = events.iter().map(|e| e.node).max() {
        for n in 0..=max {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{n},\
                     \"args\":{{\"name\":\"node {n}\"}}}}"
                ),
            );
        }
    }

    for ev in events {
        let ts = ev.at_ns as f64 / 1000.0;
        let tid = ev.node;
        let obj = match ev.kind {
            EventKind::PhaseBegin { name } => format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"B\",\"ts\":{ts:.3},\
                 \"pid\":0,\"tid\":{tid}}}",
                json_escape(name)
            ),
            EventKind::PhaseEnd { name } => format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"E\",\"ts\":{ts:.3},\
                 \"pid\":0,\"tid\":{tid}}}",
                json_escape(name)
            ),
            kind => {
                let args = match kind {
                    EventKind::PacketSent { dst, payload_bytes, wire_bytes, hops } => format!(
                        "{{\"dst\":{dst},\"payload_bytes\":{payload_bytes},\
                         \"wire_bytes\":{wire_bytes},\"hops\":{hops}}}"
                    ),
                    EventKind::PacketDelivered { src, payload_bytes, latency_ns, queue_depth } => {
                        format!(
                            "{{\"src\":{src},\"payload_bytes\":{payload_bytes},\
                         \"latency_ns\":{latency_ns},\"queue_depth\":{queue_depth}}}"
                        )
                    }
                    EventKind::ChannelContended { channel, stall_ns } => {
                        format!("{{\"channel\":{channel},\"stall_ns\":{stall_ns}}}")
                    }
                    EventKind::WireRouted { wire, cells } | EventKind::RipUp { wire, cells } => {
                        format!("{{\"wire\":{wire},\"cells\":{cells}}}")
                    }
                    EventKind::CacheMiss { addr, line_bytes } => {
                        format!("{{\"addr\":{addr},\"line_bytes\":{line_bytes}}}")
                    }
                    EventKind::Invalidation { addr, copies } => {
                        format!("{{\"addr\":{addr},\"copies\":{copies}}}")
                    }
                    EventKind::BusTransfer { bytes } => format!("{{\"bytes\":{bytes}}}"),
                    EventKind::MemRequest { resource, bytes, critical } => {
                        format!(
                            "{{\"resource\":{resource},\"bytes\":{bytes},\
                             \"critical\":{critical}}}"
                        )
                    }
                    EventKind::KernelStats {
                        candidates,
                        prefix_hits,
                        prefix_rebuilds,
                        prefix_patches,
                        prefix_invalidations,
                        prefix_fallbacks,
                        percell_evals,
                    } => format!(
                        "{{\"candidates\":{candidates},\"prefix_hits\":{prefix_hits},\
                         \"prefix_rebuilds\":{prefix_rebuilds},\
                         \"prefix_patches\":{prefix_patches},\
                         \"prefix_invalidations\":{prefix_invalidations},\
                         \"prefix_fallbacks\":{prefix_fallbacks},\
                         \"percell_evals\":{percell_evals}}}"
                    ),
                    EventKind::PercellFallback { wire } => format!("{{\"wire\":{wire}}}"),
                    EventKind::RaceDetected { addr, wire, benign } => {
                        format!("{{\"addr\":{addr},\"wire\":{wire},\"benign\":{benign}}}")
                    }
                    EventKind::ReplicaAudit { diverged_cells, max_divergence, mean_age_ns } => {
                        format!(
                            "{{\"diverged_cells\":{diverged_cells},\
                             \"max_divergence\":{max_divergence},\"mean_age_ns\":{mean_age_ns}}}"
                        )
                    }
                    EventKind::FaultInjected { dst, payload_bytes, fault, extra_ns } => {
                        format!(
                            "{{\"dst\":{dst},\"payload_bytes\":{payload_bytes},\
                             \"fault\":\"{}\",\"extra_ns\":{extra_ns}}}",
                            fault.name()
                        )
                    }
                    EventKind::PacketRetransmitted { dst, seq, attempt } => {
                        format!("{{\"dst\":{dst},\"seq\":{seq},\"attempt\":{attempt}}}")
                    }
                    EventKind::AckSent { dst, cum_seq } => {
                        format!("{{\"dst\":{dst},\"cum_seq\":{cum_seq}}}")
                    }
                    EventKind::WatchdogRecovery { wire } => format!("{{\"wire\":{wire}}}"),
                    EventKind::JobEnqueued { job, queue_depth } => {
                        format!("{{\"job\":{job},\"queue_depth\":{queue_depth}}}")
                    }
                    EventKind::JobDispatched { job, queued_ms } => {
                        format!("{{\"job\":{job},\"queued_ms\":{queued_ms}}}")
                    }
                    EventKind::JobCompleted { job, service_ms } => {
                        format!("{{\"job\":{job},\"service_ms\":{service_ms}}}")
                    }
                    EventKind::JobShed { job } => format!("{{\"job\":{job}}}"),
                    EventKind::JobRejected { job, retry_ms } => {
                        format!("{{\"job\":{job},\"retry_ms\":{retry_ms}}}")
                    }
                    EventKind::NodeCrashed { will_restart } => {
                        format!("{{\"will_restart\":{will_restart}}}")
                    }
                    EventKind::NodeRestarted { downtime_ns } => {
                        format!("{{\"downtime_ns\":{downtime_ns}}}")
                    }
                    EventKind::CheckpointTaken { bytes } => format!("{{\"bytes\":{bytes}}}"),
                    EventKind::WireReassigned { wire, from, to } => {
                        format!("{{\"wire\":{wire},\"from\":{from},\"to\":{to}}}")
                    }
                    EventKind::CoordinatorFailover { new_coordinator } => {
                        format!("{{\"new_coordinator\":{new_coordinator}}}")
                    }
                    EventKind::JobRetried { job, attempt } => {
                        format!("{{\"job\":{job},\"attempt\":{attempt}}}")
                    }
                    EventKind::BreakerTripped { class } => format!("{{\"class\":{class}}}"),
                    EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. } => unreachable!(),
                };
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{ts:.3},\"pid\":0,\"tid\":{tid},\"args\":{args}}}",
                    ev.kind.name()
                )
            }
        };
        push(&mut out, obj);
    }
    out.push_str("\n]\n");
    out
}

fn histogram_json(h: &Histogram) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\
         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
    );
    let mut first = true;
    for (i, &c) in h.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{{\"lo\":{},\"hi\":{},\"count\":{c}}}", bucket_lo(i), bucket_hi(i));
    }
    out.push_str("]}");
    out
}

/// Renders a metrics snapshot as a flat JSON object:
/// `{"counters": {...}, "histograms": {...}}`.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, value) in &snap.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {value}", json_escape(name));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let mut first = true;
    for (name, h) in &snap.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), histogram_json(h));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Timeline glyphs in priority order (later events in the same cell win
/// only against lower-priority glyphs).
fn glyph(kind: &EventKind) -> (char, u8) {
    match kind {
        EventKind::RaceDetected { .. } => ('R', 8),
        EventKind::WatchdogRecovery { .. } => ('G', 8),
        EventKind::RipUp { .. } => ('X', 7),
        EventKind::FaultInjected { .. } => ('F', 6),
        EventKind::WireRouted { .. } => ('W', 6),
        EventKind::ChannelContended { .. } => ('C', 5),
        EventKind::PacketSent { .. } => ('S', 4),
        EventKind::PacketRetransmitted { .. } => ('T', 4),
        EventKind::PacketDelivered { .. } => ('D', 3),
        EventKind::CacheMiss { .. } => ('M', 3),
        EventKind::ReplicaAudit { .. } => ('A', 2),
        EventKind::Invalidation { .. } => ('I', 2),
        EventKind::BusTransfer { .. } => ('B', 1),
        EventKind::MemRequest { .. } => ('m', 1),
        EventKind::KernelStats { .. } => ('K', 1),
        EventKind::PercellFallback { .. } => ('P', 5),
        EventKind::AckSent { .. } => ('a', 1),
        EventKind::JobShed { .. } => ('L', 7),
        EventKind::JobRejected { .. } => ('r', 5),
        EventKind::JobCompleted { .. } => ('J', 4),
        EventKind::JobDispatched { .. } => ('>', 3),
        EventKind::JobEnqueued { .. } => ('j', 2),
        EventKind::NodeCrashed { .. } => ('!', 9),
        EventKind::NodeRestarted { .. } => ('^', 9),
        EventKind::CoordinatorFailover { .. } => ('O', 9),
        EventKind::WireReassigned { .. } => ('N', 8),
        EventKind::CheckpointTaken { .. } => ('c', 2),
        EventKind::JobRetried { .. } => ('y', 5),
        EventKind::BreakerTripped { .. } => ('Z', 8),
        EventKind::PhaseBegin { .. } | EventKind::PhaseEnd { .. } => ('|', 0),
    }
}

/// Renders an ASCII per-node timeline plus a per-node summary table.
///
/// Time is scaled onto `width` columns; each cell shows the
/// highest-priority event that landed in it (`R` race, `X` rip-up,
/// `W` wire routed, `C` contention, `S` sent, `D` delivered, `M` cache
/// miss, `A` replica audit, `I` invalidation, `B` bus transfer,
/// `|` phase boundary).
pub fn ascii_timeline(events: &[Event], width: usize) -> String {
    let width = width.max(10);
    if events.is_empty() {
        return "(no events)\n".to_string();
    }
    let n_nodes = events.iter().map(|e| e.node).max().expect("events nonempty") as usize + 1;
    let t_max = events.iter().map(|e| e.at_ns).max().expect("events nonempty").max(1);

    let mut rows = vec![vec![(' ', 0u8); width]; n_nodes];
    let mut sent = vec![0u64; n_nodes];
    let mut bytes = vec![0u64; n_nodes];
    let mut routed = vec![0u64; n_nodes];
    let mut ripped = vec![0u64; n_nodes];
    let mut total = vec![0u64; n_nodes];

    for ev in events {
        let node = ev.node as usize;
        let col = ((ev.at_ns as u128 * (width as u128 - 1)) / t_max as u128) as usize;
        let (ch, pri) = glyph(&ev.kind);
        if pri >= rows[node][col].1 {
            rows[node][col] = (ch, pri);
        }
        total[node] += 1;
        match ev.kind {
            EventKind::PacketSent { payload_bytes, .. } => {
                sent[node] += 1;
                bytes[node] += payload_bytes as u64;
            }
            EventKind::WireRouted { .. } => routed[node] += 1,
            EventKind::RipUp { .. } => ripped[node] += 1,
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "timeline 0..{t_max} ns ({width} cols)");
    for (n, row) in rows.iter().enumerate() {
        let line: String = row.iter().map(|&(c, _)| c).collect();
        let _ = writeln!(out, "node {n:>3} |{line}|");
    }
    out.push_str("legend: R race  G watchdog  X ripup  F fault  W routed  C contention  ");
    out.push_str("S sent  T resent  D delivered  M miss  A audit  I inval  B bus  ");
    out.push_str("a ack  j job-enq  > job-disp  J job-done  L job-shed  r job-rej  | phase\n\n");
    let _ = writeln!(
        out,
        "{:>5} {:>8} {:>8} {:>8} {:>12} {:>8}",
        "node", "events", "routed", "ripups", "bytes_sent", "packets"
    );
    for n in 0..n_nodes {
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>8} {:>8} {:>12} {:>8}",
            n, total[n], routed[n], ripped[n], bytes[n], sent[n]
        );
    }
    out
}

/// Checks that `s` is one syntactically valid JSON value (with optional
/// trailing whitespace). Returns the parse error position and message on
/// failure.
///
/// This is a validator, not a parser — exporter tests and callers use it
/// to guarantee the hand-rolled output is loadable.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }
    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        skip_ws(b, pos);
        let Some(&c) = b.get(*pos) else {
            return Err(format!("unexpected end of input at {pos}"));
        };
        match c {
            b'{' => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, pos);
                    string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(format!("expected ':' at {pos}"));
                    }
                    *pos += 1;
                    value(b, pos)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or '}}' at {pos}")),
                    }
                }
            }
            b'[' => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(());
                }
                loop {
                    value(b, pos)?;
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(());
                        }
                        _ => return Err(format!("expected ',' or ']' at {pos}")),
                    }
                }
            }
            b'"' => string(b, pos),
            b't' => literal(b, pos, "true"),
            b'f' => literal(b, pos, "false"),
            b'n' => literal(b, pos, "null"),
            b'-' | b'0'..=b'9' => number(b, pos),
            other => Err(format!("unexpected byte {:?} at {pos}", other as char)),
        }
    }
    fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit} at {pos}"))
        }
    }
    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at {pos}"));
        }
        *pos += 1;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            for i in 1..=4 {
                                if !b.get(*pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                    return Err(format!("bad \\u escape at {pos}"));
                                }
                            }
                            *pos += 5;
                        }
                        _ => return Err(format!("bad escape at {pos}")),
                    }
                }
                0x00..=0x1f => return Err(format!("raw control char in string at {pos}")),
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }
    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits = |b: &[u8], pos: &mut usize| {
            let s = *pos;
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            *pos > s
        };
        if !digits(b, pos) {
            return Err(format!("bad number at {start}"));
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !digits(b, pos) {
                return Err(format!("bad fraction at {start}"));
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !digits(b, pos) {
                return Err(format!("bad exponent at {start}"));
            }
        }
        Ok(())
    }

    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at {pos}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{names, Metrics};

    fn sample_events() -> Vec<Event> {
        vec![
            Event { at_ns: 0, node: 0, kind: EventKind::PhaseBegin { name: "iteration" } },
            Event {
                at_ns: 100,
                node: 0,
                kind: EventKind::PacketSent { dst: 1, payload_bytes: 40, wire_bytes: 44, hops: 2 },
            },
            Event {
                at_ns: 600,
                node: 1,
                kind: EventKind::PacketDelivered {
                    src: 0,
                    payload_bytes: 40,
                    latency_ns: 500,
                    queue_depth: 1,
                },
            },
            Event { at_ns: 700, node: 1, kind: EventKind::RipUp { wire: 3, cells: 12 } },
            Event { at_ns: 900, node: 1, kind: EventKind::WireRouted { wire: 3, cells: 14 } },
            Event {
                at_ns: 950,
                node: 0,
                kind: EventKind::ChannelContended { channel: 2, stall_ns: 30 },
            },
            Event { at_ns: 960, node: 2, kind: EventKind::CacheMiss { addr: 64, line_bytes: 8 } },
            Event { at_ns: 970, node: 2, kind: EventKind::Invalidation { addr: 64, copies: 3 } },
            Event { at_ns: 980, node: 2, kind: EventKind::BusTransfer { bytes: 8 } },
            Event {
                at_ns: 985,
                node: 1,
                kind: EventKind::RaceDetected { addr: 64, wire: 3, benign: true },
            },
            Event {
                at_ns: 990,
                node: 2,
                kind: EventKind::ReplicaAudit {
                    diverged_cells: 5,
                    max_divergence: 2,
                    mean_age_ns: 1200,
                },
            },
            Event { at_ns: 1000, node: 0, kind: EventKind::PhaseEnd { name: "iteration" } },
        ]
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{08}\u{0c}\r"), "\\b\\f\\r");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
        assert_eq!(json_escape("unicode ✓ kept"), "unicode ✓ kept");
    }

    #[test]
    fn escaped_strings_validate_as_json() {
        for nasty in ["a\"b\\c", "\n\r\t", "\u{01}\u{1f}", "mixed ✓ \"x\"\n"] {
            let json = format!("\"{}\"", json_escape(nasty));
            validate_json(&json).unwrap_or_else(|e| panic!("{nasty:?} -> {e}"));
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("[]").unwrap();
        validate_json(" {\"a\": [1, 2.5, -3e4, true, false, null, \"s\"]} ").unwrap();
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1] extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_err() || validate_json("01").is_ok()); // lenient on leading zeros
    }

    #[test]
    fn chrome_trace_is_valid_json_array() {
        let trace = chrome_trace(&sample_events());
        validate_json(&trace).expect("chrome trace must be valid JSON");
        assert!(trace.trim_start().starts_with('['));
        assert!(trace.trim_end().ends_with(']'));
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"ph\":\"E\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"tid\":2"));
    }

    #[test]
    fn chrome_trace_of_nothing_is_empty_array() {
        validate_json(&chrome_trace(&[])).unwrap();
    }

    #[test]
    fn metrics_json_is_valid_and_carries_counters() {
        let mut m = Metrics::new();
        for ev in sample_events() {
            m.observe(&ev);
        }
        let json = metrics_json(&m.snapshot());
        validate_json(&json).expect("metrics JSON must be valid");
        assert!(json.contains("\"bytes_sent\": 40"));
        assert!(json.contains("\"latency_ns\""));
        assert_eq!(m.counter(names::INVALIDATIONS), 3);
    }

    #[test]
    fn ascii_timeline_renders_every_node() {
        let text = ascii_timeline(&sample_events(), 40);
        assert!(text.contains("node   0"));
        assert!(text.contains("node   2"));
        assert!(text.contains('W'));
        assert!(text.contains('X'));
        assert!(text.contains("legend"));
        assert_eq!(ascii_timeline(&[], 40), "(no events)\n");
    }
}
