//! The typed event vocabulary shared by every simulator layer.
//!
//! One `Event` is one observable occurrence: a packet entering the mesh,
//! a wire committing to the cost array, a cache line bouncing between
//! processors. Every event is stamped with the layer's notion of time
//! (simulated nanoseconds for the mesh and emulators, wall nanoseconds
//! for the threaded executor, work-units for the sequential router) and
//! the node/processor it happened on, so traces from different engines
//! render the same way.

/// Identifies a mesh node, logical processor, or OS thread.
pub type NodeId = u32;

/// Which failure the mesh fault layer injected into a delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The envelope was silently discarded after injection.
    Drop,
    /// A second copy of the envelope was injected behind the first.
    Duplicate,
    /// The envelope's arrival was pushed back by extra latency.
    Delay,
    /// The envelope was held long enough for later traffic to overtake it.
    Reorder,
}

impl FaultKind {
    /// Short stable name (used by exporters).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
        }
    }
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A packet was injected into the network by `Event::node`.
    PacketSent {
        /// Destination node.
        dst: NodeId,
        /// Application payload bytes.
        payload_bytes: u32,
        /// Payload plus framing as it travels the wire.
        wire_bytes: u32,
        /// Mesh distance to the destination.
        hops: u16,
    },
    /// A packet arrived at `Event::node`.
    PacketDelivered {
        /// Sending node.
        src: NodeId,
        /// Application payload bytes.
        payload_bytes: u32,
        /// Injection-to-arrival time.
        latency_ns: u64,
        /// Inbox depth at the receiver after this packet was queued.
        queue_depth: u32,
    },
    /// A packet's header stalled on a busy channel (wormhole blocking).
    ChannelContended {
        /// The contended unidirectional channel.
        channel: u32,
        /// How long the header waited.
        stall_ns: u64,
    },
    /// A wire's route was committed by `Event::node`.
    WireRouted {
        /// Wire id.
        wire: u32,
        /// Cells the committed route covers.
        cells: u32,
    },
    /// A previous route was ripped up before re-routing.
    RipUp {
        /// Wire id.
        wire: u32,
        /// Cells the removed route covered.
        cells: u32,
    },
    /// A cache miss forced a line fetch for `Event::node`.
    CacheMiss {
        /// Word address of the access.
        addr: u32,
        /// Bytes moved to service the miss.
        line_bytes: u32,
    },
    /// A write invalidated other processors' copies of a line.
    Invalidation {
        /// Word address of the write.
        addr: u32,
        /// Copies invalidated.
        copies: u32,
    },
    /// Bytes crossed the shared bus.
    BusTransfer {
        /// Bytes moved.
        bytes: u32,
    },
    /// A memory-system backend sent a request to a contended service
    /// point (the bus, a directory home node, an LLC home tile).
    MemRequest {
        /// The service point the request queued on (bus = 0, otherwise a
        /// home node/tile id).
        resource: u32,
        /// Payload bytes the request moves.
        bytes: u32,
        /// Whether the request is on the router's critical path (rip-up /
        /// commit stores) rather than speculative sweep traffic.
        critical: bool,
    },
    /// A named phase (iteration, assignment, …) began on `Event::node`.
    PhaseBegin {
        /// Phase name; rendered as a duration slice in Chrome traces.
        name: &'static str,
    },
    /// The matching phase ended.
    PhaseEnd {
        /// Phase name.
        name: &'static str,
    },
    /// End-of-run counters from the routing evaluation kernel (emitted
    /// once per engine run that owns a `CostArray`).
    KernelStats {
        /// Candidate routes examined over the whole run.
        candidates: u64,
        /// Span queries answered from a fully valid prefix-sum cache line.
        prefix_hits: u64,
        /// Prefix-sum cache lines built cold (never materialized before).
        prefix_rebuilds: u64,
        /// Prefix-sum cache lines incrementally patched past their
        /// watermark instead of rebuilt.
        prefix_patches: u64,
        /// Watermark clamps caused by cost-array writes.
        prefix_invalidations: u64,
        /// Row-maximum rescans forced by a write lowering the maximum.
        prefix_fallbacks: u64,
        /// Route evaluations that took the per-cell span fallback (the
        /// view lacked fast spans); nonzero means the run was not on the
        /// optimized kernel path.
        percell_evals: u64,
    },
    /// First time in a run a route evaluation fell back to per-cell span
    /// queries (emitted once so traced/instrumented runs cannot
    /// masquerade as optimized ones).
    PercellFallback {
        /// Wire whose evaluation first took the fallback.
        wire: u32,
    },
    /// The race analyser confirmed an unsynchronized conflicting access
    /// pair on a cost-array cell (one event per deduplicated race).
    RaceDetected {
        /// Byte address of the racing cell.
        addr: u32,
        /// Wire whose route decision read or wrote the cell (the later
        /// access of the pair).
        wire: u32,
        /// Whether re-evaluating the route under either access order
        /// yields the same decision (benign) or not (quality-affecting).
        benign: bool,
    },
    /// A message-passing node compared its cost-array replica against
    /// the ground-truth array (one event per audit stamp).
    ReplicaAudit {
        /// Cells whose replica value differed from the truth.
        diverged_cells: u32,
        /// Largest absolute per-cell divergence seen in this audit.
        max_divergence: u32,
        /// Mean staleness age of the diverged cells (ns since the truth
        /// cell last changed).
        mean_age_ns: u64,
    },
    /// The mesh fault layer injected a failure into a delivery from
    /// `Event::node`.
    FaultInjected {
        /// Destination node of the afflicted envelope.
        dst: NodeId,
        /// Application payload bytes of the afflicted envelope.
        payload_bytes: u32,
        /// Which failure was injected.
        fault: FaultKind,
        /// Extra latency added (delay/reorder holds; 0 for drop/duplicate).
        extra_ns: u64,
    },
    /// The reliability layer re-sent an unacknowledged frame.
    PacketRetransmitted {
        /// Destination node.
        dst: NodeId,
        /// Sequence number of the retransmitted frame.
        seq: u32,
        /// Retransmission attempt (1 = first resend).
        attempt: u32,
    },
    /// The reliability layer sent a cumulative acknowledgement.
    AckSent {
        /// Destination node (the original sender being acked).
        dst: NodeId,
        /// All sequence numbers below this were received and applied.
        cum_seq: u32,
    },
    /// The watchdog routed a wire locally after the network run ended
    /// without it (deadlock or event-limit degradation).
    WatchdogRecovery {
        /// Wire id recovered.
        wire: u32,
    },
    /// A routing job was admitted into the service's bounded queue.
    JobEnqueued {
        /// Job id.
        job: u32,
        /// Waiting jobs after this one was queued.
        queue_depth: u32,
    },
    /// A queued routing job was handed to a worker.
    JobDispatched {
        /// Job id.
        job: u32,
        /// Virtual milliseconds the job waited between arrival and
        /// dispatch (its queueing delay).
        queued_ms: u64,
    },
    /// A dispatched routing job finished.
    JobCompleted {
        /// Job id.
        job: u32,
        /// Virtual milliseconds the job spent in service.
        service_ms: u64,
    },
    /// The shed-oldest backpressure policy dropped a queued job to make
    /// room for a newer arrival.
    JobShed {
        /// Job id of the shed (oldest queued) job.
        job: u32,
    },
    /// The reject backpressure policy turned an arrival away at a full
    /// queue, with a hint for when to retry.
    JobRejected {
        /// Job id.
        job: u32,
        /// Suggested client back-off before resubmitting (virtual ms).
        retry_ms: u64,
    },
    /// The node-fault layer crashed `Event::node` (fail-stop or the down
    /// phase of fail-recover); its in-flight traffic is lost.
    NodeCrashed {
        /// Whether a restart is scheduled (fail-recover) or the node is
        /// down for the rest of the run (fail-stop).
        will_restart: bool,
    },
    /// A crashed node came back up and resumed from its local state.
    NodeRestarted {
        /// How long the node was down.
        downtime_ns: u64,
    },
    /// A message-passing node checkpointed its routing state and shipped
    /// the progress record to the coordinator.
    CheckpointTaken {
        /// Serialized checkpoint size charged to the network.
        bytes: u32,
    },
    /// The coordinator reassigned a dead node's unfinished wire to a
    /// live node.
    WireReassigned {
        /// Wire id.
        wire: u32,
        /// The dead node that owned the wire.
        from: NodeId,
        /// The live node adopting it.
        to: NodeId,
    },
    /// A worker took over coordinator duty after deciding every lower
    /// rank is dead.
    CoordinatorFailover {
        /// The new coordinator (lowest presumed-live rank).
        new_coordinator: NodeId,
    },
    /// The service retried a job whose engine run came back degraded.
    JobRetried {
        /// Job id.
        job: u32,
        /// Retry attempt (1 = first retry).
        attempt: u32,
    },
    /// The service circuit breaker opened for a job class after its
    /// failure rate crossed the threshold.
    BreakerTripped {
        /// Opaque id of the tripped job class.
        class: u32,
    },
}

impl EventKind {
    /// Short stable name of the kind (used by exporters).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PacketSent { .. } => "PacketSent",
            EventKind::PacketDelivered { .. } => "PacketDelivered",
            EventKind::ChannelContended { .. } => "ChannelContended",
            EventKind::WireRouted { .. } => "WireRouted",
            EventKind::RipUp { .. } => "RipUp",
            EventKind::CacheMiss { .. } => "CacheMiss",
            EventKind::Invalidation { .. } => "Invalidation",
            EventKind::BusTransfer { .. } => "BusTransfer",
            EventKind::MemRequest { .. } => "MemRequest",
            EventKind::PhaseBegin { .. } => "PhaseBegin",
            EventKind::PhaseEnd { .. } => "PhaseEnd",
            EventKind::KernelStats { .. } => "KernelStats",
            EventKind::PercellFallback { .. } => "PercellFallback",
            EventKind::RaceDetected { .. } => "RaceDetected",
            EventKind::ReplicaAudit { .. } => "ReplicaAudit",
            EventKind::FaultInjected { .. } => "FaultInjected",
            EventKind::PacketRetransmitted { .. } => "PacketRetransmitted",
            EventKind::AckSent { .. } => "AckSent",
            EventKind::WatchdogRecovery { .. } => "WatchdogRecovery",
            EventKind::JobEnqueued { .. } => "JobEnqueued",
            EventKind::JobDispatched { .. } => "JobDispatched",
            EventKind::JobCompleted { .. } => "JobCompleted",
            EventKind::JobShed { .. } => "JobShed",
            EventKind::JobRejected { .. } => "JobRejected",
            EventKind::NodeCrashed { .. } => "NodeCrashed",
            EventKind::NodeRestarted { .. } => "NodeRestarted",
            EventKind::CheckpointTaken { .. } => "CheckpointTaken",
            EventKind::WireReassigned { .. } => "WireReassigned",
            EventKind::CoordinatorFailover { .. } => "CoordinatorFailover",
            EventKind::JobRetried { .. } => "JobRetried",
            EventKind::BreakerTripped { .. } => "BreakerTripped",
        }
    }
}

/// A timestamped, node-attributed occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// When it happened, in the emitting layer's time base (ns).
    pub at_ns: u64,
    /// The mesh node / logical processor / thread it happened on.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::BusTransfer { bytes: 1 }.name(), "BusTransfer");
        assert_eq!(EventKind::PhaseBegin { name: "x" }.name(), "PhaseBegin");
    }
}
